//! Checkers for the delivery guarantees the paper's layers promise.
//!
//! §5 defines virtual synchrony: every member of a view either accepts the
//! same next view or is removed from it, messages sent in a view are
//! delivered in that view, and all survivors of a view transition deliver
//! the same messages in it.  These functions take the upcall logs recorded
//! by a [`crate::world::SimWorld`] and return a list of violations (empty =
//! the run satisfied the property).  They are the oracles for the
//! randomized/property tests of experiment E6.
//!
//! The checkers split into two families:
//!
//! * **Safety** ([`check_virtual_synchrony`], [`check_fifo`],
//!   [`check_total_order`]): "nothing bad happened".  A stack that
//!   partitions, wedges, and never delivers another message passes all of
//!   them vacuously.
//! * **Liveness** ([`check_view_convergence`], [`check_final_view_delivery`],
//!   [`ProgressWatchdog`]): "the good thing eventually happened".  §5/§9's
//!   merge-back lifecycle and TOTAL's token regeneration are liveness
//!   claims: once the last fault heals, the correct members must converge
//!   on one agreed view within a bounded quiet period, traffic in that
//!   final view must deliver everywhere, and each stack's pending work
//!   (NAK gaps, unflushed views, a parked token) must drain to zero.

use bytes::Bytes;
use horus_core::prelude::*;
use horus_core::view::ViewId;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One endpoint's delivery-relevant history: view installations and cast
/// deliveries, in order.
#[derive(Debug, Clone)]
pub struct DeliveryLog {
    /// Whose log this is.
    pub ep: EndpointAddr,
    events: Vec<LogEvent>,
}

#[derive(Debug, Clone)]
enum LogEvent {
    View { at: SimTime, view: View },
    Cast { at: SimTime, src: EndpointAddr, key: Bytes },
}

/// Deliveries observed in one epoch: `(source, body)` in order.
type EpochDeliveries<'a> = Vec<(EndpointAddr, &'a Bytes)>;
/// One epoch: the view in force (None before the first view) and its
/// deliveries.
type Epoch<'a> = (Option<&'a View>, EpochDeliveries<'a>);
/// A delivery multiset keyed by `(source, body)`.
type DeliveryMultiset = BTreeMap<(EndpointAddr, Vec<u8>), usize>;
/// Per-member first-occurrence position index of each delivery.
type PositionIndex = BTreeMap<(EndpointAddr, Vec<u8>), usize>;

impl DeliveryLog {
    /// Extracts the delivery log from recorded upcalls.
    pub fn from_upcalls(ep: EndpointAddr, upcalls: &[(SimTime, Up)]) -> Self {
        let events = upcalls
            .iter()
            .filter_map(|(at, up)| match up {
                Up::View(v) => Some(LogEvent::View { at: *at, view: v.clone() }),
                Up::Cast { src, msg } => {
                    Some(LogEvent::Cast { at: *at, src: *src, key: msg.body().clone() })
                }
                _ => None,
            })
            .collect();
        DeliveryLog { ep, events }
    }

    /// Views installed, in order.
    pub fn views(&self) -> Vec<&View> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LogEvent::View { view, .. } => Some(view),
                _ => None,
            })
            .collect()
    }

    /// Views installed with their installation times, in order.
    pub fn views_timed(&self) -> Vec<(SimTime, &View)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LogEvent::View { at, view } => Some((*at, view)),
                _ => None,
            })
            .collect()
    }

    /// The last view this endpoint installed, with its installation time.
    pub fn final_view(&self) -> Option<(SimTime, &View)> {
        self.events.iter().rev().find_map(|e| match e {
            LogEvent::View { at, view } => Some((*at, view)),
            _ => None,
        })
    }

    /// All cast deliveries with their delivery times, in order.
    pub fn casts_timed(&self) -> Vec<(SimTime, EndpointAddr, &Bytes)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LogEvent::Cast { at, src, key } => Some((*at, *src, key)),
                _ => None,
            })
            .collect()
    }

    /// All cast deliveries `(src, body)`, in order.
    pub fn casts(&self) -> Vec<(EndpointAddr, &Bytes)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LogEvent::Cast { src, key, .. } => Some((*src, key)),
                _ => None,
            })
            .collect()
    }

    /// Splits the log into epochs: `(view in force, deliveries)`.  The
    /// epoch before the first view has `None`.
    fn epochs(&self) -> Vec<Epoch<'_>> {
        let mut out: Vec<Epoch<'_>> = vec![(None, Vec::new())];
        for e in &self.events {
            match e {
                LogEvent::View { view, .. } => out.push((Some(view), Vec::new())),
                LogEvent::Cast { src, key, .. } => {
                    out.last_mut().expect("epoch list non-empty").1.push((*src, key))
                }
            }
        }
        out
    }
}

/// A violation found by a checker; `Display` gives a human-readable story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Checks the virtual-synchrony guarantees of §5 over a set of logs:
///
/// 1. **View agreement** — every view id is installed with identical member
///    lists everywhere it is installed.
/// 2. **Self-inclusion** — an installer is a member of every view it
///    installs.
/// 3. **Monotonicity** — each member's view counters strictly increase.
/// 4. **Same-view delivery agreement** — two members that both transition
///    from view *v* to the same next view deliver the same multiset of
///    messages while *v* is in force.
/// 5. **Sender in view** — every delivery while *v* is in force comes from
///    a member of *v*.
#[must_use = "a non-empty result means the run violated virtual synchrony"]
pub fn check_virtual_synchrony(logs: &[DeliveryLog]) -> Vec<Violation> {
    let mut violations = Vec::new();

    // 1 + 2 + 3: view agreement, self-inclusion, monotonicity.
    let mut by_id: BTreeMap<ViewId, (&DeliveryLog, &View)> = BTreeMap::new();
    for log in logs {
        let mut prev: Option<ViewId> = None;
        for v in log.views() {
            if !v.contains(log.ep) {
                violations.push(Violation(format!(
                    "{} installed view {} without being a member",
                    log.ep,
                    v.id()
                )));
            }
            if let Some(p) = prev {
                if v.id().counter <= p.counter {
                    violations.push(Violation(format!(
                        "{} installed non-monotonic views: {} after {}",
                        log.ep,
                        v.id(),
                        p
                    )));
                }
            }
            prev = Some(v.id());
            match by_id.get(&v.id()) {
                None => {
                    by_id.insert(v.id(), (log, v));
                }
                Some((first_log, first)) => {
                    if first.members() != v.members() {
                        violations.push(Violation(format!(
                            "view {} disagreement: {} saw {:?}, {} saw {:?}",
                            v.id(),
                            first_log.ep,
                            first.members(),
                            log.ep,
                            v.members()
                        )));
                    }
                }
            }
        }
    }

    // 4: same-view delivery agreement between members sharing a transition
    // v -> v'.  Key the epoch by (view id, next view id).
    type EpochKey = (ViewId, Option<ViewId>);
    let mut epoch_sets: BTreeMap<EpochKey, (EndpointAddr, DeliveryMultiset)> = BTreeMap::new();
    for log in logs {
        let epochs = log.epochs();
        for (i, (view, deliveries)) in epochs.iter().enumerate() {
            let Some(view) = view else {
                if !deliveries.is_empty() {
                    violations.push(Violation(format!(
                        "{} delivered {} message(s) before any view was installed",
                        log.ep,
                        deliveries.len()
                    )));
                }
                continue;
            };
            // 5: senders must be members of the view in force.
            for (src, _) in deliveries {
                if !view.contains(*src) {
                    violations.push(Violation(format!(
                        "{} delivered a message from non-member {} in view {}",
                        log.ep,
                        src,
                        view.id()
                    )));
                }
            }
            let next = epochs.get(i + 1).and_then(|(v, _)| v.as_ref().map(|v| v.id()));
            // Only completed transitions participate in agreement: a member
            // whose log simply *ends* in a view may have crashed mid-view.
            let Some(next_id) = next else { continue };
            let mut multiset: DeliveryMultiset = BTreeMap::new();
            for (src, key) in deliveries {
                *multiset.entry((*src, key.to_vec())).or_insert(0) += 1;
            }
            match epoch_sets.get(&(view.id(), Some(next_id))) {
                None => {
                    epoch_sets.insert((view.id(), Some(next_id)), (log.ep, multiset));
                }
                Some((first_ep, first_set)) => {
                    if *first_set != multiset {
                        let only_first: Vec<_> =
                            first_set.keys().filter(|k| !multiset.contains_key(*k)).collect();
                        let only_this: Vec<_> =
                            multiset.keys().filter(|k| !first_set.contains_key(*k)).collect();
                        violations.push(Violation(format!(
                            "delivery disagreement in view {} (-> {}): {} and {} differ; \
                             only-{}: {:?}, only-{}: {:?}",
                            view.id(),
                            next_id,
                            first_ep,
                            log.ep,
                            first_ep,
                            only_first,
                            log.ep,
                            only_this
                        )));
                    }
                }
            }
        }
    }

    violations
}

/// Checks per-source FIFO delivery: for each receiver and each source, the
/// sequence numbers extracted from the bodies must be strictly increasing.
/// `seq_of` decodes a body into `(logical sender, sequence)` — see
/// [`crate::workload::Workload::parse`] — and returns `None` for bodies the
/// check should skip.
#[must_use = "a non-empty result means the run broke per-source FIFO"]
pub fn check_fifo(
    logs: &[DeliveryLog],
    seq_of: impl Fn(&Bytes) -> Option<(u64, u64)>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for log in logs {
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for (src, key) in log.casts() {
            let Some((sender, seq)) = seq_of(key) else { continue };
            if let Some(&prev) = last.get(&sender) {
                if seq <= prev {
                    violations.push(Violation(format!(
                        "{} broke FIFO from {} (sender {}): seq {} after {}",
                        log.ep, src, sender, seq, prev
                    )));
                }
            }
            last.insert(sender, seq);
        }
    }
    violations
}

/// Checks total order: for every pair of logs, messages delivered by both
/// appear in the same relative order.
#[must_use = "a non-empty result means the run broke total order"]
pub fn check_total_order(logs: &[DeliveryLog]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let indexed: Vec<(EndpointAddr, PositionIndex)> = logs
        .iter()
        .map(|log| {
            let mut pos = BTreeMap::new();
            for (i, (src, key)) in log.casts().into_iter().enumerate() {
                // First occurrence wins (duplicates would already violate
                // same-view agreement checks).
                pos.entry((src, key.to_vec())).or_insert(i);
            }
            (log.ep, pos)
        })
        .collect();
    for a in 0..indexed.len() {
        for b in a + 1..indexed.len() {
            let (ep_a, pos_a) = &indexed[a];
            let (ep_b, pos_b) = &indexed[b];
            type CommonEntry<'k> = (&'k (EndpointAddr, Vec<u8>), usize, usize);
            let mut common: Vec<CommonEntry<'_>> =
                pos_a.iter().filter_map(|(k, &ia)| pos_b.get(k).map(|&ib| (k, ia, ib))).collect();
            common.sort_by_key(|&(_, ia, _)| ia);
            for w in common.windows(2) {
                let (k1, _, ib1) = &w[0];
                let (k2, _, ib2) = &w[1];
                if ib1 > ib2 {
                    violations.push(Violation(format!(
                        "total order violated between {} and {}: {} orders {:?} before {:?}, \
                         {} orders them oppositely",
                        ep_a, ep_b, ep_a, k1.0, k2.0, ep_b
                    )));
                }
            }
        }
    }
    violations
}

/// **Liveness**: after the last fault heals at `heal_at`, every correct
/// member must converge on one agreed final view — containing exactly the
/// correct members — within the `quiet` period.
///
/// Violations name members that never installed a view, installed their
/// final view after the `heal_at + quiet` deadline, disagree about what
/// the final view is, or agreed on a view whose membership is not the
/// correct set (a wedged sub-group that never merged back).
///
/// Only pass logs of *correct* (never-crashed) members, and only call once
/// the run has been driven past the deadline — an early call reports
/// convergence the run simply has not had time for yet.
#[must_use = "a non-empty result means the run failed to converge (liveness violation)"]
pub fn check_view_convergence(
    logs: &[DeliveryLog],
    correct: &[EndpointAddr],
    heal_at: SimTime,
    quiet: Duration,
) -> Vec<Violation> {
    let deadline = heal_at + quiet;
    let mut violations = Vec::new();
    let mut finals: Vec<(EndpointAddr, SimTime, &View)> = Vec::new();
    for &m in correct {
        let Some(log) = logs.iter().find(|l| l.ep == m) else {
            violations.push(Violation(format!("no delivery log for correct member {m}")));
            continue;
        };
        match log.final_view() {
            None => {
                violations.push(Violation(format!(
                    "liveness: {m} never installed any view (deadline {deadline})"
                )));
            }
            Some((at, v)) => {
                if at > deadline {
                    violations.push(Violation(format!(
                        "liveness: {m} installed its final view {} at {at}, after the \
                         convergence deadline {deadline} (heal {heal_at} + quiet {quiet:?})",
                        v.id()
                    )));
                }
                finals.push((m, at, v));
            }
        }
    }
    // Agreement on the final view, by id and membership.
    if let Some((first_ep, _, first)) = finals.first() {
        for (m, _, v) in &finals[1..] {
            if v.id() != first.id() || v.members() != first.members() {
                violations.push(Violation(format!(
                    "liveness: correct members never converged on one view: \
                     {first_ep} ended in {} {:?}, {m} ended in {} {:?}",
                    first.id(),
                    first.members(),
                    v.id(),
                    v.members()
                )));
            }
        }
        let mut want: Vec<EndpointAddr> = correct.to_vec();
        want.sort();
        want.dedup();
        let mut got: Vec<EndpointAddr> = first.members().to_vec();
        got.sort();
        if got != want && violations.is_empty() {
            violations.push(Violation(format!(
                "liveness: agreed final view {} has members {:?}, but the correct \
                 members are {:?} (group never merged back whole)",
                first.id(),
                first.members(),
                want
            )));
        }
    }
    violations
}

/// **Liveness**: every cast delivered by some correct member in the agreed
/// final view must be delivered by *all* correct members.  (Because every
/// sender loops its own casts back, this is exactly "every cast sent in
/// the final view delivers at all its members".)
///
/// Assumes [`check_view_convergence`] already passed: if the correct
/// members' final views disagree, this check reports nothing and leaves
/// the story to the convergence checker.
#[must_use = "a non-empty result means final-view traffic was lost (liveness violation)"]
pub fn check_final_view_delivery(logs: &[DeliveryLog], correct: &[EndpointAddr]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let relevant: Vec<&DeliveryLog> =
        correct.iter().filter_map(|m| logs.iter().find(|l| l.ep == *m)).collect();
    let ids: Vec<ViewId> =
        relevant.iter().filter_map(|l| l.final_view().map(|(_, v)| v.id())).collect();
    if ids.len() != relevant.len() || ids.windows(2).any(|w| w[0] != w[1]) {
        return violations; // no agreed final view: convergence reports it
    }
    let mut sets: Vec<(EndpointAddr, DeliveryMultiset)> = Vec::new();
    for log in &relevant {
        let epochs = log.epochs();
        let Some((_, deliveries)) = epochs.last() else { continue };
        let mut multiset: DeliveryMultiset = BTreeMap::new();
        for (src, key) in deliveries {
            *multiset.entry((*src, key.to_vec())).or_insert(0) += 1;
        }
        sets.push((log.ep, multiset));
    }
    if let Some((first_ep, first_set)) = sets.first() {
        for (m, set) in &sets[1..] {
            if set != first_set {
                let only_first: Vec<_> =
                    first_set.keys().filter(|k| !set.contains_key(*k)).collect();
                let only_this: Vec<_> =
                    set.keys().filter(|k| !first_set.contains_key(*k)).collect();
                violations.push(Violation(format!(
                    "liveness: final-view delivery divergence between {first_ep} and {m}: \
                     only-{first_ep}: {only_first:?}, only-{m}: {only_this:?}"
                )));
            }
        }
    }
    violations
}

/// **Liveness**, reported continuously: a per-stack progress watchdog.
///
/// Feed it every disturbance (fault injected *or* healed) via
/// [`ProgressWatchdog::disturb`] and sample each correct stack's
/// [pending work](horus_core::stack::Stack::pending_work) via
/// [`ProgressWatchdog::observe`] as the run advances.  A stack whose
/// pending work sits *unchanged and non-zero* for a full quiet period —
/// measured from the later of its last change and the last disturbance —
/// is wedged: retransmissions that never succeed, a flush that never
/// completes, a token that never regenerates.
///
/// The watchdog never flags a stack that is still draining (its count
/// keeps changing) or that is disturbed faster than it can drain.
#[derive(Debug, Clone)]
pub struct ProgressWatchdog {
    quiet: Duration,
    last_disturbance: SimTime,
    /// Per-endpoint: (value at last change, time of last change, last
    /// sample time).
    state: BTreeMap<EndpointAddr, (u64, SimTime, SimTime)>,
}

impl ProgressWatchdog {
    /// A watchdog that declares a stack wedged after `quiet` of
    /// unchanged non-zero pending work.
    pub fn new(quiet: Duration) -> Self {
        ProgressWatchdog { quiet, last_disturbance: SimTime::ZERO, state: BTreeMap::new() }
    }

    /// Records a disturbance (fault injected or healed) at `at`: stalls
    /// are excused until `at + quiet`.
    pub fn disturb(&mut self, at: SimTime) {
        self.last_disturbance = self.last_disturbance.max(at);
    }

    /// Samples one stack's pending-work count at `now`.
    pub fn observe(&mut self, now: SimTime, ep: EndpointAddr, pending: u64) {
        match self.state.get_mut(&ep) {
            None => {
                self.state.insert(ep, (pending, now, now));
            }
            Some((value, changed_at, sampled_at)) => {
                if *value != pending {
                    *value = pending;
                    *changed_at = now;
                }
                *sampled_at = now;
            }
        }
    }

    /// The stalls observed so far: stacks whose pending work has sat
    /// unchanged and non-zero for a full quiet period with no disturbance.
    #[must_use = "a non-empty result means a stack is wedged (liveness violation)"]
    pub fn violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (&ep, &(value, changed_at, sampled_at)) in &self.state {
            if value == 0 {
                continue;
            }
            let since = changed_at.max(self.last_disturbance);
            if sampled_at.saturating_since(since) > self.quiet {
                out.push(Violation(format!(
                    "liveness: {ep} is wedged — {value} unit(s) of pending work unchanged \
                     since {since} (observed through {sampled_at}, quiet {:?})",
                    self.quiet
                )));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::addr::GroupAddr;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn view_abc() -> View {
        View::initial(GroupAddr::new(1), ep(1)).with_joined(&[ep(2), ep(3)])
    }

    fn log(e: EndpointAddr, events: Vec<LogEvent>) -> DeliveryLog {
        DeliveryLog { ep: e, events }
    }

    fn cast(src: u64, body: &[u8]) -> LogEvent {
        LogEvent::Cast { at: SimTime::ZERO, src: ep(src), key: Bytes::copy_from_slice(body) }
    }

    fn view_ev(v: View) -> LogEvent {
        LogEvent::View { at: SimTime::ZERO, view: v }
    }

    fn view_at(at: SimTime, v: View) -> LogEvent {
        LogEvent::View { at, view: v }
    }

    #[test]
    fn clean_run_passes() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let mk = |e: u64| {
            log(ep(e), vec![view_ev(v.clone()), cast(1, b"a"), cast(2, b"b"), view_ev(v2.clone())])
        };
        let logs = vec![mk(1), mk(2)];
        assert!(check_virtual_synchrony(&logs).is_empty());
        assert!(check_total_order(&logs).is_empty());
    }

    #[test]
    fn view_disagreement_detected() {
        let v = view_abc();
        let mut other = view_abc();
        other = other.successor(ep(1), &[ep(3)], &[]);
        // Same id, different membership: forge by reusing v's id via logs.
        let logs = vec![
            log(ep(1), vec![view_ev(v.clone())]),
            log(
                ep(2),
                vec![view_ev(View::from_parts(
                    v.group(),
                    v.id(),
                    other.members().to_vec(),
                    other.join_epochs().to_vec(),
                ))],
            ),
        ];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|v| v.0.contains("disagreement")));
    }

    #[test]
    fn delivery_disagreement_detected() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let logs = vec![
            log(ep(1), vec![view_ev(v.clone()), cast(2, b"m"), view_ev(v2.clone())]),
            log(ep(2), vec![view_ev(v.clone()), view_ev(v2.clone())]),
        ];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|v| v.0.contains("delivery disagreement")));
    }

    #[test]
    fn crashed_member_prefix_is_tolerated() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let logs = vec![
            log(ep(1), vec![view_ev(v.clone()), cast(2, b"m"), view_ev(v2.clone())]),
            log(ep(2), vec![view_ev(v.clone()), cast(2, b"m"), view_ev(v2.clone())]),
            // ep(3) crashed mid-view having delivered less: fine.
            log(ep(3), vec![view_ev(v.clone())]),
        ];
        assert!(check_virtual_synchrony(&logs).is_empty());
    }

    #[test]
    fn sender_outside_view_detected() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let logs = vec![log(ep(1), vec![view_ev(v.clone()), cast(9, b"intruder"), view_ev(v2)])];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|v| v.0.contains("non-member")));
    }

    #[test]
    fn fifo_checker_detects_inversion() {
        let body = |sender: u64, seq: u64| {
            let mut v = sender.to_le_bytes().to_vec();
            v.extend_from_slice(&seq.to_le_bytes());
            v
        };
        let parse = |b: &Bytes| -> Option<(u64, u64)> {
            if b.len() < 16 {
                return None;
            }
            Some((
                u64::from_le_bytes(b[..8].try_into().unwrap()),
                u64::from_le_bytes(b[8..16].try_into().unwrap()),
            ))
        };
        let ok = vec![log(ep(1), vec![cast(2, &body(2, 1)), cast(2, &body(2, 2))])];
        assert!(check_fifo(&ok, parse).is_empty());
        let bad = vec![log(ep(1), vec![cast(2, &body(2, 2)), cast(2, &body(2, 1))])];
        assert_eq!(check_fifo(&bad, parse).len(), 1);
    }

    #[test]
    fn total_order_checker_detects_inversion() {
        let logs = vec![
            log(ep(1), vec![cast(1, b"x"), cast(2, b"y")]),
            log(ep(2), vec![cast(2, b"y"), cast(1, b"x")]),
        ];
        assert_eq!(check_total_order(&logs).len(), 1);
        let logs_ok = vec![
            log(ep(1), vec![cast(1, b"x"), cast(2, b"y"), cast(1, b"z")]),
            log(ep(2), vec![cast(1, b"x"), cast(1, b"z")]), // subset, same order
        ];
        assert!(check_total_order(&logs_ok).is_empty());
    }

    #[test]
    fn monotonic_views_enforced() {
        let v = view_abc();
        let logs = vec![log(ep(1), vec![view_ev(v.clone()), view_ev(v.clone())])];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|x| x.0.contains("non-monotonic")));
    }

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn convergence_passes_when_all_correct_members_agree_in_time() {
        let v = view_abc();
        let correct = [ep(1), ep(2), ep(3)];
        let logs: Vec<DeliveryLog> =
            correct.iter().map(|&m| log(m, vec![view_at(ms(150), v.clone())])).collect();
        let viols = check_view_convergence(&logs, &correct, ms(100), Duration::from_millis(100));
        assert!(viols.is_empty(), "{viols:?}");
    }

    #[test]
    fn convergence_flags_disagreement_late_install_and_missing_member() {
        let v = view_abc();
        let small = v.successor(ep(1), &[ep(3)], &[]); // {1,2}
        let correct = [ep(1), ep(2), ep(3)];
        // ep3 is stuck in the old 3-member view while 1 and 2 moved on.
        let logs = vec![
            log(ep(1), vec![view_at(ms(150), small.clone())]),
            log(ep(2), vec![view_at(ms(150), small.clone())]),
            log(ep(3), vec![view_at(ms(10), v.clone())]),
        ];
        let viols = check_view_convergence(&logs, &correct, ms(100), Duration::from_millis(100));
        assert!(viols.iter().any(|x| x.0.contains("never converged")), "{viols:?}");

        // Everyone agrees, but on a view missing a correct member.
        let logs = vec![
            log(ep(1), vec![view_at(ms(150), small.clone())]),
            log(ep(2), vec![view_at(ms(150), small.clone())]),
            log(ep(3), vec![view_at(ms(150), small.clone())]),
        ];
        let viols = check_view_convergence(&logs, &correct, ms(100), Duration::from_millis(100));
        assert!(!viols.is_empty(), "installer ep3 outside the view is flagged");

        // Agreement reached, but only after the deadline.
        let logs: Vec<DeliveryLog> =
            correct.iter().map(|&m| log(m, vec![view_at(ms(500), v.clone())])).collect();
        let viols = check_view_convergence(&logs, &correct, ms(100), Duration::from_millis(100));
        assert!(viols.iter().any(|x| x.0.contains("after the convergence deadline")));

        // A member that never installed anything.
        let logs = vec![
            log(ep(1), vec![view_at(ms(50), v.clone())]),
            log(ep(2), vec![view_at(ms(50), v.clone())]),
            log(ep(3), vec![]),
        ];
        let viols = check_view_convergence(&logs, &correct, ms(100), Duration::from_millis(100));
        assert!(viols.iter().any(|x| x.0.contains("never installed any view")));
    }

    #[test]
    fn final_view_delivery_divergence_detected() {
        let v = view_abc();
        let correct = [ep(1), ep(2), ep(3)];
        let with = |extra: bool| {
            let mut evs = vec![view_ev(v.clone()), cast(1, b"a")];
            if extra {
                evs.push(cast(2, b"b"));
            }
            evs
        };
        let logs = vec![
            log(ep(1), with(true)),
            log(ep(2), with(true)),
            log(ep(3), with(false)), // ep3 never got ep2's cast
        ];
        let viols = check_final_view_delivery(&logs, &correct);
        assert_eq!(viols.len(), 1);
        assert!(viols[0].0.contains("final-view delivery divergence"));
        let ok = vec![log(ep(1), with(true)), log(ep(2), with(true)), log(ep(3), with(true))];
        assert!(check_final_view_delivery(&ok, &correct).is_empty());
    }

    #[test]
    fn watchdog_flags_stuck_pending_work_but_tolerates_draining() {
        let quiet = Duration::from_millis(100);
        // Stuck: constant non-zero pending past the quiet period.
        let mut dog = ProgressWatchdog::new(quiet);
        for t in 0..=30 {
            dog.observe(ms(t * 10), ep(1), 5);
        }
        assert_eq!(dog.violations().len(), 1);
        assert!(dog.violations()[0].0.contains("wedged"));

        // Draining: the count keeps moving, then reaches zero.
        let mut dog = ProgressWatchdog::new(quiet);
        for t in 0..=30u64 {
            dog.observe(ms(t * 10), ep(1), 30 - t);
        }
        assert!(dog.violations().is_empty());

        // A disturbance excuses the stall until quiet expires again.
        let mut dog = ProgressWatchdog::new(quiet);
        for t in 0..=30 {
            dog.observe(ms(t * 10), ep(1), 5);
        }
        dog.disturb(ms(290));
        assert!(dog.violations().is_empty(), "stall excused by fresh disturbance");
        for t in 31..=45 {
            dog.observe(ms(t * 10), ep(1), 5);
        }
        assert_eq!(dog.violations().len(), 1, "still stuck a full quiet period later");
    }
}
