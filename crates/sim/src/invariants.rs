//! Checkers for the delivery guarantees the paper's layers promise.
//!
//! §5 defines virtual synchrony: every member of a view either accepts the
//! same next view or is removed from it, messages sent in a view are
//! delivered in that view, and all survivors of a view transition deliver
//! the same messages in it.  These functions take the upcall logs recorded
//! by a [`crate::world::SimWorld`] and return a list of violations (empty =
//! the run satisfied the property).  They are the oracles for the
//! randomized/property tests of experiment E6.

use bytes::Bytes;
use horus_core::prelude::*;
use horus_core::view::ViewId;
use std::collections::BTreeMap;
use std::fmt;

/// One endpoint's delivery-relevant history: view installations and cast
/// deliveries, in order.
#[derive(Debug, Clone)]
pub struct DeliveryLog {
    /// Whose log this is.
    pub ep: EndpointAddr,
    events: Vec<LogEvent>,
}

#[derive(Debug, Clone)]
enum LogEvent {
    View(View),
    Cast { src: EndpointAddr, key: Bytes },
}

/// Deliveries observed in one epoch: `(source, body)` in order.
type EpochDeliveries<'a> = Vec<(EndpointAddr, &'a Bytes)>;
/// One epoch: the view in force (None before the first view) and its
/// deliveries.
type Epoch<'a> = (Option<&'a View>, EpochDeliveries<'a>);
/// A delivery multiset keyed by `(source, body)`.
type DeliveryMultiset = BTreeMap<(EndpointAddr, Vec<u8>), usize>;
/// Per-member first-occurrence position index of each delivery.
type PositionIndex = BTreeMap<(EndpointAddr, Vec<u8>), usize>;

impl DeliveryLog {
    /// Extracts the delivery log from recorded upcalls.
    pub fn from_upcalls(ep: EndpointAddr, upcalls: &[(SimTime, Up)]) -> Self {
        let events = upcalls
            .iter()
            .filter_map(|(_, up)| match up {
                Up::View(v) => Some(LogEvent::View(v.clone())),
                Up::Cast { src, msg } => {
                    Some(LogEvent::Cast { src: *src, key: msg.body().clone() })
                }
                _ => None,
            })
            .collect();
        DeliveryLog { ep, events }
    }

    /// Views installed, in order.
    pub fn views(&self) -> Vec<&View> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LogEvent::View(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    /// All cast deliveries `(src, body)`, in order.
    pub fn casts(&self) -> Vec<(EndpointAddr, &Bytes)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LogEvent::Cast { src, key } => Some((*src, key)),
                _ => None,
            })
            .collect()
    }

    /// Splits the log into epochs: `(view in force, deliveries)`.  The
    /// epoch before the first view has `None`.
    fn epochs(&self) -> Vec<Epoch<'_>> {
        let mut out: Vec<Epoch<'_>> = vec![(None, Vec::new())];
        for e in &self.events {
            match e {
                LogEvent::View(v) => out.push((Some(v), Vec::new())),
                LogEvent::Cast { src, key } => {
                    out.last_mut().expect("epoch list non-empty").1.push((*src, key))
                }
            }
        }
        out
    }
}

/// A violation found by a checker; `Display` gives a human-readable story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Checks the virtual-synchrony guarantees of §5 over a set of logs:
///
/// 1. **View agreement** — every view id is installed with identical member
///    lists everywhere it is installed.
/// 2. **Self-inclusion** — an installer is a member of every view it
///    installs.
/// 3. **Monotonicity** — each member's view counters strictly increase.
/// 4. **Same-view delivery agreement** — two members that both transition
///    from view *v* to the same next view deliver the same multiset of
///    messages while *v* is in force.
/// 5. **Sender in view** — every delivery while *v* is in force comes from
///    a member of *v*.
#[must_use = "a non-empty result means the run violated virtual synchrony"]
pub fn check_virtual_synchrony(logs: &[DeliveryLog]) -> Vec<Violation> {
    let mut violations = Vec::new();

    // 1 + 2 + 3: view agreement, self-inclusion, monotonicity.
    let mut by_id: BTreeMap<ViewId, (&DeliveryLog, &View)> = BTreeMap::new();
    for log in logs {
        let mut prev: Option<ViewId> = None;
        for v in log.views() {
            if !v.contains(log.ep) {
                violations.push(Violation(format!(
                    "{} installed view {} without being a member",
                    log.ep,
                    v.id()
                )));
            }
            if let Some(p) = prev {
                if v.id().counter <= p.counter {
                    violations.push(Violation(format!(
                        "{} installed non-monotonic views: {} after {}",
                        log.ep,
                        v.id(),
                        p
                    )));
                }
            }
            prev = Some(v.id());
            match by_id.get(&v.id()) {
                None => {
                    by_id.insert(v.id(), (log, v));
                }
                Some((first_log, first)) => {
                    if first.members() != v.members() {
                        violations.push(Violation(format!(
                            "view {} disagreement: {} saw {:?}, {} saw {:?}",
                            v.id(),
                            first_log.ep,
                            first.members(),
                            log.ep,
                            v.members()
                        )));
                    }
                }
            }
        }
    }

    // 4: same-view delivery agreement between members sharing a transition
    // v -> v'.  Key the epoch by (view id, next view id).
    type EpochKey = (ViewId, Option<ViewId>);
    let mut epoch_sets: BTreeMap<EpochKey, (EndpointAddr, DeliveryMultiset)> = BTreeMap::new();
    for log in logs {
        let epochs = log.epochs();
        for (i, (view, deliveries)) in epochs.iter().enumerate() {
            let Some(view) = view else {
                if !deliveries.is_empty() {
                    violations.push(Violation(format!(
                        "{} delivered {} message(s) before any view was installed",
                        log.ep,
                        deliveries.len()
                    )));
                }
                continue;
            };
            // 5: senders must be members of the view in force.
            for (src, _) in deliveries {
                if !view.contains(*src) {
                    violations.push(Violation(format!(
                        "{} delivered a message from non-member {} in view {}",
                        log.ep,
                        src,
                        view.id()
                    )));
                }
            }
            let next = epochs.get(i + 1).and_then(|(v, _)| v.as_ref().map(|v| v.id()));
            // Only completed transitions participate in agreement: a member
            // whose log simply *ends* in a view may have crashed mid-view.
            let Some(next_id) = next else { continue };
            let mut multiset: DeliveryMultiset = BTreeMap::new();
            for (src, key) in deliveries {
                *multiset.entry((*src, key.to_vec())).or_insert(0) += 1;
            }
            match epoch_sets.get(&(view.id(), Some(next_id))) {
                None => {
                    epoch_sets.insert((view.id(), Some(next_id)), (log.ep, multiset));
                }
                Some((first_ep, first_set)) => {
                    if *first_set != multiset {
                        let only_first: Vec<_> =
                            first_set.keys().filter(|k| !multiset.contains_key(*k)).collect();
                        let only_this: Vec<_> =
                            multiset.keys().filter(|k| !first_set.contains_key(*k)).collect();
                        violations.push(Violation(format!(
                            "delivery disagreement in view {} (-> {}): {} and {} differ; \
                             only-{}: {:?}, only-{}: {:?}",
                            view.id(),
                            next_id,
                            first_ep,
                            log.ep,
                            first_ep,
                            only_first,
                            log.ep,
                            only_this
                        )));
                    }
                }
            }
        }
    }

    violations
}

/// Checks per-source FIFO delivery: for each receiver and each source, the
/// sequence numbers extracted from the bodies must be strictly increasing.
/// `seq_of` decodes a body into `(logical sender, sequence)` — see
/// [`crate::workload::Workload::parse`] — and returns `None` for bodies the
/// check should skip.
#[must_use = "a non-empty result means the run broke per-source FIFO"]
pub fn check_fifo(
    logs: &[DeliveryLog],
    seq_of: impl Fn(&Bytes) -> Option<(u64, u64)>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for log in logs {
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for (src, key) in log.casts() {
            let Some((sender, seq)) = seq_of(key) else { continue };
            if let Some(&prev) = last.get(&sender) {
                if seq <= prev {
                    violations.push(Violation(format!(
                        "{} broke FIFO from {} (sender {}): seq {} after {}",
                        log.ep, src, sender, seq, prev
                    )));
                }
            }
            last.insert(sender, seq);
        }
    }
    violations
}

/// Checks total order: for every pair of logs, messages delivered by both
/// appear in the same relative order.
#[must_use = "a non-empty result means the run broke total order"]
pub fn check_total_order(logs: &[DeliveryLog]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let indexed: Vec<(EndpointAddr, PositionIndex)> = logs
        .iter()
        .map(|log| {
            let mut pos = BTreeMap::new();
            for (i, (src, key)) in log.casts().into_iter().enumerate() {
                // First occurrence wins (duplicates would already violate
                // same-view agreement checks).
                pos.entry((src, key.to_vec())).or_insert(i);
            }
            (log.ep, pos)
        })
        .collect();
    for a in 0..indexed.len() {
        for b in a + 1..indexed.len() {
            let (ep_a, pos_a) = &indexed[a];
            let (ep_b, pos_b) = &indexed[b];
            type CommonEntry<'k> = (&'k (EndpointAddr, Vec<u8>), usize, usize);
            let mut common: Vec<CommonEntry<'_>> =
                pos_a.iter().filter_map(|(k, &ia)| pos_b.get(k).map(|&ib| (k, ia, ib))).collect();
            common.sort_by_key(|&(_, ia, _)| ia);
            for w in common.windows(2) {
                let (k1, _, ib1) = &w[0];
                let (k2, _, ib2) = &w[1];
                if ib1 > ib2 {
                    violations.push(Violation(format!(
                        "total order violated between {} and {}: {} orders {:?} before {:?}, \
                         {} orders them oppositely",
                        ep_a, ep_b, ep_a, k1.0, k2.0, ep_b
                    )));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::addr::GroupAddr;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn view_abc() -> View {
        View::initial(GroupAddr::new(1), ep(1)).with_joined(&[ep(2), ep(3)])
    }

    fn log(e: EndpointAddr, events: Vec<LogEvent>) -> DeliveryLog {
        DeliveryLog { ep: e, events }
    }

    fn cast(src: u64, body: &[u8]) -> LogEvent {
        LogEvent::Cast { src: ep(src), key: Bytes::copy_from_slice(body) }
    }

    #[test]
    fn clean_run_passes() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let mk = |e: u64| {
            log(
                ep(e),
                vec![
                    LogEvent::View(v.clone()),
                    cast(1, b"a"),
                    cast(2, b"b"),
                    LogEvent::View(v2.clone()),
                ],
            )
        };
        let logs = vec![mk(1), mk(2)];
        assert!(check_virtual_synchrony(&logs).is_empty());
        assert!(check_total_order(&logs).is_empty());
    }

    #[test]
    fn view_disagreement_detected() {
        let v = view_abc();
        let mut other = view_abc();
        other = other.successor(ep(1), &[ep(3)], &[]);
        // Same id, different membership: forge by reusing v's id via logs.
        let logs = vec![
            log(ep(1), vec![LogEvent::View(v.clone())]),
            log(
                ep(2),
                vec![LogEvent::View(View::from_parts(
                    v.group(),
                    v.id(),
                    other.members().to_vec(),
                    other.join_epochs().to_vec(),
                ))],
            ),
        ];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|v| v.0.contains("disagreement")));
    }

    #[test]
    fn delivery_disagreement_detected() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let logs = vec![
            log(ep(1), vec![LogEvent::View(v.clone()), cast(2, b"m"), LogEvent::View(v2.clone())]),
            log(ep(2), vec![LogEvent::View(v.clone()), LogEvent::View(v2.clone())]),
        ];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|v| v.0.contains("delivery disagreement")));
    }

    #[test]
    fn crashed_member_prefix_is_tolerated() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let logs = vec![
            log(ep(1), vec![LogEvent::View(v.clone()), cast(2, b"m"), LogEvent::View(v2.clone())]),
            log(ep(2), vec![LogEvent::View(v.clone()), cast(2, b"m"), LogEvent::View(v2.clone())]),
            // ep(3) crashed mid-view having delivered less: fine.
            log(ep(3), vec![LogEvent::View(v.clone())]),
        ];
        assert!(check_virtual_synchrony(&logs).is_empty());
    }

    #[test]
    fn sender_outside_view_detected() {
        let v = view_abc();
        let v2 = v.successor(ep(1), &[ep(3)], &[]);
        let logs = vec![log(
            ep(1),
            vec![LogEvent::View(v.clone()), cast(9, b"intruder"), LogEvent::View(v2)],
        )];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|v| v.0.contains("non-member")));
    }

    #[test]
    fn fifo_checker_detects_inversion() {
        let body = |sender: u64, seq: u64| {
            let mut v = sender.to_le_bytes().to_vec();
            v.extend_from_slice(&seq.to_le_bytes());
            v
        };
        let parse = |b: &Bytes| -> Option<(u64, u64)> {
            if b.len() < 16 {
                return None;
            }
            Some((
                u64::from_le_bytes(b[..8].try_into().unwrap()),
                u64::from_le_bytes(b[8..16].try_into().unwrap()),
            ))
        };
        let ok = vec![log(ep(1), vec![cast(2, &body(2, 1)), cast(2, &body(2, 2))])];
        assert!(check_fifo(&ok, parse).is_empty());
        let bad = vec![log(ep(1), vec![cast(2, &body(2, 2)), cast(2, &body(2, 1))])];
        assert_eq!(check_fifo(&bad, parse).len(), 1);
    }

    #[test]
    fn total_order_checker_detects_inversion() {
        let logs = vec![
            log(ep(1), vec![cast(1, b"x"), cast(2, b"y")]),
            log(ep(2), vec![cast(2, b"y"), cast(1, b"x")]),
        ];
        assert_eq!(check_total_order(&logs).len(), 1);
        let logs_ok = vec![
            log(ep(1), vec![cast(1, b"x"), cast(2, b"y"), cast(1, b"z")]),
            log(ep(2), vec![cast(1, b"x"), cast(1, b"z")]), // subset, same order
        ];
        assert!(check_total_order(&logs_ok).is_empty());
    }

    #[test]
    fn monotonic_views_enforced() {
        let v = view_abc();
        let logs = vec![log(ep(1), vec![LogEvent::View(v.clone()), LogEvent::View(v.clone())])];
        let violations = check_virtual_synchrony(&logs);
        assert!(violations.iter().any(|x| x.0.contains("non-monotonic")));
    }
}
