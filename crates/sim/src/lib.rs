//! # horus-sim
//!
//! Deterministic discrete-event execution of Horus stacks, plus the
//! machinery that turns the paper's failure stories into repeatable
//! experiments:
//!
//! * [`world::SimWorld`] — the event calendar: endpoints with stacks,
//!   the simulated network of `horus-net`, virtual time, scripted crashes,
//!   suspicions, targeted faults, partitions, and merges.  One seed ⇒ one
//!   execution, always.
//! * [`detector::FailureDetector`] — the scripted (possibly inaccurate)
//!   failure detector of §5, a deterministic suspicion schedule.
//! * [`invariants`] — checkers for the virtual-synchrony guarantees of §5
//!   (view agreement, same-view delivery agreement, FIFO and total order),
//!   applied to the upcall logs a `SimWorld` records.
//! * [`sched`] — the schedule-level choice point: a [`sched::Scheduler`]
//!   picks which ready event fires next, which is how `horus-check`
//!   systematically explores delivery/timer/failure orderings.
//! * [`soak`] — seeded chaos-soak campaigns: random fault plans, safety
//!   plus liveness oracles every quiet window, ddmin fault-plan
//!   minimization, replayable `(seed, plan)` artifacts.
//! * [`workload`] — message workload generators for the benchmarks.
//! * [`threaded`] — a real-time, really-threaded executor over the loopback
//!   transport, for the §10 dispatch-model ablation.
//! * [`shard`] — the sharded run-to-completion executor: N workers, each
//!   owning a disjoint set of stacks, batched dispatch through one reusable
//!   [`horus_core::EffectSink`], frames delivered straight into the owning
//!   shard's queue.

pub mod detector;
pub mod invariants;
pub mod sched;
pub mod shard;
pub mod soak;
pub mod threaded;
pub mod workload;
pub mod world;

pub use detector::{FailureDetector, Suspicion};
pub use invariants::{check_fifo, check_total_order, check_virtual_synchrony, DeliveryLog};
pub use sched::{CalendarScheduler, RunOutcome, Scheduler, Step};
pub use shard::{ShardConfig, ShardExecutor};
pub use soak::{SoakAction, SoakConfig, SoakEvent, SoakOutcome, SoakPlan};
pub use workload::{Workload, WorkloadKind};
pub use world::{EventId, ReadyEvent, ReadyKind, SimWorld};
