//! Message workload generators for tests and benchmarks.
//!
//! Bodies are self-describing — `[sender u64][seq u64][padding]` — so the
//! invariant checkers can recover per-sender sequence numbers from delivered
//! payloads without side channels.

use bytes::Bytes;
use horus_core::prelude::*;
use std::time::Duration;

use crate::world::SimWorld;

/// How casts are distributed over the senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadKind {
    /// Senders take turns, one message per slot.
    #[default]
    RoundRobin,
    /// Only the first sender casts.
    SingleSender,
    /// Every sender casts in every slot (an all-to-all burst per slot).
    AllToAll,
}

/// A scripted multicast workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Distribution of casts over senders.
    pub kind: WorkloadKind,
    /// Participating senders.
    pub senders: Vec<EndpointAddr>,
    /// Total number of slots (for `RoundRobin`/`SingleSender`: one message
    /// per slot; for `AllToAll`: one message per sender per slot).
    pub slots: u64,
    /// Virtual time between consecutive slots.
    pub interval: Duration,
    /// Total body size in bytes (minimum 16 for the self-describing
    /// prefix).
    pub payload: usize,
}

impl Workload {
    /// A round-robin workload with 64-byte payloads at a 1 ms cadence.
    pub fn round_robin(senders: Vec<EndpointAddr>, slots: u64) -> Self {
        Workload {
            kind: WorkloadKind::RoundRobin,
            senders,
            slots,
            interval: Duration::from_millis(1),
            payload: 64,
        }
    }

    /// Encodes a self-describing body.
    pub fn body(sender: EndpointAddr, seq: u64, payload: usize) -> Bytes {
        let mut v = Vec::with_capacity(payload.max(16));
        v.extend_from_slice(&sender.raw().to_le_bytes());
        v.extend_from_slice(&seq.to_le_bytes());
        v.resize(payload.max(16), 0xAB);
        Bytes::from(v)
    }

    /// Decodes a self-describing body into `(sender raw id, seq)`.
    pub fn parse(body: &Bytes) -> Option<(u64, u64)> {
        if body.len() < 16 {
            return None;
        }
        Some((
            u64::from_le_bytes(body[..8].try_into().ok()?),
            u64::from_le_bytes(body[8..16].try_into().ok()?),
        ))
    }

    /// Schedules the workload's casts on a world, starting at `start`.
    /// Returns the total number of casts scheduled.
    pub fn schedule(&self, world: &mut SimWorld, start: SimTime) -> u64 {
        let mut seqs: std::collections::BTreeMap<EndpointAddr, u64> =
            self.senders.iter().map(|&s| (s, 0)).collect();
        let mut total = 0;
        for slot in 0..self.slots {
            let at = start + self.interval * slot as u32;
            match self.kind {
                WorkloadKind::RoundRobin => {
                    let sender = self.senders[(slot as usize) % self.senders.len()];
                    let seq = seqs.get_mut(&sender).expect("sender registered");
                    *seq += 1;
                    world.cast_bytes_at(at, sender, Self::body(sender, *seq, self.payload));
                    total += 1;
                }
                WorkloadKind::SingleSender => {
                    let sender = self.senders[0];
                    let seq = seqs.get_mut(&sender).expect("sender registered");
                    *seq += 1;
                    world.cast_bytes_at(at, sender, Self::body(sender, *seq, self.payload));
                    total += 1;
                }
                WorkloadKind::AllToAll => {
                    for &sender in &self.senders {
                        let seq = seqs.get_mut(&sender).expect("sender registered");
                        *seq += 1;
                        world.cast_bytes_at(at, sender, Self::body(sender, *seq, self.payload));
                        total += 1;
                    }
                }
            }
        }
        total
    }

    /// The virtual duration of the scheduled workload.
    pub fn duration(&self) -> Duration {
        self.interval * self.slots as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_parse_roundtrip() {
        let b = Workload::body(EndpointAddr::new(7), 42, 64);
        assert_eq!(b.len(), 64);
        assert_eq!(Workload::parse(&b), Some((7, 42)));
        assert_eq!(Workload::parse(&Bytes::from_static(b"short")), None);
    }

    #[test]
    fn body_enforces_minimum_size() {
        let b = Workload::body(EndpointAddr::new(1), 1, 4);
        assert_eq!(b.len(), 16);
    }

    #[test]
    fn counts_per_kind() {
        let senders = vec![EndpointAddr::new(1), EndpointAddr::new(2)];
        let mk = |kind| Workload {
            kind,
            senders: senders.clone(),
            slots: 10,
            interval: Duration::from_millis(1),
            payload: 16,
        };
        // Scheduled counts differ by kind; verify on a throwaway world.
        use horus_net::NetConfig;
        #[derive(Debug, Default)]
        struct Nop;
        impl Layer for Nop {
            fn name(&self) -> &'static str {
                "NOP"
            }
        }
        let mut world = SimWorld::new(1, NetConfig::reliable());
        for &s in &senders {
            let stack = StackBuilder::new(s).push(Box::new(Nop)).build().unwrap();
            world.add_endpoint(stack);
            world.join(s, GroupAddr::new(1));
        }
        assert_eq!(mk(WorkloadKind::RoundRobin).schedule(&mut world, SimTime::ZERO), 10);
        assert_eq!(mk(WorkloadKind::SingleSender).schedule(&mut world, SimTime::ZERO), 10);
        assert_eq!(mk(WorkloadKind::AllToAll).schedule(&mut world, SimTime::ZERO), 20);
    }
}
