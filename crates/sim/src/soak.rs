//! Chaos-soak campaigns: seeded random fault plans, safety **and**
//! liveness oracles evaluated every quiet window, and delta-debugging
//! minimization of violating plans into replayable `(seed, plan)`
//! artifacts.
//!
//! The safety checkers of [`crate::invariants`] say a run never did the
//! wrong thing; the soak runner exists to catch the other failure mode —
//! the run that *stops doing anything at all*.  A campaign iteration:
//!
//! 1. [`gen_plan`] derives a random [`SoakPlan`] from the seed: set-based
//!    partitions with built-in heals, fail-stop crashes, suspicion storms
//!    and scripted merge nudges, scattered over a virtual-time horizon and
//!    interleaved with a round-robin multicast workload.
//! 2. [`run_soak`] executes the plan on a [`SimWorld`], sampling every
//!    member's [`Stack::pending_work`] into a
//!    [`ProgressWatchdog`][crate::invariants::ProgressWatchdog] each
//!    half-quiet window and running the prefix-safe safety checkers as it
//!    goes; after the last disturbance it requires post-heal view
//!    convergence and final-view delivery agreement.
//! 3. On violation, [`minimize_plan`] re-runs [`ddmin`] over the plan's
//!    event list until no single chunk can be removed, and
//!    [`serialize_artifact`] emits a line-oriented `(seed, plan)` file
//!    that [`parse_artifact`] replays byte-identically.
//!
//! `horus-sim` cannot name concrete protocol layers (the dependency points
//! the other way), so every entry point takes a *stack factory*; callers
//! hand in `horus_layers::registry::build_stack` partially applied to a
//! descriptor string, which the artifact records verbatim.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use horus_core::prelude::*;
use horus_net::{FaultRule, NetConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::invariants::{
    check_fifo, check_final_view_delivery, check_total_order, check_view_convergence,
    check_virtual_synchrony, DeliveryLog, ProgressWatchdog, Violation,
};
use crate::workload::{Workload, WorkloadKind};
use crate::world::SimWorld;

/// Builds one endpoint's protocol stack.  Callers supply this because the
/// layer library lives above `horus-sim` in the dependency graph.
pub type StackFactory<'a> = &'a dyn Fn(EndpointAddr) -> Stack;

/// Salt mixed into the seed for plan generation so the plan RNG and the
/// world's network RNG draw from independent streams.
const PLAN_SALT: u64 = 0x5A0C_CAFE;

/// One chaos action scheduled by a soak plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SoakAction {
    /// Symmetric set-based partition over `sides`, healing after `dur`.
    Partition { sides: Vec<Vec<EndpointAddr>>, dur: Duration },
    /// Fail-stop crash.
    Crash { ep: EndpointAddr },
    /// Every listed observer simultaneously suspects `target`.
    Storm { observers: Vec<EndpointAddr>, target: EndpointAddr },
    /// A scripted merge nudge: `who` probes `contact`.
    Merge { who: EndpointAddr, contact: EndpointAddr },
}

/// A chaos action with its virtual start time.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakEvent {
    /// Absolute virtual time the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: SoakAction,
}

/// An ordered list of chaos actions — the unit `ddmin` minimizes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SoakPlan {
    /// Events in firing order.
    pub events: Vec<SoakEvent>,
}

/// Campaign parameters.  Everything here plus the plan determines the
/// execution bit-for-bit: same `(SoakConfig, SoakPlan)` ⇒ same transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// World seed (network RNG) and, salted, the plan-generation seed.
    pub seed: u64,
    /// Endpoints `1..=members`.
    pub members: u64,
    /// Stack descriptor, recorded in artifacts.  The runner itself never
    /// parses it — the stack factory does.
    pub stack: String,
    /// Number of chaos events [`gen_plan`] scatters over the horizon.
    pub events: usize,
    /// Length of the fault-injection phase (after `settle`).
    pub horizon: Duration,
    /// Quiet period: the convergence deadline after the last disturbance,
    /// and the watchdog's stall threshold.
    pub quiet: Duration,
    /// Initial group-formation time before any fault fires.
    pub settle: Duration,
    /// Network frame-loss probability throughout the run.
    pub loss: f64,
    /// Workload slots (round-robin casts) spread over the horizon.
    pub casts: u64,
    /// Also run the total-order checker (stack must include TOTAL).
    pub check_total: bool,
    /// When a trace sink is attached ([`run_soak_traced`]), keep 1 record
    /// in `trace_sample` (1 = keep everything).  Purely observational —
    /// the run's transcript is byte-identical traced or not — but recorded
    /// in artifacts so a replay reproduces the same capture.
    pub trace_sample: u64,
}

/// The default 1-in-N sampling rate for traced soaks: cheap enough to
/// leave on for a whole campaign (see `BENCH_trace.json`'s
/// `sampling_sink` arm) while keeping long-soak traces tractable.
pub const DEFAULT_TRACE_SAMPLE: u64 = 64;

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 1,
            members: 4,
            stack: "MERGE(contacts=1,period=50):MBRSHIP:FD:FRAG:NAK:COM(promiscuous=true)".into(),
            events: 6,
            horizon: Duration::from_secs(4),
            quiet: Duration::from_millis(1500),
            settle: Duration::from_secs(3),
            loss: 0.02,
            casts: 40,
            check_total: false,
            trace_sample: DEFAULT_TRACE_SAMPLE,
        }
    }
}

impl SoakConfig {
    /// The endpoint addresses `1..=members`.
    pub fn member_addrs(&self) -> Vec<EndpointAddr> {
        (1..=self.members).map(EndpointAddr::new).collect()
    }
}

/// What a soak run produced.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// All violations, safety and liveness, tagged with the window time
    /// they were detected at.  Empty ⇔ the run was clean.
    pub violations: Vec<Violation>,
    /// Members that never crashed (the set liveness is judged over).
    pub correct: Vec<EndpointAddr>,
    /// Total casts delivered across all members.
    pub delivered: u64,
    /// Quiet windows the oracles ran in.
    pub windows: u64,
    /// Virtual time the run ended at.
    pub end: SimTime,
    /// A rendered view/delivery transcript of every member, used for
    /// byte-identical replay comparison.
    pub transcript: String,
    /// Per-member layer-state dumps at the end of the run (`pending` is
    /// [`Stack::pending_work`]) — the first place to look when the
    /// watchdog reports a wedge.
    pub dumps: Vec<(EndpointAddr, u64, String)>,
    /// Trace records forwarded to the attached sink (0 when untraced).
    pub trace_kept: u64,
    /// Trace records discarded by 1-in-N sampling (0 when untraced).
    pub trace_sampled_out: u64,
}

/// Derives the random fault plan for `cfg` — deterministic in
/// `cfg.seed` (salted so it does not correlate with the network RNG).
pub fn gen_plan(cfg: &SoakConfig) -> SoakPlan {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ PLAN_SALT);
    let members = cfg.member_addrs();
    let horizon_ms = (cfg.horizon.as_millis() as u64).max(1);
    // Keep at least two members alive so liveness has a subject, and
    // never crash the first member: it doubles as the MERGE rendezvous
    // contact in the default stack, and a group whose only contact is
    // dead cannot re-merge no matter how correct the protocol is.
    let mut crash_budget = cfg.members.saturating_sub(2).min(cfg.members / 2);
    let mut uncrashed: Vec<EndpointAddr> = members[1..].to_vec();
    let mut events = Vec::with_capacity(cfg.events);
    for _ in 0..cfg.events {
        let at = SimTime::ZERO + cfg.settle + Duration::from_millis(rng.gen_range(0..horizon_ms));
        let kind = rng.gen_range(0u32..100);
        let action = if kind < 40 {
            // Random two-way split; re-deal a lopsided coin until both
            // sides are non-empty (bounded: fall back to isolating ep 1).
            let mut a = Vec::new();
            let mut b = Vec::new();
            for &m in &members {
                if rng.gen_bool(0.5) {
                    a.push(m);
                } else {
                    b.push(m);
                }
            }
            if a.is_empty() || b.is_empty() {
                a = vec![members[0]];
                b = members[1..].to_vec();
            }
            let dur = Duration::from_millis(rng.gen_range(200..900));
            SoakAction::Partition { sides: vec![a, b], dur }
        } else if kind < 60 {
            let target = members[rng.gen_range(0..members.len())];
            let mut observers: Vec<EndpointAddr> =
                members.iter().copied().filter(|&m| m != target && rng.gen_bool(0.6)).collect();
            if observers.is_empty() {
                observers = members.iter().copied().find(|&m| m != target).into_iter().collect();
            }
            SoakAction::Storm { observers, target }
        } else if kind < 80 || crash_budget == 0 || uncrashed.len() <= 1 {
            let who = members[rng.gen_range(0..members.len())];
            let mut contact = members[rng.gen_range(0..members.len())];
            if contact == who {
                contact =
                    members[(members.iter().position(|&m| m == who).unwrap() + 1) % members.len()];
            }
            SoakAction::Merge { who, contact }
        } else {
            crash_budget -= 1;
            let victim = uncrashed.remove(rng.gen_range(0..uncrashed.len()));
            SoakAction::Crash { ep: victim }
        };
        events.push(SoakEvent { at, action });
    }
    events.sort_by_key(|x| x.at);
    SoakPlan { events }
}

/// Executes `plan` under `cfg`, running the safety checkers and the
/// progress watchdog every half-quiet window and the convergence /
/// final-delivery liveness oracles once the world should have settled.
/// Stops at the first violating window.
pub fn run_soak(cfg: &SoakConfig, plan: &SoakPlan, factory: StackFactory) -> SoakOutcome {
    run_soak_traced(cfg, plan, factory, None)
}

/// [`run_soak`] with an optional trace sink attached to the world.  The
/// sink is wrapped in a 1-in-`cfg.trace_sample` [`SamplingSink`] so long
/// campaigns stay tractable; kept/discarded counts land in the outcome.
/// Tracing is observational only — the transcript is byte-identical with
/// or without a sink (`soak_replay` pins this).
pub fn run_soak_traced(
    cfg: &SoakConfig,
    plan: &SoakPlan,
    factory: StackFactory,
    sink: Option<Arc<dyn TraceSink>>,
) -> SoakOutcome {
    let mut net = NetConfig::reliable();
    net.loss = cfg.loss;
    let mut w = SimWorld::new(cfg.seed, net);
    let members = cfg.member_addrs();
    for &m in &members {
        w.add_endpoint(factory(m));
        w.join(m, GroupAddr::new(1));
    }
    let sampler = sink.map(|s| Arc::new(SamplingSink::new(s, cfg.trace_sample)));
    if let Some(s) = &sampler {
        w.set_tracer(s.clone());
    }

    let start = SimTime::ZERO + cfg.settle;
    let wl = Workload {
        kind: WorkloadKind::RoundRobin,
        senders: members.clone(),
        slots: cfg.casts,
        interval: match (cfg.horizon.as_nanos() as u64).checked_div(cfg.casts) {
            Some(per_cast) => Duration::from_nanos(per_cast.max(1)),
            None => Duration::from_millis(1),
        },
        payload: 48,
    };
    wl.schedule(&mut w, start + Duration::from_millis(1));

    let mut watchdog = ProgressWatchdog::new(cfg.quiet);
    let mut crashed: BTreeSet<EndpointAddr> = BTreeSet::new();
    // The liveness clock starts once the last fault has healed AND the
    // workload has drained.
    let mut last_disturbance = start + wl.duration();
    watchdog.disturb(last_disturbance);
    for ev in &plan.events {
        watchdog.disturb(ev.at);
        last_disturbance = last_disturbance.max(ev.at);
        match &ev.action {
            SoakAction::Partition { sides, dur } => {
                let heal = ev.at + *dur;
                watchdog.disturb(heal);
                last_disturbance = last_disturbance.max(heal);
                w.fault_at(
                    ev.at,
                    FaultRule::Partition { sides: sides.clone(), start: ev.at, end: Some(heal) },
                );
            }
            SoakAction::Crash { ep } => {
                crashed.insert(*ep);
                w.crash_at(ev.at, *ep);
            }
            SoakAction::Storm { observers, target } => {
                w.fault_at(
                    ev.at,
                    FaultRule::SuspicionStorm { observers: observers.clone(), target: *target },
                );
            }
            SoakAction::Merge { who, contact } => {
                w.down_at(ev.at, *who, Down::Merge { contact: *contact });
            }
        }
    }

    let deadline = last_disturbance + cfg.quiet;
    let end = deadline + cfg.quiet;
    let correct: Vec<EndpointAddr> =
        members.iter().copied().filter(|m| !crashed.contains(m)).collect();

    let step = (cfg.quiet.as_nanos() as u64 / 2).max(1_000_000);
    let mut t = SimTime::ZERO;
    let mut windows = 0u64;
    let finish = |w: &SimWorld, violations: Vec<Violation>, windows: u64, t: SimTime| {
        let delivered: u64 = members.iter().map(|&m| w.delivered_casts(m).len() as u64).sum();
        let dumps = members
            .iter()
            .filter_map(|&m| {
                let s = w.stack(m)?;
                let layers = s
                    .dump()
                    .into_iter()
                    .map(|(name, state)| format!("{name}[{state}]"))
                    .collect::<Vec<_>>()
                    .join(" ");
                Some((m, s.pending_work(), layers))
            })
            .collect();
        SoakOutcome {
            violations,
            correct: correct.clone(),
            delivered,
            windows,
            end: t,
            transcript: transcript(w, &members),
            dumps,
            trace_kept: sampler.as_ref().map_or(0, |s| s.kept()),
            trace_sampled_out: sampler.as_ref().map_or(0, |s| s.sampled_out()),
        }
    };
    while t < end {
        t = SimTime::from_nanos((t.as_nanos() + step).min(end.as_nanos()));
        w.run_until(t);
        windows += 1;
        for &m in &members {
            if crashed.contains(&m) {
                continue;
            }
            if let Some(s) = w.stack(m) {
                watchdog.observe(t, m, s.pending_work());
            }
        }
        let logs: Vec<DeliveryLog> =
            members.iter().map(|&m| DeliveryLog::from_upcalls(m, w.upcalls(m))).collect();
        let mut vs = check_virtual_synchrony(&logs);
        vs.extend(check_fifo(&logs, Workload::parse));
        if cfg.check_total {
            vs.extend(check_total_order(&logs));
        }
        vs.extend(watchdog.violations());
        if !vs.is_empty() {
            let tagged = vs.into_iter().map(|v| Violation(format!("[t={t}] {v}"))).collect();
            return finish(&w, tagged, windows, t);
        }
    }

    // Post-heal liveness: everyone correct converges on one final view of
    // exactly the correct set, and agrees on the final epoch's deliveries.
    let logs: Vec<DeliveryLog> =
        members.iter().map(|&m| DeliveryLog::from_upcalls(m, w.upcalls(m))).collect();
    let mut vs = check_view_convergence(&logs, &correct, last_disturbance, cfg.quiet);
    vs.extend(check_final_view_delivery(&logs, &correct));
    let tagged = vs.into_iter().map(|v| Violation(format!("[t={t}] {v}"))).collect();
    finish(&w, tagged, windows, t)
}

/// Renders every member's timed view installations and deliveries into a
/// canonical text transcript — two runs are byte-identical iff this is.
pub fn transcript(w: &SimWorld, members: &[EndpointAddr]) -> String {
    let mut out = String::new();
    for &m in members {
        let log = DeliveryLog::from_upcalls(m, w.upcalls(m));
        let _ = writeln!(out, "ep {m}");
        let views = log.views_timed();
        let casts = log.casts_timed();
        let (mut i, mut j) = (0, 0);
        while i < views.len() || j < casts.len() {
            let take_view = j >= casts.len() || (i < views.len() && views[i].0 <= casts[j].0);
            if take_view {
                let (at, v) = views[i];
                let _ = writeln!(out, "  view@{at} {v}");
                i += 1;
            } else {
                let (at, src, key) = casts[j];
                match Workload::parse(key) {
                    Some((s, q)) => {
                        let _ = writeln!(out, "  cast@{at} from {src} ({s}:{q})");
                    }
                    None => {
                        let _ = writeln!(out, "  cast@{at} from {src} ({}B)", key.len());
                    }
                }
                j += 1;
            }
        }
    }
    out
}

/// Classic delta debugging over an item list: removes complements at
/// increasing granularity while `fails` keeps returning `true`.  Returns
/// the smallest failing sublist found — at worst the input itself.  The
/// caller's predicate owns any replay budget (return `false` when
/// exhausted and the current best survives).
///
/// This is the same reduction `horus-check` applies to schedule choice
/// lists; the soak runner applies it to fault-plan events.
pub fn ddmin<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut best = items.to_vec();
    let mut n = 2usize;
    while best.len() >= 2 {
        let chunk = best.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < best.len() {
            let end = (start + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - start));
            candidate.extend_from_slice(&best[..start]);
            candidate.extend_from_slice(&best[end..]);
            if fails(&candidate) {
                best = candidate;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(best.len());
        }
    }
    best
}

/// Minimizes a violating plan with [`ddmin`]: keeps removing events while
/// the run still violates *some* oracle.  `budget` caps replay count.
pub fn minimize_plan(
    cfg: &SoakConfig,
    plan: &SoakPlan,
    factory: StackFactory,
    budget: usize,
) -> SoakPlan {
    let mut left = budget;
    let events = ddmin(&plan.events, |subset| {
        if left == 0 {
            return false;
        }
        left -= 1;
        let candidate = SoakPlan { events: subset.to_vec() };
        !run_soak(cfg, &candidate, factory).violations.is_empty()
    });
    SoakPlan { events }
}

// ---------------------------------------------------------------------------
// (seed, plan) artifacts
// ---------------------------------------------------------------------------

const ARTIFACT_HEADER: &str = "# horus-soak plan v1";

fn fmt_members(eps: &[EndpointAddr]) -> String {
    eps.iter().map(|e| e.raw().to_string()).collect::<Vec<_>>().join(",")
}

/// Serializes `(cfg, plan)` plus an optional verdict into the replayable
/// line-oriented artifact format.  Verdict lines are comments: parsing
/// ignores them, so `serialize → parse → serialize` is byte-stable.
pub fn serialize_artifact(cfg: &SoakConfig, plan: &SoakPlan, violations: &[Violation]) -> String {
    serialize_artifact_traced(cfg, plan, violations, None)
}

/// [`serialize_artifact`] with an optional `(kept, sampled_out)` trace
/// capture report.  The report is a comment — parsing ignores it — so a
/// traced capture replays byte-identically to an untraced one.
pub fn serialize_artifact_traced(
    cfg: &SoakConfig,
    plan: &SoakPlan,
    violations: &[Violation],
    trace: Option<(u64, u64)>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{ARTIFACT_HEADER}");
    let _ = writeln!(out, "seed: {}", cfg.seed);
    let _ = writeln!(out, "members: {}", cfg.members);
    let _ = writeln!(out, "stack: {}", cfg.stack);
    let _ = writeln!(out, "events: {}", cfg.events);
    let _ = writeln!(out, "horizon_us: {}", cfg.horizon.as_micros());
    let _ = writeln!(out, "quiet_us: {}", cfg.quiet.as_micros());
    let _ = writeln!(out, "settle_us: {}", cfg.settle.as_micros());
    let _ = writeln!(out, "loss: {}", cfg.loss);
    let _ = writeln!(out, "casts: {}", cfg.casts);
    let _ = writeln!(out, "check_total: {}", cfg.check_total);
    // Written only when non-default so artifacts from before the knob
    // existed stay byte-stable through a parse → serialize round trip.
    if cfg.trace_sample != DEFAULT_TRACE_SAMPLE {
        let _ = writeln!(out, "trace_sample: {}", cfg.trace_sample);
    }
    for ev in &plan.events {
        let at = ev.at.as_micros();
        match &ev.action {
            SoakAction::Partition { sides, dur } => {
                let sides = sides.iter().map(|s| fmt_members(s)).collect::<Vec<_>>().join("|");
                let _ = writeln!(out, "event: {at} partition {sides} {}", dur.as_micros());
            }
            SoakAction::Crash { ep } => {
                let _ = writeln!(out, "event: {at} crash {}", ep.raw());
            }
            SoakAction::Storm { observers, target } => {
                let _ =
                    writeln!(out, "event: {at} storm {}>{}", fmt_members(observers), target.raw());
            }
            SoakAction::Merge { who, contact } => {
                let _ = writeln!(out, "event: {at} merge {}>{}", who.raw(), contact.raw());
            }
        }
    }
    if let Some((kept, sampled_out)) = trace {
        let _ = writeln!(
            out,
            "# trace: kept={kept} sampled_out={sampled_out} (1-in-{})",
            cfg.trace_sample.max(1)
        );
    }
    for v in violations {
        let _ = writeln!(out, "# verdict: {v}");
    }
    out
}

fn parse_members(s: &str) -> Result<Vec<EndpointAddr>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<u64>()
                .map(EndpointAddr::new)
                .map_err(|_| format!("bad endpoint id {p:?}"))
        })
        .collect()
}

fn parse_event(rest: &str) -> Result<SoakEvent, String> {
    let mut it = rest.split_whitespace();
    let at = it
        .next()
        .and_then(|s| s.parse::<u64>().ok())
        .map(SimTime::from_micros)
        .ok_or_else(|| format!("bad event time in {rest:?}"))?;
    let kind = it.next().ok_or_else(|| format!("missing event kind in {rest:?}"))?;
    let action = match kind {
        "partition" => {
            let sides_s = it.next().ok_or("partition: missing sides")?;
            let dur = it
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .map(Duration::from_micros)
                .ok_or("partition: bad duration")?;
            let sides = sides_s.split('|').map(parse_members).collect::<Result<Vec<_>, _>>()?;
            SoakAction::Partition { sides, dur }
        }
        "crash" => {
            let ep = it
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .map(EndpointAddr::new)
                .ok_or("crash: bad endpoint")?;
            SoakAction::Crash { ep }
        }
        "storm" => {
            let spec = it.next().ok_or("storm: missing spec")?;
            let (obs, target) = spec.split_once('>').ok_or("storm: expected obs>target")?;
            SoakAction::Storm {
                observers: parse_members(obs)?,
                target: target
                    .parse::<u64>()
                    .map(EndpointAddr::new)
                    .map_err(|_| format!("storm: bad target {target:?}"))?,
            }
        }
        "merge" => {
            let spec = it.next().ok_or("merge: missing spec")?;
            let (who, contact) = spec.split_once('>').ok_or("merge: expected who>contact")?;
            SoakAction::Merge {
                who: who
                    .parse::<u64>()
                    .map(EndpointAddr::new)
                    .map_err(|_| format!("merge: bad who {who:?}"))?,
                contact: contact
                    .parse::<u64>()
                    .map(EndpointAddr::new)
                    .map_err(|_| format!("merge: bad contact {contact:?}"))?,
            }
        }
        other => return Err(format!("unknown event kind {other:?}")),
    };
    if it.next().is_some() {
        return Err(format!("trailing tokens in event {rest:?}"));
    }
    Ok(SoakEvent { at, action })
}

/// Parses an artifact produced by [`serialize_artifact`].
pub fn parse_artifact(text: &str) -> Result<(SoakConfig, SoakPlan), String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l.trim() == ARTIFACT_HEADER => {}
        other => return Err(format!("bad header {other:?}, expected {ARTIFACT_HEADER:?}")),
    }
    let mut cfg = SoakConfig::default();
    let mut events = Vec::new();
    for (no, raw) in lines.enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once(':')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| format!("line {}: expected `key: value`, got {line:?}", no + 2))?;
        let bad = |what: &str| format!("line {}: bad {what} {value:?}", no + 2);
        match key {
            "seed" => cfg.seed = value.parse().map_err(|_| bad("seed"))?,
            "members" => cfg.members = value.parse().map_err(|_| bad("members"))?,
            "stack" => cfg.stack = value.to_string(),
            "events" => cfg.events = value.parse().map_err(|_| bad("events"))?,
            "horizon_us" => {
                cfg.horizon = Duration::from_micros(value.parse().map_err(|_| bad("horizon_us"))?)
            }
            "quiet_us" => {
                cfg.quiet = Duration::from_micros(value.parse().map_err(|_| bad("quiet_us"))?)
            }
            "settle_us" => {
                cfg.settle = Duration::from_micros(value.parse().map_err(|_| bad("settle_us"))?)
            }
            "loss" => cfg.loss = value.parse().map_err(|_| bad("loss"))?,
            "casts" => cfg.casts = value.parse().map_err(|_| bad("casts"))?,
            "check_total" => cfg.check_total = value.parse().map_err(|_| bad("check_total"))?,
            "trace_sample" => cfg.trace_sample = value.parse().map_err(|_| bad("trace_sample"))?,
            "event" => {
                events.push(parse_event(value).map_err(|e| format!("line {}: {e}", no + 2))?)
            }
            other => return Err(format!("line {}: unknown key {other:?}", no + 2)),
        }
    }
    Ok((cfg, SoakPlan { events }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(n: u64) -> EndpointAddr {
        EndpointAddr::new(n)
    }

    #[test]
    fn ddmin_isolates_the_failing_pair() {
        let items: Vec<u32> = (1..=20).collect();
        let mut replays = 0;
        let min = ddmin(&items, |c| {
            replays += 1;
            c.contains(&7) && c.contains(&13)
        });
        assert_eq!(min, vec![7, 13]);
        assert!(replays < 200, "ddmin used {replays} replays");
    }

    #[test]
    fn ddmin_keeps_unshrinkable_input() {
        let items = vec![1, 2];
        assert_eq!(ddmin(&items, |c| c.len() == 2), vec![1, 2]);
    }

    #[test]
    fn gen_plan_is_deterministic_in_the_seed() {
        let cfg = SoakConfig::default();
        assert_eq!(gen_plan(&cfg), gen_plan(&cfg));
        let other = SoakConfig { seed: cfg.seed + 1, ..cfg.clone() };
        assert_ne!(gen_plan(&cfg), gen_plan(&other));
    }

    #[test]
    fn gen_plan_keeps_two_members_alive_and_sides_disjoint() {
        for seed in 0..50 {
            let cfg = SoakConfig { seed, events: 12, ..SoakConfig::default() };
            let plan = gen_plan(&cfg);
            assert_eq!(plan.events.len(), 12);
            let crashes =
                plan.events.iter().filter(|e| matches!(e.action, SoakAction::Crash { .. })).count()
                    as u64;
            assert!(crashes <= cfg.members - 2, "seed {seed}: {crashes} crashes");
            for ev in &plan.events {
                assert!(ev.at >= SimTime::ZERO + cfg.settle);
                if let SoakAction::Partition { sides, .. } = &ev.action {
                    assert_eq!(sides.len(), 2);
                    assert!(!sides[0].is_empty() && !sides[1].is_empty());
                    assert!(sides[0].iter().all(|m| !sides[1].contains(m)));
                }
            }
        }
    }

    #[test]
    fn artifact_roundtrips_byte_identically() {
        let cfg = SoakConfig { seed: 42, loss: 0.0375, ..SoakConfig::default() };
        let plan = SoakPlan {
            events: vec![
                SoakEvent {
                    at: SimTime::from_millis(3200),
                    action: SoakAction::Partition {
                        sides: vec![vec![ep(1), ep(2)], vec![ep(3), ep(4)]],
                        dur: Duration::from_millis(450),
                    },
                },
                SoakEvent {
                    at: SimTime::from_millis(4000),
                    action: SoakAction::Crash { ep: ep(3) },
                },
                SoakEvent {
                    at: SimTime::from_millis(4100),
                    action: SoakAction::Storm { observers: vec![ep(1), ep(2)], target: ep(4) },
                },
                SoakEvent {
                    at: SimTime::from_millis(5000),
                    action: SoakAction::Merge { who: ep(4), contact: ep(1) },
                },
            ],
        };
        let text = serialize_artifact(&cfg, &plan, &[Violation("stalled".into())]);
        let (cfg2, plan2) = parse_artifact(&text).unwrap();
        assert_eq!(cfg, cfg2);
        assert_eq!(plan, plan2);
        // Verdict comments are dropped; the replayable core is byte-stable.
        let again = serialize_artifact(&cfg2, &plan2, &[]);
        assert!(text.starts_with(&again));
    }

    #[test]
    fn artifact_records_non_default_sampling_and_trace_report() {
        let cfg = SoakConfig { trace_sample: 8, ..SoakConfig::default() };
        let text = serialize_artifact_traced(&cfg, &SoakPlan::default(), &[], Some((120, 840)));
        assert!(text.contains("trace_sample: 8\n"));
        assert!(text.contains("# trace: kept=120 sampled_out=840 (1-in-8)\n"));
        let (cfg2, _) = parse_artifact(&text).unwrap();
        assert_eq!(cfg2.trace_sample, 8);
        // Default sampling stays implicit so pre-existing artifacts
        // round-trip byte-identically.
        let plain = serialize_artifact(&SoakConfig::default(), &SoakPlan::default(), &[]);
        assert!(!plain.contains("trace_sample"));
        let (cfg3, _) = parse_artifact(&plain).unwrap();
        assert_eq!(cfg3.trace_sample, DEFAULT_TRACE_SAMPLE);
    }

    #[test]
    fn artifact_rejects_garbage() {
        assert!(parse_artifact("nonsense").is_err());
        let ok = serialize_artifact(&SoakConfig::default(), &SoakPlan::default(), &[]);
        assert!(parse_artifact(&(ok.clone() + "wat: 1\n")).is_err());
        assert!(parse_artifact(&(ok + "event: 5 reboot 1\n")).is_err());
    }
}
