//! The scripted failure detector promised by §5.
//!
//! MBRSHIP "receives failure notifications from a failure-detector object"
//! and must tolerate *inaccurate* detectors: a suspicion may name a member
//! that is perfectly alive.  [`FailureDetector`] is that object for the
//! simulated world — a deterministic schedule of `(time, observer, target)`
//! suspicions, installed into a [`SimWorld`](crate::SimWorld) before (or
//! during) a run.  Because the calendar breaks ties by insertion order, a
//! `(seed, script)` pair still identifies exactly one execution.
//!
//! For an *adaptive* in-stack detector driven by real message arrivals, see
//! the FD heartbeat layer in `horus-layers`; this type is its scripted,
//! adversarial counterpart for scenario tests.

use crate::world::SimWorld;
use horus_core::addr::EndpointAddr;
use horus_core::time::SimTime;

/// One scripted suspicion: at `at`, `observer` is told `target` failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Suspicion {
    /// When the detector fires.
    pub at: SimTime,
    /// The member receiving the (possibly false) notification.
    pub observer: EndpointAddr,
    /// The member being accused.
    pub target: EndpointAddr,
}

/// A deterministic schedule of failure-detector notifications (§5).
///
/// ```
/// use horus_sim::{FailureDetector, SimWorld};
/// use horus_net::NetConfig;
/// use horus_core::prelude::*;
///
/// let mut w = SimWorld::new(1, NetConfig::reliable());
/// let script = FailureDetector::new()
///     .suspect(SimTime::from_millis(10), EndpointAddr::new(1), EndpointAddr::new(3))
///     .suspect(SimTime::from_millis(10), EndpointAddr::new(2), EndpointAddr::new(3));
/// assert_eq!(script.len(), 2);
/// script.install(&mut w); // endpoints need not exist yet at install time
/// ```
#[derive(Debug, Clone, Default)]
pub struct FailureDetector {
    schedule: Vec<Suspicion>,
}

impl FailureDetector {
    /// An empty script.
    pub fn new() -> Self {
        FailureDetector::default()
    }

    /// Appends one suspicion to the script (builder style).
    pub fn suspect(mut self, at: SimTime, observer: EndpointAddr, target: EndpointAddr) -> Self {
        self.schedule.push(Suspicion { at, observer, target });
        self
    }

    /// Appends the same accusation delivered to several observers at once —
    /// a correlated false-positive burst, the §5 worst case.
    pub fn suspect_all(
        mut self,
        at: SimTime,
        observers: &[EndpointAddr],
        target: EndpointAddr,
    ) -> Self {
        for &observer in observers {
            self.schedule.push(Suspicion { at, observer, target });
        }
        self
    }

    /// The scripted suspicions, in script order.
    pub fn suspicions(&self) -> &[Suspicion] {
        &self.schedule
    }

    /// Number of scripted suspicions.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether the script is empty.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Schedules every suspicion into the world's calendar.  Entries keep
    /// script order at equal times, so installation is deterministic.
    pub fn install(&self, w: &mut SimWorld) {
        for s in &self.schedule {
            w.suspect_at(s.at, s.observer, s.target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    #[test]
    fn builder_accumulates_in_order() {
        let fd = FailureDetector::new().suspect(SimTime::from_millis(5), ep(1), ep(2)).suspect_all(
            SimTime::from_millis(9),
            &[ep(1), ep(3)],
            ep(2),
        );
        assert_eq!(fd.len(), 3);
        assert_eq!(fd.suspicions()[0].target, ep(2));
        assert_eq!(fd.suspicions()[1].observer, ep(1));
        assert_eq!(fd.suspicions()[2].observer, ep(3));
        assert!(!fd.is_empty());
    }

    #[test]
    fn install_populates_the_calendar() {
        use horus_net::NetConfig;
        let mut w = SimWorld::new(1, NetConfig::reliable());
        let fd = FailureDetector::new().suspect(SimTime::from_millis(5), ep(1), ep(2));
        fd.install(&mut w);
        assert_eq!(w.pending_events(), 1);
    }
}
