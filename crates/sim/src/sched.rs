//! The schedule-level choice point, extracted behind a trait.
//!
//! [`crate::world::SimWorld`] resolves *two* kinds of nondeterminism.  The
//! network's probabilistic physics (loss dice, latency jitter) go through
//! `horus_net::NetScheduler`; *which ready event fires next* — the ordering
//! freedom an asynchronous network grants — goes through this module's
//! [`Scheduler`].  The calendar order (earliest time, insertion-order
//! tie-break) is what every pre-existing test executes; that policy is
//! [`CalendarScheduler`], and [`SimWorld::run_scheduled`] driven by it is
//! step-for-step identical to [`SimWorld::run_until`].
//!
//! The bounded model checker (`horus-check`) implements [`Scheduler`] with a
//! choice list: at each branch point it consults the next recorded choice,
//! which is how a counterexample schedule replays byte-identically.

use crate::world::{ReadyEvent, SimWorld};
use horus_core::prelude::*;
use std::time::Duration;

/// One scheduling decision over a ready set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Fire `ready[i]` now (delaying everything else in the window).
    Fire(usize),
    /// Drop `ready[i]` — legal only for remote frame deliveries; the world
    /// refuses (and the executor halts) otherwise.
    Drop(usize),
    /// Crash an endpoint at the current instant, then re-offer the ready set.
    Crash(EndpointAddr),
    /// Inject a (possibly false) suspicion, then re-offer the ready set.
    Suspect {
        /// The endpoint being told.
        observer: EndpointAddr,
        /// The endpoint it will suspect.
        target: EndpointAddr,
    },
    /// Stop executing (bound exhausted / exploration cut).
    Halt,
}

/// Chooses the next [`Step`] given the world and its ready set.
///
/// `ready` is never empty, and index 0 is always the event
/// [`SimWorld::run_until`] would fire — so `Step::Fire(0)` forever *is* the
/// legacy executor.
pub trait Scheduler {
    /// Picks the next step.
    fn next_step(&mut self, world: &SimWorld, ready: &[ReadyEvent]) -> Step;
}

/// The production policy: strict calendar order, no induced faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct CalendarScheduler;

impl Scheduler for CalendarScheduler {
    fn next_step(&mut self, _world: &SimWorld, _ready: &[ReadyEvent]) -> Step {
        Step::Fire(0)
    }
}

/// Outcome of a [`SimWorld::run_scheduled`] drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No pending events remain at or before the deadline.
    Quiescent,
    /// The scheduler returned [`Step::Halt`].
    Halted,
    /// The scheduler returned an ill-formed step (index out of range, or a
    /// drop of an undroppable event).  The world is left as-is.
    Rejected,
}

impl SimWorld {
    /// Runs the world under an explicit [`Scheduler`] until `deadline`.
    ///
    /// Events within `window` of the earliest pending event form the ready
    /// set offered at each step; `window == 0` offers exact ties only, which
    /// makes `CalendarScheduler` reproduce [`SimWorld::run_until`] exactly.
    /// Like `run_until`, the clock ends at `deadline` even if the calendar
    /// drains early.
    pub fn run_scheduled(
        &mut self,
        sched: &mut dyn Scheduler,
        window: Duration,
        deadline: SimTime,
    ) -> RunOutcome {
        let mut ready: Vec<ReadyEvent> = Vec::new();
        let outcome = loop {
            match self.next_event_at() {
                Some(at) if at <= deadline => {}
                _ => break RunOutcome::Quiescent,
            }
            self.ready_events_into(window, &mut ready);
            match sched.next_step(self, &ready) {
                Step::Fire(i) => {
                    let Some(ev) = ready.get(i) else { break RunOutcome::Rejected };
                    self.fire(ev.id);
                }
                Step::Drop(i) => {
                    let ok = ready.get(i).is_some_and(|ev| self.drop_pending(ev.id));
                    if !ok {
                        break RunOutcome::Rejected;
                    }
                }
                Step::Crash(ep) => self.inject_crash(ep),
                Step::Suspect { observer, target } => self.inject_suspect(observer, target),
                Step::Halt => break RunOutcome::Halted,
            }
        };
        if outcome == RunOutcome::Quiescent {
            self.advance_to(deadline);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_net::NetConfig;

    #[derive(Debug, Default)]
    struct Echo;
    impl Layer for Echo {
        fn name(&self) -> &'static str {
            "ECHO"
        }
    }

    fn world_pair() -> (SimWorld, EndpointAddr, EndpointAddr) {
        let mut w = SimWorld::new(7, NetConfig::reliable());
        let a = EndpointAddr::new(1);
        let b = EndpointAddr::new(2);
        for ep in [a, b] {
            let stack = StackBuilder::new(ep).push(Box::new(Echo)).build().unwrap();
            w.add_endpoint(stack);
            w.join(ep, GroupAddr::new(1));
        }
        (w, a, b)
    }

    #[test]
    fn calendar_scheduler_matches_run_until() {
        let script = |w: &mut SimWorld, a: EndpointAddr| {
            for i in 0..20u8 {
                w.cast_bytes_at(SimTime::from_micros(u64::from(i) * 10), a, vec![i]);
            }
        };
        let (mut w1, a1, b1) = world_pair();
        script(&mut w1, a1);
        w1.run_until(SimTime::from_millis(5));

        let (mut w2, a2, b2) = world_pair();
        script(&mut w2, a2);
        let out = w2.run_scheduled(&mut CalendarScheduler, Duration::ZERO, SimTime::from_millis(5));
        assert_eq!(out, RunOutcome::Quiescent);
        assert_eq!(w1.now(), w2.now());
        assert_eq!(w1.delivered_casts(b1), w2.delivered_casts(b2));
        assert_eq!(w1.fingerprint(), w2.fingerprint());
        let _ = (a1, a2);
    }

    struct ReverseInWindow;
    impl Scheduler for ReverseInWindow {
        fn next_step(&mut self, _w: &SimWorld, ready: &[ReadyEvent]) -> Step {
            Step::Fire(ready.len() - 1)
        }
    }

    #[test]
    fn firing_out_of_order_reorders_delivery() {
        let (mut w, a, b) = world_pair();
        // Settle the t=0 join downcalls in calendar order first, so the
        // reversing scheduler only reorders the casts themselves.
        w.run_until(SimTime::from_micros(1));
        // Two casts scheduled a hair apart: both land in a 1ms ready window.
        w.cast_bytes_at(SimTime::from_micros(10), a, &b"first"[..]);
        w.cast_bytes_at(SimTime::from_micros(20), a, &b"second"[..]);
        let out = w.run_scheduled(
            &mut ReverseInWindow,
            Duration::from_millis(1),
            SimTime::from_millis(5),
        );
        assert_eq!(out, RunOutcome::Quiescent);
        let got: Vec<_> = w.delivered_casts(b).into_iter().map(|(_, m, _)| m).collect();
        assert_eq!(
            got,
            vec![bytes::Bytes::from_static(b"second"), bytes::Bytes::from_static(b"first")]
        );
    }

    #[test]
    fn drop_pending_suppresses_delivery_and_counts() {
        let (mut w, a, b) = world_pair();
        w.run_until(SimTime::from_micros(1));
        w.cast_bytes_at(SimTime::from_micros(10), a, &b"gone"[..]);
        struct DropAll;
        impl Scheduler for DropAll {
            fn next_step(&mut self, _w: &SimWorld, ready: &[ReadyEvent]) -> Step {
                for (i, ev) in ready.iter().enumerate() {
                    if ev.kind.droppable() {
                        return Step::Drop(i);
                    }
                }
                Step::Fire(0)
            }
        }
        w.run_scheduled(&mut DropAll, Duration::ZERO, SimTime::from_millis(5));
        assert!(w.delivered_casts(b).is_empty());
        assert_eq!(w.net_stats().dropped_induced, 1);
    }

    #[test]
    fn halt_leaves_pending_events() {
        let (mut w, a, _b) = world_pair();
        w.cast_bytes_at(SimTime::from_micros(10), a, &b"x"[..]);
        struct HaltNow;
        impl Scheduler for HaltNow {
            fn next_step(&mut self, _w: &SimWorld, _ready: &[ReadyEvent]) -> Step {
                Step::Halt
            }
        }
        let out = w.run_scheduled(&mut HaltNow, Duration::ZERO, SimTime::from_millis(5));
        assert_eq!(out, RunOutcome::Halted);
        assert!(w.pending_events() > 0);
    }
}
