//! The sharded run-to-completion executor (§10 problem 2, scaled out).
//!
//! The paper's answer to intra-stack threading costs is one scheduling
//! thread per stack; Babel's event executors and Ring Paxos's dispatch-
//! boundary batching show how that design scales to many stacks and high
//! rates.  This module combines the three ideas:
//!
//! * **Sharding** — N worker threads, each *owning* a disjoint set of
//!   stacks (assigned by endpoint address).  A stack is only ever touched
//!   by its owning worker, so there are no per-stack locks, no contended
//!   dispatch path, and — because each worker is a single-threaded
//!   run-to-completion loop over one input queue — each shard's execution
//!   is a deterministic function of its queue arrival order.
//! * **Batched dispatch** — workers drain their queue in bursts of up to
//!   [`ShardConfig::batch_max`] inputs and push them through
//!   [`Stack::handle_batch`] with one reusable [`EffectSink`]: one queue
//!   wake-up, one effect walk, and zero per-event allocations for a whole
//!   burst.  Consecutive casts from one endpoint leave through
//!   [`LoopbackNet::cast_batch`] under a single registry snapshot.
//! * **Direct shard delivery** — endpoints are registered on the loopback
//!   transport with a sink that pushes frames straight into the owning
//!   shard's queue, eliminating the per-endpoint pump thread (and its
//!   extra wake-up per frame) of [`crate::threaded::ThreadedEndpoint`].
//!
//! Timekeeping maps the monotonic OS clock onto [`SimTime`], exactly as in
//! the threaded executor, so protocol timers behave identically.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use horus_core::prelude::*;
use horus_core::stack::StackStats;
use horus_net::threaded::{Frame, FrameSink};
use horus_net::LoopbackNet;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning of the sharded executor.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of worker threads (and stack shards).  Stacks are assigned by
    /// `endpoint address % shards`.
    pub shards: usize,
    /// Maximum inputs drained from a shard's queue per dispatch burst.  `1`
    /// degenerates to per-event dispatch (the ablation baseline).
    pub batch_max: usize,
    /// Whether delivered upcalls are recorded (retrievable through
    /// [`ShardExecutor::take_upcalls`]).  Flood benchmarks switch this off
    /// and rely on the monotone counters alone.
    pub record_upcalls: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 1, batch_max: 64, record_upcalls: true }
    }
}

impl ShardConfig {
    /// `shards` workers, defaults otherwise.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig { shards: shards.max(1), ..ShardConfig::default() }
    }

    /// Overrides the dispatch burst limit.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Enables or disables upcall recording.
    pub fn record_upcalls(mut self, record: bool) -> Self {
        self.record_upcalls = record;
        self
    }
}

/// Per-endpoint observation shared between the owning worker and the
/// executor facade: monotone counters plus (optionally) the upcall log.
#[derive(Debug, Default)]
struct EpLog {
    /// Monotone count of CAST upcalls delivered.
    casts: AtomicUsize,
    /// Monotone count of all upcalls delivered.
    upcalls: AtomicUsize,
    /// The recorded upcalls (empty when recording is off).
    log: Mutex<Vec<Up>>,
}

enum ShardIn {
    /// A wire frame for `to`, pushed by the transport sink.
    Frame { to: EndpointAddr, frame: Frame },
    /// An application downcall.
    App { ep: EndpointAddr, down: Down },
    /// Adopt a stack (run its init) — sent once per endpoint at add time.
    AddStack { stack: Box<Stack>, log: Arc<EpLog> },
    /// Report every owned stack's counters.
    Stats { reply: Sender<Vec<(EndpointAddr, StackStats)>> },
    /// Drain and exit.
    Stop,
}

struct TimerEntry {
    due: Instant,
    ep: EndpointAddr,
    layer: usize,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due) // min-heap
    }
}

struct Owned {
    stack: Stack,
    log: Arc<EpLog>,
}

/// One shard: a single-threaded run-to-completion loop over the stacks it
/// owns.  All state here is thread-local to the worker.
struct Worker {
    rx: Receiver<ShardIn>,
    net: LoopbackNet,
    epoch: Instant,
    batch_max: usize,
    record_upcalls: bool,
    stacks: BTreeMap<EndpointAddr, Owned>,
    timers: BinaryHeap<TimerEntry>,
    /// Reusable effect buffer: zero allocations per event once warm.
    sink: EffectSink,
    /// Reusable input burst buffer.
    burst: Vec<ShardIn>,
    /// Reusable run buffer: consecutive same-endpoint inputs of a burst,
    /// fed to [`Stack::handle_batch`] in one call.
    run: Vec<StackInput>,
    /// Casts pending transmission for `pending_from`, flushed in one
    /// registry snapshot.
    pending_casts: Vec<WireFrame>,
    pending_from: Option<EndpointAddr>,
    /// Mirror of the owned stacks' trace sink (cached at adoption so the
    /// frame hot path never does a per-event map lookup): the worker
    /// records frame/timer *arrivals*; dispatch internals are recorded by
    /// the stacks themselves.
    tracer: Option<Arc<dyn TraceSink>>,
}

/// How long an idle worker sleeps when it has neither inputs nor timers.
const IDLE_WAIT: Duration = Duration::from_millis(5);

impl Worker {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn run(mut self) {
        loop {
            self.fire_due_timers();
            // Block for the first input of the burst (bounded by the next
            // timer), then drain greedily up to batch_max.
            let wait = match self.timers.peek() {
                Some(t) => t.due.saturating_duration_since(Instant::now()).min(IDLE_WAIT),
                None => IDLE_WAIT,
            };
            match self.rx.recv_timeout(wait) {
                Ok(first) => {
                    let mut burst = std::mem::take(&mut self.burst);
                    burst.push(first);
                    while burst.len() < self.batch_max {
                        match self.rx.try_recv() {
                            Ok(input) => burst.push(input),
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                        }
                    }
                    let stop = self.process_burst(&mut burst);
                    self.burst = burst;
                    if stop {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Processes one drained burst; returns `true` on `Stop`.
    ///
    /// Consecutive inputs for the same endpoint are grouped into a run and
    /// dispatched through [`Stack::handle_batch`]: one `set_now`, one
    /// reusable sink, one effect walk per run instead of per event.
    fn process_burst(&mut self, burst: &mut Vec<ShardIn>) -> bool {
        let now = self.now();
        let mut stop = false;
        let mut run = std::mem::take(&mut self.run);
        let mut run_ep: Option<EndpointAddr> = None;
        for input in burst.drain(..) {
            let (ep, stack_input) = match input {
                ShardIn::Frame { to, frame } => {
                    if let Some(t) = &self.tracer {
                        t.record(TraceEvent {
                            at: now,
                            ep: to,
                            kind: TraceKind::FrameDeliver {
                                from: frame.from,
                                cast: frame.cast,
                                bytes: frame.wire.len(),
                                digest: 0,
                                seq: 0,
                            },
                        });
                    }
                    (
                        to,
                        StackInput::FromNet {
                            from: frame.from,
                            cast: frame.cast,
                            wire: frame.wire,
                        },
                    )
                }
                ShardIn::App { ep, down } => (ep, StackInput::FromApp(down)),
                ShardIn::AddStack { stack, log } => {
                    self.flush_run(run_ep.take(), &mut run, now);
                    self.adopt(*stack, log);
                    continue;
                }
                ShardIn::Stats { reply } => {
                    self.flush_run(run_ep.take(), &mut run, now);
                    self.flush_casts();
                    let stats: Vec<(EndpointAddr, StackStats)> =
                        self.stacks.iter().map(|(&ep, o)| (ep, o.stack.stats().clone())).collect();
                    let _ = reply.send(stats);
                    continue;
                }
                ShardIn::Stop => {
                    stop = true;
                    break;
                }
            };
            if run_ep != Some(ep) {
                self.flush_run(run_ep, &mut run, now);
                run_ep = Some(ep);
            }
            run.push(stack_input);
        }
        self.flush_run(run_ep, &mut run, now);
        self.run = run;
        self.flush_casts();
        stop
    }

    /// Dispatches a buffered same-endpoint run through `handle_batch`.
    fn flush_run(&mut self, ep: Option<EndpointAddr>, run: &mut Vec<StackInput>, now: SimTime) {
        if run.is_empty() {
            return;
        }
        let Some(ep) = ep else {
            run.clear();
            return;
        };
        match self.stacks.get_mut(&ep) {
            Some(owned) => {
                owned.stack.set_now(now);
                owned.stack.handle_batch(run.drain(..), &mut self.sink);
            }
            None => run.clear(),
        }
        self.apply_effects(ep);
    }

    fn adopt(&mut self, mut stack: Stack, log: Arc<EpLog>) {
        let ep = stack.local_addr();
        if let Some(t) = stack.tracer() {
            self.tracer = Some(t.clone());
        }
        stack.set_now(self.now());
        let fx = stack.init();
        self.stacks.insert(ep, Owned { stack, log });
        self.sink.extend(fx);
        self.apply_effects(ep);
    }

    /// Run-to-completion dispatch of one input into its owning stack.
    fn dispatch(&mut self, ep: EndpointAddr, input: StackInput, now: SimTime) {
        let Some(owned) = self.stacks.get_mut(&ep) else { return };
        owned.stack.set_now(now);
        owned.stack.handle_into(input, &mut self.sink);
        self.apply_effects(ep);
    }

    fn fire_due_timers(&mut self) {
        while self.timers.peek().is_some_and(|t| t.due <= Instant::now()) {
            let Some(t) = self.timers.pop() else { break };
            let now = self.now();
            if let Some(sink) = &self.tracer {
                sink.record(TraceEvent {
                    at: now,
                    ep: t.ep,
                    kind: TraceKind::TimerFire {
                        layer: t.layer,
                        token: t.token,
                        digest: 0,
                        seq: 0,
                    },
                });
            }
            self.dispatch(t.ep, StackInput::Timer { layer: t.layer, token: t.token, now }, now);
        }
        self.flush_casts();
    }

    /// Drains the sink, performing `ep`'s effects.  Casts are accumulated
    /// and flushed in one [`LoopbackNet::cast_batch`] snapshot; any effect
    /// whose transport ordering could interleave with them flushes first.
    fn apply_effects(&mut self, ep: EndpointAddr) {
        if self.pending_from != Some(ep) {
            self.flush_casts();
            self.pending_from = Some(ep);
        }
        let log = self.stacks.get(&ep).map(|o| Arc::clone(&o.log));
        // Move the sink out so its drain doesn't pin `self`; it (and its
        // capacity) goes straight back afterwards.
        let mut sink = std::mem::take(&mut self.sink);
        for fx in sink.drain() {
            match fx {
                Effect::Deliver(up) => {
                    if let Some(log) = &log {
                        if matches!(up, Up::Cast { .. }) {
                            log.casts.fetch_add(1, Ordering::Relaxed);
                        }
                        log.upcalls.fetch_add(1, Ordering::Relaxed);
                        if self.record_upcalls {
                            log.log.lock().push(up);
                        }
                    }
                }
                Effect::NetCast { wire } => self.pending_casts.push(wire),
                Effect::NetSend { dests, wire } => {
                    self.flush_casts_to(ep);
                    self.net.send(ep, &dests, wire);
                }
                Effect::NetJoin { group } => {
                    self.flush_casts_to(ep);
                    self.net.join(group, ep);
                }
                Effect::NetLeave => {
                    self.flush_casts_to(ep);
                    self.net.leave(ep);
                }
                Effect::SetTimer { layer, token, delay } => {
                    self.timers.push(TimerEntry { due: Instant::now() + delay, ep, layer, token });
                }
                Effect::Trace(_) => {}
            }
        }
        self.sink = sink;
    }

    fn flush_casts(&mut self) {
        if let Some(from) = self.pending_from.take() {
            self.flush_casts_to(from);
        }
    }

    fn flush_casts_to(&mut self, from: EndpointAddr) {
        if !self.pending_casts.is_empty() {
            self.net.cast_batch(from, self.pending_casts.drain(..));
        }
    }
}

struct EpEntry {
    shard: usize,
    log: Arc<EpLog>,
    layout: Arc<HeaderLayout>,
}

/// The transport sink for one endpoint: frames go straight into the owning
/// shard's queue.  Bursts are published through `send_iter` — one lock and
/// one worker wake-up per burst, which is where the dispatch-boundary
/// batching pays on the receive side.
struct ShardSink {
    ep: EndpointAddr,
    tx: Sender<ShardIn>,
}

impl FrameSink for ShardSink {
    fn deliver(&self, frame: Frame) -> bool {
        self.tx.send(ShardIn::Frame { to: self.ep, frame }).is_ok()
    }

    fn deliver_many(&self, frames: &mut Vec<Frame>) -> usize {
        let ep = self.ep;
        self.tx
            .send_iter(frames.drain(..).map(|frame| ShardIn::Frame { to: ep, frame }))
            .unwrap_or(0)
    }
}

/// The sharded executor: `shards` worker threads over one loopback
/// transport, each owning a disjoint set of stacks.
///
/// ```no_run
/// use horus_sim::shard::{ShardConfig, ShardExecutor};
/// use horus_net::LoopbackNet;
/// use horus_core::prelude::*;
/// use std::time::Duration;
///
/// #[derive(Debug, Default)]
/// struct Nop;
/// impl Layer for Nop { fn name(&self) -> &'static str { "NOP" } }
///
/// let mut ex = ShardExecutor::new(LoopbackNet::new(), ShardConfig::with_shards(2));
/// for i in 1..=2 {
///     let s = StackBuilder::new(EndpointAddr::new(i)).push(Box::new(Nop)).build()?;
///     ex.add_stack(s);
///     ex.down(EndpointAddr::new(i), Down::Join { group: GroupAddr::new(1) });
/// }
/// std::thread::sleep(Duration::from_millis(10));
/// ex.cast_bytes(EndpointAddr::new(1), &b"hi"[..]);
/// assert!(ex.wait_until(Duration::from_secs(1), |ex| {
///     ex.cast_count(EndpointAddr::new(2)) >= 1
/// }));
/// ex.stop();
/// # Ok::<(), HorusError>(())
/// ```
pub struct ShardExecutor {
    txs: Vec<Sender<ShardIn>>,
    workers: Vec<JoinHandle<()>>,
    net: LoopbackNet,
    eps: BTreeMap<EndpointAddr, EpEntry>,
    stopped: bool,
}

impl ShardExecutor {
    /// Spawns the shard workers over `net`.
    pub fn new(net: LoopbackNet, config: ShardConfig) -> Self {
        let n = config.shards.max(1);
        let mut txs = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = unbounded::<ShardIn>();
            let worker = Worker {
                rx,
                net: net.clone(),
                epoch: Instant::now(),
                batch_max: config.batch_max.max(1),
                record_upcalls: config.record_upcalls,
                stacks: BTreeMap::new(),
                timers: BinaryHeap::new(),
                sink: EffectSink::with_capacity(64),
                burst: Vec::with_capacity(config.batch_max.max(1)),
                run: Vec::with_capacity(config.batch_max.max(1)),
                pending_casts: Vec::with_capacity(config.batch_max.max(1)),
                pending_from: None,
                tracer: None,
            };
            txs.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("horus-shard-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn shard worker"),
            );
        }
        ShardExecutor { txs, workers, net, eps: BTreeMap::new(), stopped: false }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// The transport this executor runs over.
    pub fn net(&self) -> &LoopbackNet {
        &self.net
    }

    /// The shard index that owns (or would own) `ep`.
    pub fn shard_of(&self, ep: EndpointAddr) -> usize {
        (ep.raw() % self.txs.len() as u64) as usize
    }

    /// Hands a stack to its owning shard and registers it on the transport
    /// with a sink that delivers frames straight into that shard's queue.
    pub fn add_stack(&mut self, stack: Stack) -> EndpointAddr {
        let ep = stack.local_addr();
        assert!(!self.eps.contains_key(&ep), "endpoint {ep} already added");
        let shard = self.shard_of(ep);
        let layout = stack.layout().clone();
        let log = Arc::new(EpLog::default());
        let tx = self.txs[shard].clone();
        self.net.register_sink(ep, Arc::new(ShardSink { ep, tx }));
        let _ = self.txs[shard]
            .send(ShardIn::AddStack { stack: Box::new(stack), log: Arc::clone(&log) });
        self.eps.insert(ep, EpEntry { shard, log, layout });
        ep
    }

    fn entry(&self, ep: EndpointAddr) -> &EpEntry {
        self.eps.get(&ep).unwrap_or_else(|| panic!("unknown endpoint {ep}"))
    }

    /// Issues a downcall to `ep`'s stack.
    pub fn down(&self, ep: EndpointAddr, down: Down) {
        let entry = self.entry(ep);
        let _ = self.txs[entry.shard].send(ShardIn::App { ep, down });
    }

    /// Creates a message against `ep`'s stack layout.
    pub fn new_message(&self, ep: EndpointAddr, body: impl Into<Bytes>) -> Message {
        Message::new(self.entry(ep).layout.clone(), body)
    }

    /// Convenience: cast an application payload from `ep`.
    pub fn cast_bytes(&self, ep: EndpointAddr, body: impl Into<Bytes>) {
        let msg = self.new_message(ep, body);
        self.down(ep, Down::Cast(msg));
    }

    /// Monotone count of CAST upcalls delivered to `ep`.
    pub fn cast_count(&self, ep: EndpointAddr) -> usize {
        self.entry(ep).log.casts.load(Ordering::Relaxed)
    }

    /// Monotone count of all upcalls delivered to `ep`.
    pub fn upcall_count(&self, ep: EndpointAddr) -> usize {
        self.entry(ep).log.upcalls.load(Ordering::Relaxed)
    }

    /// Drains `ep`'s recorded upcalls (empty when recording is disabled).
    pub fn take_upcalls(&self, ep: EndpointAddr) -> Vec<Up> {
        std::mem::take(&mut *self.entry(ep).log.log.lock())
    }

    /// Busy-waits (politely) until `pred` holds or `timeout` elapses;
    /// returns whether the predicate held.
    pub fn wait_until(&self, timeout: Duration, mut pred: impl FnMut(&Self) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pred(self) {
                return true;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        pred(self)
    }

    /// Every stack's counters, by endpoint (a synchronous round-trip to each
    /// shard worker).
    pub fn stats_by_endpoint(&self) -> BTreeMap<EndpointAddr, StackStats> {
        let mut out = BTreeMap::new();
        for tx in &self.txs {
            let (reply_tx, reply_rx) = unbounded();
            if tx.send(ShardIn::Stats { reply: reply_tx }).is_err() {
                continue;
            }
            if let Ok(stats) = reply_rx.recv_timeout(Duration::from_secs(5)) {
                out.extend(stats);
            }
        }
        out
    }

    /// Per-shard aggregated counters (index = shard).
    pub fn shard_stats(&self) -> Vec<StackStats> {
        let mut per_shard = vec![StackStats::default(); self.txs.len()];
        for (ep, stats) in self.stats_by_endpoint() {
            per_shard[self.shard_of(ep)].merge(&stats);
        }
        per_shard
    }

    /// All shards' counters merged into one.
    pub fn aggregate_stats(&self) -> StackStats {
        let mut total = StackStats::default();
        for s in self.shard_stats() {
            total.merge(&s);
        }
        total
    }

    /// Stops the workers and deregisters every endpoint.
    pub fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for ep in self.eps.keys() {
            self.net.deregister(*ep);
        }
        for tx in &self.txs {
            let _ = tx.send(ShardIn::Stop);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ShardExecutor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Nop;
    impl Layer for Nop {
        fn name(&self) -> &'static str {
            "NOP"
        }
    }

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn nop_stack(i: u64) -> Stack {
        StackBuilder::new(ep(i)).push(Box::new(Nop)).build().unwrap()
    }

    fn flood(shards: usize, batch_max: usize) {
        let cfg = ShardConfig::with_shards(shards).batch_max(batch_max);
        let mut ex = ShardExecutor::new(LoopbackNet::new(), cfg);
        let g = GroupAddr::new(1);
        for i in 1..=4 {
            ex.add_stack(nop_stack(i));
            ex.down(ep(i), Down::Join { group: g });
        }
        std::thread::sleep(Duration::from_millis(20));
        for k in 0..50u8 {
            ex.cast_bytes(ep(1), vec![k]);
        }
        for i in 1..=4 {
            assert!(
                ex.wait_until(Duration::from_secs(5), |ex| ex.cast_count(ep(i)) >= 50),
                "ep {i} saw {}/50 casts under {shards} shards batch {batch_max}",
                ex.cast_count(ep(i))
            );
        }
        ex.stop();
    }

    #[test]
    fn delivers_across_shards() {
        flood(3, 64);
    }

    #[test]
    fn delivers_with_single_shard() {
        flood(1, 64);
    }

    #[test]
    fn delivers_unbatched() {
        flood(2, 1);
    }

    #[test]
    fn stacks_are_sharded_disjointly() {
        let mut ex = ShardExecutor::new(LoopbackNet::new(), ShardConfig::with_shards(3));
        for i in 1..=9 {
            ex.add_stack(nop_stack(i));
        }
        for i in 1..=9u64 {
            assert_eq!(ex.shard_of(ep(i)), (i % 3) as usize);
        }
        ex.stop();
    }

    #[test]
    fn timers_fire_under_real_time() {
        #[derive(Debug, Default)]
        struct Tick {
            count: u64,
        }
        impl Layer for Tick {
            fn name(&self) -> &'static str {
                "TICK"
            }
            fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
                ctx.set_timer(Duration::from_millis(5), 0);
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut LayerCtx<'_>) {
                self.count += 1;
                if self.count < 3 {
                    ctx.set_timer(Duration::from_millis(5), 0);
                } else {
                    ctx.up(Up::Exit);
                }
            }
        }
        let mut ex = ShardExecutor::new(LoopbackNet::new(), ShardConfig::default());
        let s = StackBuilder::new(ep(9)).push(Box::new(Tick::default())).build().unwrap();
        ex.add_stack(s);
        assert!(ex.wait_until(Duration::from_secs(5), |ex| {
            ex.take_upcalls(ep(9)).iter().any(|u| matches!(u, Up::Exit))
        }));
        ex.stop();
    }

    #[test]
    fn stats_aggregate_per_shard_and_overall() {
        let mut ex =
            ShardExecutor::new(LoopbackNet::new(), ShardConfig::with_shards(2).batch_max(8));
        let g = GroupAddr::new(1);
        for i in 1..=2 {
            ex.add_stack(nop_stack(i));
            ex.down(ep(i), Down::Join { group: g });
        }
        std::thread::sleep(Duration::from_millis(20));
        for _ in 0..10 {
            ex.cast_bytes(ep(1), &b"x"[..]);
        }
        assert!(ex.wait_until(Duration::from_secs(5), |ex| ex.cast_count(ep(2)) >= 10));
        let by_ep = ex.stats_by_endpoint();
        assert_eq!(by_ep[&ep(1)].msgs_sent, 10);
        assert_eq!(by_ep[&ep(2)].msgs_received, 10);
        let total = ex.aggregate_stats();
        assert_eq!(total.msgs_sent, 10);
        assert_eq!(total.msgs_received, 20, "loopback + remote delivery");
        // ep(1) is on shard 1, ep(2) on shard 0: per-shard split holds.
        let per_shard = ex.shard_stats();
        assert_eq!(per_shard[1].msgs_sent, 10);
        assert_eq!(per_shard[0].msgs_sent, 0);
        assert!(total.batches > 0, "batched dispatch must be exercised");
        ex.stop();
    }

    #[test]
    fn upcall_recording_can_be_disabled() {
        let mut ex =
            ShardExecutor::new(LoopbackNet::new(), ShardConfig::default().record_upcalls(false));
        let g = GroupAddr::new(1);
        ex.add_stack(nop_stack(1));
        ex.down(ep(1), Down::Join { group: g });
        std::thread::sleep(Duration::from_millis(10));
        ex.cast_bytes(ep(1), &b"x"[..]);
        assert!(ex.wait_until(Duration::from_secs(5), |ex| ex.cast_count(ep(1)) >= 1));
        assert!(ex.take_upcalls(ep(1)).is_empty(), "recording disabled");
        ex.stop();
    }
}
