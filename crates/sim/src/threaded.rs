//! A real-time, really-threaded executor — the other side of the §10
//! dispatch-model ablation.
//!
//! The paper reports that Horus was moving *away* from intra-stack threading
//! ("concurrency within a stack does not lead to significant gains") toward
//! one scheduling thread per stack.  This module runs the same stacks under
//! both regimes over the in-process loopback transport:
//!
//! * [`DispatchModel::EventQueue`] — one worker thread owns the stack; all
//!   inputs (frames, timers, downcalls) funnel through one channel.  No
//!   locks on the hot path.
//! * [`DispatchModel::LockedThreads`] — several worker threads share the
//!   input channel and take a mutex around every stack dispatch, emulating
//!   the thread-per-upcall, lock-per-group model of the 1995 system.
//!
//! Timekeeping maps the monotonic OS clock onto [`SimTime`], so protocol
//! timers behave identically to the simulated world.

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use horus_core::prelude::*;
use horus_net::threaded::Frame;
use horus_net::LoopbackNet;
use parking_lot::Mutex;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a stack's events are dispatched (§10 problem 2 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchModel {
    /// Single scheduler thread per stack (the event-queue model the paper
    /// adopts).
    EventQueue,
    /// `n` worker threads, each locking the stack per event (the threaded
    /// model the paper moves away from).
    LockedThreads(usize),
}

enum In {
    Frame(Frame),
    Timer { layer: usize, token: u64 },
    App(Down),
    Stop,
}

struct TimerEntry {
    due: Instant,
    layer: usize,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due) // min-heap
    }
}

struct Shared {
    stack: Mutex<Stack>,
    upcalls: Mutex<Vec<Up>>,
    timers: Mutex<BinaryHeap<TimerEntry>>,
    net: LoopbackNet,
    epoch: Instant,
    /// Mirror of the stack's sink, readable without the stack lock: the
    /// executor records frame/timer *arrivals* (the calendar-fire analogue);
    /// everything inside the dispatch is recorded by the stack itself.
    tracer: Option<Arc<dyn TraceSink>>,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn apply(&self, ep: EndpointAddr, effects: Vec<Effect>) {
        for fx in effects {
            match fx {
                Effect::Deliver(up) => self.upcalls.lock().push(up),
                Effect::NetCast { wire } => {
                    self.net.cast(ep, wire);
                }
                Effect::NetSend { dests, wire } => {
                    self.net.send(ep, &dests, wire);
                }
                Effect::NetJoin { group } => self.net.join(group, ep),
                Effect::NetLeave => self.net.leave(ep),
                Effect::SetTimer { layer, token, delay } => {
                    self.timers.lock().push(TimerEntry {
                        due: Instant::now() + delay,
                        layer,
                        token,
                    });
                }
                Effect::Trace(_) => {}
            }
        }
    }
}

/// A running endpoint under the threaded executor.
pub struct ThreadedEndpoint {
    addr: EndpointAddr,
    shared: Arc<Shared>,
    input_tx: Sender<In>,
    workers: Vec<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
    stopped: bool,
}

impl ThreadedEndpoint {
    /// Spawns an endpoint running `stack` under `model` on `net`.
    pub fn spawn(stack: Stack, net: LoopbackNet, model: DispatchModel) -> Self {
        let addr = stack.local_addr();
        let tracer = stack.tracer().cloned();
        let rx_frames = net.register(addr);
        let (input_tx, input_rx) = unbounded::<In>();
        let shared = Arc::new(Shared {
            stack: Mutex::new(stack),
            upcalls: Mutex::new(Vec::new()),
            timers: Mutex::new(BinaryHeap::new()),
            net,
            epoch: Instant::now(),
            tracer,
        });

        // Init layers (arms initial timers).
        {
            let mut stack = shared.stack.lock();
            let now = shared.now();
            stack.set_now(now);
            let fx = stack.init();
            drop(stack);
            shared.apply(addr, fx);
        }

        // Frame pump: moves transport frames into the input channel.
        {
            let tx = input_tx.clone();
            std::thread::spawn(move || {
                for f in rx_frames.iter() {
                    if tx.send(In::Frame(f)).is_err() {
                        break;
                    }
                }
            });
        }

        // Timer thread: fires due timers into the input channel.
        let timer_thread = {
            let shared = Arc::clone(&shared);
            let tx = input_tx.clone();
            Some(std::thread::spawn(move || loop {
                // Pop a due timer (or learn the next deadline) under a single
                // lock acquisition — never peek under one lock and pop under
                // another, which would panic if a second popper ever appeared.
                // The channel send happens outside the lock.
                let (fire, next_due) = {
                    let mut timers = shared.timers.lock();
                    match timers.peek().map(|t| t.due) {
                        Some(due) if due <= Instant::now() => (timers.pop(), None),
                        other => (None, other),
                    }
                };
                if let Some(entry) = fire {
                    if tx.send(In::Timer { layer: entry.layer, token: entry.token }).is_err() {
                        return;
                    }
                    continue;
                }
                match next_due {
                    Some(due) => {
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep((due - now).min(Duration::from_millis(1)));
                        }
                    }
                    None => {
                        std::thread::sleep(Duration::from_millis(1));
                        // Exit when the endpoint itself is gone (only this
                        // thread still holds the shared state).
                        if Arc::strong_count(&shared) == 1 {
                            return;
                        }
                    }
                }
            }))
        };

        let n_workers = match model {
            DispatchModel::EventQueue => 1,
            DispatchModel::LockedThreads(n) => n.max(1),
        };
        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let shared = Arc::clone(&shared);
            let rx: Receiver<In> = input_rx.clone();
            workers.push(std::thread::spawn(move || {
                for input in rx.iter() {
                    let stack_input = match input {
                        In::Stop => break,
                        In::Frame(f) => {
                            if let Some(t) = &shared.tracer {
                                t.record(TraceEvent {
                                    at: shared.now(),
                                    ep: addr,
                                    kind: TraceKind::FrameDeliver {
                                        from: f.from,
                                        cast: f.cast,
                                        bytes: f.wire.len(),
                                        digest: 0,
                                        seq: 0,
                                    },
                                });
                            }
                            StackInput::FromNet { from: f.from, cast: f.cast, wire: f.wire }
                        }
                        In::Timer { layer, token } => {
                            if let Some(t) = &shared.tracer {
                                t.record(TraceEvent {
                                    at: shared.now(),
                                    ep: addr,
                                    kind: TraceKind::TimerFire { layer, token, digest: 0, seq: 0 },
                                });
                            }
                            StackInput::Timer { layer, token, now: shared.now() }
                        }
                        In::App(down) => StackInput::FromApp(down),
                    };
                    let fx = {
                        let mut stack = shared.stack.lock();
                        let now = shared.now();
                        stack.set_now(now);
                        stack.handle(stack_input)
                    };
                    shared.apply(shared.stack.lock().local_addr(), fx);
                }
            }));
        }

        ThreadedEndpoint { addr, shared, input_tx, workers, timer_thread, stopped: false }
    }

    /// The endpoint's address.
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    /// Issues a downcall.
    pub fn down(&self, down: Down) {
        let _ = self.input_tx.send(In::App(down));
    }

    /// Creates a message against the endpoint's stack layout.
    pub fn new_message(&self, body: impl Into<Bytes>) -> Message {
        self.shared.stack.lock().new_message(body)
    }

    /// Convenience: cast an application payload.
    pub fn cast_bytes(&self, body: impl Into<Bytes>) {
        let msg = self.new_message(body);
        self.down(Down::Cast(msg));
    }

    /// Number of upcalls delivered so far.
    pub fn upcall_count(&self) -> usize {
        self.shared.upcalls.lock().len()
    }

    /// Number of CAST upcalls delivered so far.
    pub fn cast_count(&self) -> usize {
        self.shared.upcalls.lock().iter().filter(|u| matches!(u, Up::Cast { .. })).count()
    }

    /// Drains the delivered upcalls.
    pub fn take_upcalls(&self) -> Vec<Up> {
        std::mem::take(&mut *self.shared.upcalls.lock())
    }

    /// Busy-waits (politely) until `pred` holds or `timeout` elapses;
    /// returns whether the predicate held.
    pub fn wait_until(&self, timeout: Duration, mut pred: impl FnMut(&Self) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pred(self) {
                return true;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        pred(self)
    }

    /// Stops the workers and deregisters from the transport.
    pub fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        for _ in 0..self.workers.len() {
            let _ = self.input_tx.send(In::Stop);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.net.deregister(self.addr);
        // The frame pump ends when its channel closes (deregister), and the
        // timer thread ends when the Arc count drops; detach both.
        let _ = self.timer_thread.take();
    }
}

impl Drop for ThreadedEndpoint {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Nop;
    impl Layer for Nop {
        fn name(&self) -> &'static str {
            "NOP"
        }
    }

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn run_model(model: DispatchModel) {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let mut eps: Vec<ThreadedEndpoint> = (1..=2)
            .map(|i| {
                let stack = StackBuilder::new(ep(i)).push(Box::new(Nop)).build().unwrap();
                ThreadedEndpoint::spawn(stack, net.clone(), model)
            })
            .collect();
        for e in &eps {
            e.down(Down::Join { group: g });
        }
        // Let the joins land.
        std::thread::sleep(Duration::from_millis(20));
        for k in 0..50u8 {
            eps[0].cast_bytes(vec![k]);
        }
        assert!(
            eps[1].wait_until(Duration::from_secs(5), |e| e.cast_count() >= 50),
            "receiver saw {} of 50 casts",
            eps[1].cast_count()
        );
        // Loopback delivery to the sender itself also happens.
        assert!(eps[0].wait_until(Duration::from_secs(5), |e| e.cast_count() >= 50));
        for e in &mut eps {
            e.stop();
        }
    }

    #[test]
    fn event_queue_model_delivers() {
        run_model(DispatchModel::EventQueue);
    }

    #[test]
    fn locked_threads_model_delivers() {
        run_model(DispatchModel::LockedThreads(4));
    }

    #[test]
    fn timers_fire_under_real_time() {
        #[derive(Debug, Default)]
        struct Tick {
            count: u64,
        }
        impl Layer for Tick {
            fn name(&self) -> &'static str {
                "TICK"
            }
            fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
                ctx.set_timer(Duration::from_millis(5), 0);
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut LayerCtx<'_>) {
                self.count += 1;
                if self.count < 3 {
                    ctx.set_timer(Duration::from_millis(5), 0);
                } else {
                    ctx.up(Up::Exit);
                }
            }
        }
        let net = LoopbackNet::new();
        let stack = StackBuilder::new(ep(9)).push(Box::new(Tick::default())).build().unwrap();
        let mut e = ThreadedEndpoint::spawn(stack, net, DispatchModel::EventQueue);
        assert!(e.wait_until(Duration::from_secs(5), |e| {
            e.take_upcalls().iter().any(|u| matches!(u, Up::Exit))
        }));
        e.stop();
    }
}
