//! The deterministic discrete-event executor.
//!
//! A [`SimWorld`] owns a set of endpoints (each a [`Stack`]), the simulated
//! network, and an event calendar ordered by virtual time.  Stacks are pure
//! state machines, the network is a pure function of its RNG, and the
//! calendar breaks ties by insertion order — so a `(seed, script)` pair
//! identifies exactly one execution.  This is what lets the repository
//! replay Figure 2 of the paper byte-for-byte, and lets the property tests
//! shrink failing schedules.

use bytes::Bytes;
use horus_core::digest::StateDigest;
use horus_core::prelude::*;
use horus_net::{FaultRule, FixedScheduler, NetConfig, NetScheduler, RandomScheduler, SimNetwork};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Safety valve: a single `run_until` may not process more events than this
/// (catches accidental message storms in protocol code).
const MAX_STEPS_PER_RUN: u64 = 50_000_000;

// Net deliveries dominate the calendar; boxing them would cost an
// allocation per simulated packet.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Ev {
    /// A wire frame arrives at `to`.
    Net { to: EndpointAddr, from: EndpointAddr, cast: bool, wire: WireFrame },
    /// A stack timer expires.
    Timer { ep: EndpointAddr, layer: usize, token: u64 },
    /// The application issues a downcall.
    App { ep: EndpointAddr, down: Down },
    /// The endpoint crashes (fail-stop).
    Crash { ep: EndpointAddr },
    /// The network splits into the given regions.
    Partition { regions: Vec<Vec<EndpointAddr>> },
    /// All partitions heal.
    Heal,
    /// The scripted failure detector (§5) tells `observer` that `target`
    /// failed — possibly inaccurately.
    Suspect { observer: EndpointAddr, target: EndpointAddr },
    /// A targeted fault rule is installed in the network.
    Fault { rule: FaultRule },
}

/// One calendar entry: the event plus its time-independent payload digest,
/// computed once at insertion when pending tracking is on (see
/// [`SimWorld::fingerprint`]) so the pending-set combine never has to
/// re-digest wire frames on removal.
#[derive(Debug, Clone)]
struct Pending {
    ev: Ev,
    digest: u64,
    /// Vector clock of the dispatch that scheduled this entry (empty for
    /// scripted/root schedules, and always empty when pending tracking is
    /// off).  This is the happens-before side of the explorer's DPOR: two
    /// pending events whose creation clocks are strictly ordered are never
    /// treated as an exchangeable race.
    clock: VClock,
}

/// Identifies one pending calendar entry: `(scheduled time, insertion
/// sequence)`.  The pair is the calendar's total order, so iterating the
/// calendar *is* the legacy earliest-first, insertion-order-tie-break
/// dispatch order.
pub type EventId = (SimTime, u64);

/// What a pending calendar entry will do when fired — the read-only view a
/// [`crate::sched::Scheduler`] picks from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyKind {
    /// A wire frame delivery into `to`'s stack.
    Deliver {
        /// Receiving endpoint.
        to: EndpointAddr,
        /// Transport-level sender.
        from: EndpointAddr,
        /// Multicast or point-to-point.
        cast: bool,
    },
    /// A stack timer expiry at `ep`.
    Timer {
        /// The endpoint whose stack armed the timer.
        ep: EndpointAddr,
        /// Arming layer index.
        layer: usize,
        /// Timer token.
        token: u64,
    },
    /// A scripted application downcall at `ep`.
    App {
        /// The endpoint receiving the downcall.
        ep: EndpointAddr,
    },
    /// A scripted fail-stop crash of `ep`.
    Crash {
        /// The crashing endpoint.
        ep: EndpointAddr,
    },
    /// A scripted (possibly inaccurate) suspicion.
    Suspect {
        /// The endpoint being told.
        observer: EndpointAddr,
        /// The endpoint it will suspect.
        target: EndpointAddr,
    },
    /// A scripted partition change.
    Partition,
    /// A scripted heal of all partitions.
    Heal,
    /// A scripted fault-rule installation.
    Fault,
}

impl ReadyKind {
    /// The endpoint whose stack this event dispatches into, if any.
    /// Events touching only world/network state return `None`.
    pub fn target(&self) -> Option<EndpointAddr> {
        match *self {
            ReadyKind::Deliver { to, .. } => Some(to),
            ReadyKind::Timer { ep, .. } | ReadyKind::App { ep } | ReadyKind::Crash { ep } => {
                Some(ep)
            }
            ReadyKind::Suspect { observer, .. } => Some(observer),
            ReadyKind::Partition | ReadyKind::Heal | ReadyKind::Fault => None,
        }
    }

    /// Whether this is a remote frame delivery (the only event class the
    /// explorer may convert into an induced drop — loopback is reliable).
    pub fn droppable(&self) -> bool {
        matches!(self, ReadyKind::Deliver { to, from, .. } if to != from)
    }
}

/// One entry of the ready set handed to a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEvent {
    /// Calendar key; pass back to [`SimWorld::fire`] / [`SimWorld::drop_pending`].
    pub id: EventId,
    /// Scheduled firing time.
    pub at: SimTime,
    /// What firing it will do.
    pub kind: ReadyKind,
}

struct Slot {
    stack: Stack,
    upcalls: Vec<(SimTime, Up)>,
    alive: bool,
    /// Incremental digest of the delivery-relevant upcall history, so the
    /// world fingerprint distinguishes states whose stacks converged but
    /// whose observable histories diverged.
    log_digest: StateDigest,
    /// Cached endpoint contribution to [`SimWorld::fingerprint`].  Valid —
    /// and summed into [`SimWorld::slots_sum`] — exactly when `dirty` is
    /// false.
    digest: Cell<u64>,
    /// Set (and the endpoint queued on [`SimWorld::dirty_eps`]) whenever an
    /// event dispatches into this endpoint (stack input, crash), so a
    /// fingerprint only re-digests the slots actually touched since the
    /// last one — no per-slot scan.
    dirty: Cell<bool>,
}

/// A vector clock: sorted `(endpoint raw address, counter)` pairs; absent
/// components are zero.  Groups are small, so a sorted vec beats a map.
type VClock = Vec<(u64, u64)>;

/// Componentwise `join` (pointwise max) of `b` into `a`.
fn vc_join(a: &mut VClock, b: &[(u64, u64)]) {
    for &(r, n) in b {
        match a.binary_search_by_key(&r, |&(ar, _)| ar) {
            Ok(i) => a[i].1 = a[i].1.max(n),
            Err(i) => a.insert(i, (r, n)),
        }
    }
}

/// Strict happens-before on clocks: `a ≤ b` componentwise and `a ≠ b`.
fn vc_lt(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    let le = |x: &[(u64, u64)], y: &[(u64, u64)]| {
        x.iter().all(|&(r, n)| {
            n <= y.binary_search_by_key(&r, |&(yr, _)| yr).map(|i| y[i].1).unwrap_or(0)
        })
    };
    le(a, b) && !le(b, a)
}

/// The discrete-event world: endpoints, network, calendar, virtual clock.
///
/// ```
/// use horus_sim::SimWorld;
/// use horus_net::NetConfig;
/// use horus_core::prelude::*;
/// use std::time::Duration;
///
/// #[derive(Debug, Default)]
/// struct Nop;
/// impl Layer for Nop { fn name(&self) -> &'static str { "NOP" } }
///
/// let mut w = SimWorld::new(1, NetConfig::reliable());
/// let a = EndpointAddr::new(1);
/// let b = EndpointAddr::new(2);
/// for ep in [a, b] {
///     let stack = StackBuilder::new(ep).push(Box::new(Nop)).build()?;
///     w.add_endpoint(stack);
///     w.join(ep, GroupAddr::new(1));
/// }
/// w.cast_bytes(a, &b"hi"[..]);
/// w.run_for(Duration::from_millis(10));
/// let got = w.delivered_casts(b);
/// assert_eq!(got.len(), 1);
/// assert_eq!(&got[0].1[..], b"hi");
/// # Ok::<(), HorusError>(())
/// ```
pub struct SimWorld {
    time: SimTime,
    seq: u64,
    steps: u64,
    step_limit: u64,
    calendar: BTreeMap<EventId, Pending>,
    net: SimNetwork,
    endpoints: BTreeMap<EndpointAddr, Slot>,
    sched: Box<dyn NetScheduler + Send>,
    traces: Vec<(SimTime, String)>,
    /// The dirty *queue*: endpoints dispatched into since the last
    /// fingerprint, each queued at most once (policed by [`Slot::dirty`]).
    /// [`SimWorld::fingerprint`] drains this instead of scanning every slot.
    dirty_eps: RefCell<Vec<EndpointAddr>>,
    /// Wrapping sum of [`Slot::digest`] over *clean* slots.  Touching a slot
    /// subtracts its stale contribution; the fingerprint adds the fresh one
    /// back while draining the queue, keeping the sum exact without a walk.
    slots_sum: Cell<u64>,
    /// Per-endpoint vector clocks (maintained only when `track_pending`):
    /// joined with the fired event's creation clock and bumped at every
    /// dispatch, then stamped onto whatever the dispatch schedules.
    clocks: BTreeMap<EndpointAddr, VClock>,
    /// The clock new calendar entries are stamped with: the dispatching
    /// endpoint's clock during a dispatch, empty (root) for scripted
    /// schedules.
    ctx_clock: VClock,
    /// When set, per-entry payload digests are computed at insertion and the
    /// pending-set sums below are maintained at every insert/remove, making
    /// the pending part of [`SimWorld::fingerprint`] O(1).  Enabled by
    /// [`SimWorld::deterministic`] (the model checker fingerprints at every
    /// branch point); plain simulations skip the digest-at-insert cost.
    track_pending: bool,
    /// `Σ h_e` over pending entries (wrapping), where `h_e` is the entry's
    /// time-independent payload digest.
    pending_s1: u64,
    /// `Σ h_e · t_e` (wrapping), `t_e` the entry's absolute firing time in
    /// nanoseconds.  Because this is *linear* in absolute time, the
    /// relative-to-now combine the fingerprint needs is just
    /// `S2 - now·S1` — no walk required when the clock advances.
    pending_s2: u64,
    /// Trace sink observing every fired calendar event (with its payload
    /// digest, sequence number and — under pending tracking — vector
    /// clock), plus everything the stacks and network report.  `None` by
    /// default: one branch per fire.
    tracer: Option<Arc<dyn TraceSink>>,
}

impl SimWorld {
    /// Creates a world with a deterministic seed and network physics.  The
    /// network's probabilistic choice points are resolved by a
    /// [`RandomScheduler`] over that seed — exactly the RNG stream earlier
    /// revisions drew from directly, so `(seed, script)` replays are
    /// byte-identical across the scheduler extraction.
    pub fn new(seed: u64, config: NetConfig) -> Self {
        Self::with_net_scheduler(config, Box::new(RandomScheduler::new(seed)))
    }

    /// Creates a fully deterministic world for bounded model checking: a
    /// [`FixedScheduler`] pins latency to `latency_min` and never fires a
    /// probabilistic fault, so the only nondeterminism left is the schedule
    /// itself — which the explorer controls through [`SimWorld::fire`].
    pub fn deterministic(config: NetConfig) -> Self {
        let mut w = Self::with_net_scheduler(config, Box::new(FixedScheduler));
        w.set_pending_tracking(true);
        w
    }

    /// Creates a world with an explicit network-choice scheduler.
    pub fn with_net_scheduler(config: NetConfig, sched: Box<dyn NetScheduler + Send>) -> Self {
        SimWorld {
            time: SimTime::ZERO,
            seq: 0,
            steps: 0,
            step_limit: MAX_STEPS_PER_RUN,
            calendar: BTreeMap::new(),
            net: SimNetwork::new(config),
            endpoints: BTreeMap::new(),
            sched,
            traces: Vec::new(),
            dirty_eps: RefCell::new(Vec::new()),
            slots_sum: Cell::new(0),
            clocks: BTreeMap::new(),
            ctx_clock: Vec::new(),
            track_pending: false,
            pending_s1: 0,
            pending_s2: 0,
            tracer: None,
        }
    }

    /// Installs a trace sink into the world, its network, and every current
    /// and future endpoint stack.  Virtual-time worlds stamp each fired
    /// event with its causal vector clock (when pending tracking is on), so
    /// the resulting trace is causally ordered, not just time-ordered.
    pub fn set_tracer(&mut self, tracer: Arc<dyn TraceSink>) {
        self.net.set_tracer(tracer.clone());
        for slot in self.endpoints.values_mut() {
            slot.stack.set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer);
    }

    /// Removes the trace sink everywhere.
    pub fn clear_tracer(&mut self) {
        self.net.clear_tracer();
        for slot in self.endpoints.values_mut() {
            slot.stack.clear_tracer();
        }
        self.tracer = None;
    }

    /// Records the firing of one calendar entry: the event's kind-specific
    /// record carrying its run-independent payload digest and calendar
    /// sequence number — the identity the trace→schedule bridge matches
    /// ready-set options against.  World-global events are recorded against
    /// the `ep:0` sentinel.
    fn trace_fire(&self, seq: u64, digest: u64, ev: &Ev) {
        let Some(t) = &self.tracer else { return };
        let digest = if digest != 0 { digest } else { ev_digest(ev) };
        let (ep, kind) = match ev {
            Ev::Net { to, from, cast, wire } => (
                *to,
                TraceKind::FrameDeliver {
                    from: *from,
                    cast: *cast,
                    bytes: wire.len(),
                    digest,
                    seq,
                },
            ),
            Ev::Timer { ep, layer, token } => {
                (*ep, TraceKind::TimerFire { layer: *layer, token: *token, digest, seq })
            }
            Ev::App { ep, down } => (*ep, TraceKind::AppDown { kind: down.kind(), digest, seq }),
            Ev::Crash { ep } => (*ep, TraceKind::Crash { digest, seq }),
            Ev::Suspect { observer, target } => {
                (*observer, TraceKind::Suspect { target: *target, digest, seq })
            }
            Ev::Partition { .. } => (EndpointAddr::NULL, TraceKind::Partition { digest, seq }),
            Ev::Heal => (EndpointAddr::NULL, TraceKind::Heal { digest, seq }),
            Ev::Fault { .. } => (EndpointAddr::NULL, TraceKind::Fault { digest, seq }),
        };
        t.set_clock(&self.ctx_clock);
        t.record(TraceEvent { at: self.time, ep, kind });
    }

    /// Turns incremental pending-set digesting on or off.  Entries already
    /// in the calendar are (re)digested so the maintained sums stay exact;
    /// turning tracking off zeroes them.
    pub fn set_pending_tracking(&mut self, on: bool) {
        self.track_pending = on;
        self.pending_s1 = 0;
        self.pending_s2 = 0;
        for (&(at, _), p) in self.calendar.iter_mut() {
            p.digest = if on { ev_digest(&p.ev) } else { 0 };
            if on {
                self.pending_s1 = self.pending_s1.wrapping_add(p.digest);
                self.pending_s2 =
                    self.pending_s2.wrapping_add(p.digest.wrapping_mul(at.as_nanos()));
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The simulated network (for physics tweaks mid-run).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// Network counters.
    pub fn net_stats(&self) -> &horus_net::NetStats {
        self.net.stats()
    }

    /// Registers an endpoint's stack and runs its layer initialisation.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint with the same address already exists.
    pub fn add_endpoint(&mut self, mut stack: Stack) -> EndpointAddr {
        let ep = stack.local_addr();
        assert!(!self.endpoints.contains_key(&ep), "endpoint {ep} already exists in this world");
        stack.set_now(self.time);
        if let Some(t) = &self.tracer {
            stack.set_tracer(t.clone());
        }
        let effects = stack.init();
        self.endpoints.insert(
            ep,
            Slot {
                stack,
                upcalls: Vec::new(),
                alive: true,
                log_digest: StateDigest::new(),
                digest: Cell::new(0),
                dirty: Cell::new(true),
            },
        );
        // A new slot starts dirty (contributing nothing to the clean-slot
        // sum) and queued, so the next fingerprint digests it.
        self.dirty_eps.borrow_mut().push(ep);
        self.apply_effects(ep, effects);
        ep
    }

    /// Schedules a downcall at the current time.
    pub fn down(&mut self, ep: EndpointAddr, down: Down) {
        self.down_at(self.time, ep, down);
    }

    /// Schedules a downcall at an absolute virtual time.
    pub fn down_at(&mut self, at: SimTime, ep: EndpointAddr, down: Down) {
        self.schedule(at, Ev::App { ep, down });
    }

    /// Shorthand: `join` downcall now.
    pub fn join(&mut self, ep: EndpointAddr, group: GroupAddr) {
        self.down(ep, Down::Join { group });
    }

    /// Shorthand: casts an application payload now.
    pub fn cast_bytes(&mut self, ep: EndpointAddr, body: impl Into<Bytes>) {
        self.cast_bytes_at(self.time, ep, body);
    }

    /// Shorthand: casts an application payload at an absolute time.
    pub fn cast_bytes_at(&mut self, at: SimTime, ep: EndpointAddr, body: impl Into<Bytes>) {
        let msg = self
            .endpoints
            .get(&ep)
            .unwrap_or_else(|| panic!("unknown endpoint {ep}"))
            .stack
            .new_message(body.into());
        self.down_at(at, ep, Down::Cast(msg));
    }

    /// Schedules a fail-stop crash.
    pub fn crash_at(&mut self, at: SimTime, ep: EndpointAddr) {
        self.schedule(at, Ev::Crash { ep });
    }

    /// Schedules a network partition (each slice becomes one region).
    pub fn partition_at(&mut self, at: SimTime, regions: &[&[EndpointAddr]]) {
        let regions = regions.iter().map(|r| r.to_vec()).collect();
        self.schedule(at, Ev::Partition { regions });
    }

    /// Schedules the healing of all partitions.
    pub fn heal_at(&mut self, at: SimTime) {
        self.schedule(at, Ev::Heal);
    }

    /// Schedules a scripted failure-detector suspicion (§5): at `at`,
    /// `observer`'s stack receives `Down::Suspect { member: target }`.  The
    /// suspicion may be **inaccurate** — `target` need not have failed —
    /// which is exactly the detector class MBRSHIP must tolerate (a falsely
    /// suspected live member is excluded but re-merges; it is never
    /// permanently ejected).
    pub fn suspect_at(&mut self, at: SimTime, observer: EndpointAddr, target: EndpointAddr) {
        self.schedule(at, Ev::Suspect { observer, target });
    }

    /// Schedules the installation of a targeted network fault rule at an
    /// absolute virtual time (rules added before the run can also go in
    /// directly via [`SimNetwork::add_fault`]).
    pub fn fault_at(&mut self, at: SimTime, rule: FaultRule) {
        self.schedule(at, Ev::Fault { rule });
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.time, "cannot schedule into the past");
        self.seq += 1;
        let digest = if self.track_pending { ev_digest(&ev) } else { 0 };
        let clock = if self.track_pending { self.ctx_clock.clone() } else { Vec::new() };
        if self.track_pending {
            self.pending_s1 = self.pending_s1.wrapping_add(digest);
            self.pending_s2 = self.pending_s2.wrapping_add(digest.wrapping_mul(at.as_nanos()));
        }
        self.calendar.insert((at, self.seq), Pending { ev, digest, clock });
    }

    /// Reverses the [`SimWorld::schedule`] bookkeeping for a removed entry.
    fn untrack_pending(&mut self, at: SimTime, p: &Pending) {
        if self.track_pending {
            self.pending_s1 = self.pending_s1.wrapping_sub(p.digest);
            self.pending_s2 = self.pending_s2.wrapping_sub(p.digest.wrapping_mul(at.as_nanos()));
        }
    }

    /// Lowers (or raises) the event-count safety valve.  The default is 50
    /// million events per world; tests that deliberately provoke storms
    /// shrink it so the diagnostic fires quickly.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Runs the calendar until `deadline` (inclusive); events after it stay
    /// queued.  Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics if more than the step limit (default 50 million) events fire
    /// — almost certainly a protocol message storm.  The panic message
    /// names the busiest endpoint and event kind in the calendar backlog so
    /// the offending protocol loop can be identified from the failure alone.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some((&(at, _), _)) = self.calendar.first_key_value() {
            if at > deadline {
                break;
            }
            let ((at, seq), p) = self.calendar.pop_first().expect("peeked entry");
            self.untrack_pending(at, &p);
            self.time = at;
            let Pending { ev, digest, clock } = p;
            self.begin_causal(Self::ready_kind(&ev).target(), clock);
            if self.tracer.is_some() {
                self.trace_fire(seq, digest, &ev);
            }
            self.dispatch(ev);
            self.ctx_clock.clear();
            processed += 1;
            self.steps += 1;
            if self.steps >= self.step_limit {
                panic!("{}", self.storm_report());
            }
        }
        self.time = self.time.max(deadline);
        processed
    }

    /// Builds the safety-valve diagnostic from the calendar backlog: during
    /// a message storm the backlog is dominated by the runaway loop, so the
    /// busiest `(endpoint, event kind)` pair names the culprit.
    fn storm_report(&self) -> String {
        let mut by_source: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
        for p in self.calendar.values() {
            let (ep, kind) = match &p.ev {
                Ev::Net { to, .. } => (to.to_string(), "net delivery"),
                Ev::Timer { ep, .. } => (ep.to_string(), "timer"),
                Ev::App { ep, .. } => (ep.to_string(), "app downcall"),
                Ev::Crash { ep } => (ep.to_string(), "crash"),
                Ev::Suspect { observer, .. } => (observer.to_string(), "scripted suspicion"),
                Ev::Fault { .. } => ("<network>".to_string(), "fault rule"),
                Ev::Partition { .. } => ("<network>".to_string(), "partition"),
                Ev::Heal => ("<network>".to_string(), "heal"),
            };
            *by_source.entry((ep, kind)).or_insert(0) += 1;
        }
        let header = format!(
            "event-count safety valve tripped at {} after {} events: protocol message storm?",
            self.time, self.steps
        );
        match by_source.iter().max_by_key(|&(_, n)| n) {
            Some(((ep, kind), n)) => format!(
                "{header} busiest source in the {}-entry backlog is endpoint {ep} \
                 with {n} pending '{kind}' events",
                self.calendar.len()
            ),
            None => format!("{header} (calendar backlog is empty — limit set too low?)"),
        }
    }

    /// Runs the calendar for a further `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        self.run_until(self.time + d)
    }

    /// Marks a slot dirty ahead of a mutation: pulls its stale contribution
    /// out of the clean-slot sum and queues the endpoint for re-digest at
    /// the next fingerprint.  Idempotent between fingerprints.
    fn touch(
        dirty_eps: &RefCell<Vec<EndpointAddr>>,
        slots_sum: &Cell<u64>,
        ep: EndpointAddr,
        slot: &Slot,
    ) {
        if !slot.dirty.get() {
            slot.dirty.set(true);
            slots_sum.set(slots_sum.get().wrapping_sub(slot.digest.get()));
            dirty_eps.borrow_mut().push(ep);
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Net { to, from, cast, wire } => {
                let Some(slot) = self.endpoints.get_mut(&to) else { return };
                if !slot.alive {
                    return;
                }
                Self::touch(&self.dirty_eps, &self.slots_sum, to, slot);
                slot.stack.set_now(self.time);
                let fx = slot.stack.handle(StackInput::FromNet { from, cast, wire });
                self.apply_effects(to, fx);
            }
            Ev::Timer { ep, layer, token } => {
                let Some(slot) = self.endpoints.get_mut(&ep) else { return };
                if !slot.alive {
                    return;
                }
                Self::touch(&self.dirty_eps, &self.slots_sum, ep, slot);
                let fx = slot.stack.handle(StackInput::Timer { layer, token, now: self.time });
                self.apply_effects(ep, fx);
            }
            Ev::App { ep, down } => {
                let Some(slot) = self.endpoints.get_mut(&ep) else { return };
                if !slot.alive {
                    return;
                }
                Self::touch(&self.dirty_eps, &self.slots_sum, ep, slot);
                slot.stack.set_now(self.time);
                let fx = slot.stack.handle(StackInput::FromApp(down));
                self.apply_effects(ep, fx);
            }
            Ev::Crash { ep } => {
                if let Some(slot) = self.endpoints.get_mut(&ep) {
                    Self::touch(&self.dirty_eps, &self.slots_sum, ep, slot);
                    slot.alive = false;
                    self.net.leave(ep);
                    self.traces.push((self.time, format!("{ep} crashed")));
                }
            }
            Ev::Partition { regions } => {
                let slices: Vec<&[EndpointAddr]> = regions.iter().map(|r| r.as_slice()).collect();
                self.net.partition(&slices);
                self.traces.push((self.time, format!("partition {regions:?}")));
            }
            Ev::Heal => {
                self.net.heal();
                self.traces.push((self.time, "partitions healed".to_string()));
            }
            Ev::Suspect { observer, target } => {
                let Some(slot) = self.endpoints.get_mut(&observer) else { return };
                if !slot.alive {
                    return;
                }
                Self::touch(&self.dirty_eps, &self.slots_sum, observer, slot);
                slot.stack.set_now(self.time);
                let fx = slot.stack.handle(StackInput::FromApp(Down::Suspect { member: target }));
                self.apply_effects(observer, fx);
                self.traces.push((self.time, format!("{observer} suspects {target} (scripted)")));
            }
            Ev::Fault { rule } => {
                self.traces.push((self.time, format!("fault installed: {rule:?}")));
                if let FaultRule::SuspicionStorm { ref observers, target } = rule {
                    // The network cannot evaluate a suspicion storm — it is
                    // executed here, as one scripted suspicion per observer,
                    // and the injections are credited to the rule's hit
                    // counter so chaos tests can assert the storm fired.
                    let observers = observers.clone();
                    let idx = self.net.add_fault(rule);
                    let mut fired = 0;
                    for observer in observers {
                        if self.endpoints.get(&observer).is_some_and(|s| s.alive) {
                            self.dispatch(Ev::Suspect { observer, target });
                            fired += 1;
                        }
                    }
                    self.net.fault_plan_mut().record_hits(idx, fired);
                    return;
                }
                self.net.add_fault(rule);
            }
        }
    }

    fn apply_effects(&mut self, ep: EndpointAddr, effects: Vec<Effect>) {
        for fx in effects {
            match fx {
                Effect::Deliver(up) => {
                    if let Some(slot) = self.endpoints.get_mut(&ep) {
                        match &up {
                            Up::View(v) => slot.log_digest.write_str(&v.to_string()),
                            Up::Cast { src, msg } => {
                                slot.log_digest.write_u64(src.raw());
                                slot.log_digest.write_bytes(msg.body());
                                slot.log_digest.write_bytes(&[0xfe]);
                            }
                            _ => {}
                        }
                        slot.upcalls.push((self.time, up));
                    }
                }
                Effect::NetCast { wire } => {
                    let deliveries = self.net.cast(ep, wire, self.time, self.sched.as_mut());
                    for d in deliveries {
                        self.schedule(
                            d.at,
                            Ev::Net { to: d.to, from: d.from, cast: d.cast, wire: d.wire },
                        );
                    }
                }
                Effect::NetSend { dests, wire } => {
                    let deliveries =
                        self.net.send(ep, &dests, wire, self.time, self.sched.as_mut());
                    for d in deliveries {
                        self.schedule(
                            d.at,
                            Ev::Net { to: d.to, from: d.from, cast: d.cast, wire: d.wire },
                        );
                    }
                }
                Effect::NetJoin { group } => self.net.join(group, ep),
                Effect::NetLeave => self.net.leave(ep),
                Effect::SetTimer { layer, token, delay } => {
                    self.schedule(self.time + delay, Ev::Timer { ep, layer, token });
                }
                Effect::Trace(t) => self.traces.push((self.time, format!("{ep}: {t}"))),
            }
        }
    }

    /// Whether an endpoint is still alive (has not crashed or been
    /// destroyed).
    pub fn is_alive(&self, ep: EndpointAddr) -> bool {
        self.endpoints.get(&ep).map(|s| s.alive && !s.stack.is_destroyed()).unwrap_or(false)
    }

    /// All endpoint addresses, in address order.
    pub fn endpoint_addrs(&self) -> Vec<EndpointAddr> {
        self.endpoints.keys().copied().collect()
    }

    /// The recorded upcalls of an endpoint, in delivery order.
    pub fn upcalls(&self, ep: EndpointAddr) -> &[(SimTime, Up)] {
        self.endpoints.get(&ep).map(|s| s.upcalls.as_slice()).unwrap_or(&[])
    }

    /// How many views an endpoint has installed — a count-only variant of
    /// [`installed_views`](Self::installed_views) that clones nothing, for
    /// callers (like the model checker's per-step oracle trigger) that only
    /// need to notice *that* a view landed, not which.
    pub fn installed_view_count(&self, ep: EndpointAddr) -> usize {
        self.upcalls(ep).iter().filter(|(_, up)| matches!(up, Up::View(_))).count()
    }

    /// Removes and returns an endpoint's recorded upcalls.
    pub fn take_upcalls(&mut self, ep: EndpointAddr) -> Vec<(SimTime, Up)> {
        self.endpoints.get_mut(&ep).map(|s| std::mem::take(&mut s.upcalls)).unwrap_or_default()
    }

    /// CAST deliveries observed by an endpoint: `(source, body, time)`.
    pub fn delivered_casts(&self, ep: EndpointAddr) -> Vec<(EndpointAddr, Bytes, SimTime)> {
        self.upcalls(ep)
            .iter()
            .filter_map(|(t, up)| match up {
                Up::Cast { src, msg } => Some((*src, msg.body().clone(), *t)),
                _ => None,
            })
            .collect()
    }

    /// Views installed at an endpoint, in installation order.
    pub fn installed_views(&self, ep: EndpointAddr) -> Vec<View> {
        self.upcalls(ep)
            .iter()
            .filter_map(|(_, up)| match up {
                Up::View(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }

    /// Stack counters for an endpoint.
    pub fn stack_stats(&self, ep: EndpointAddr) -> Option<&horus_core::stack::StackStats> {
        self.endpoints.get(&ep).map(|s| s.stack.stats())
    }

    /// Borrow an endpoint's stack (for `focus`/`dump` inspection).
    pub fn stack(&self, ep: EndpointAddr) -> Option<&Stack> {
        self.endpoints.get(&ep).map(|s| &s.stack)
    }

    /// The world's trace log (layer traces, crash/partition markers).
    pub fn traces(&self) -> &[(SimTime, String)] {
        &self.traces
    }

    /// Pending calendar entries (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.calendar.len()
    }

    /// Advances the clock to `deadline` without dispatching anything (used
    /// by scheduled drives once the calendar drains).
    pub fn advance_to(&mut self, deadline: SimTime) {
        self.time = self.time.max(deadline);
    }

    // ------------------------------------------------------------------
    // Controlled stepping (the bounded model checker's interface)
    // ------------------------------------------------------------------

    fn ready_kind(ev: &Ev) -> ReadyKind {
        match ev {
            Ev::Net { to, from, cast, .. } => {
                ReadyKind::Deliver { to: *to, from: *from, cast: *cast }
            }
            Ev::Timer { ep, layer, token } => {
                ReadyKind::Timer { ep: *ep, layer: *layer, token: *token }
            }
            Ev::App { ep, .. } => ReadyKind::App { ep: *ep },
            Ev::Crash { ep } => ReadyKind::Crash { ep: *ep },
            Ev::Partition { .. } => ReadyKind::Partition,
            Ev::Heal => ReadyKind::Heal,
            Ev::Suspect { observer, target } => {
                ReadyKind::Suspect { observer: *observer, target: *target }
            }
            Ev::Fault { .. } => ReadyKind::Fault,
        }
    }

    /// The earliest pending calendar time, if any.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.calendar.first_key_value().map(|(&(at, _), _)| at)
    }

    /// The *ready set*: every pending event scheduled within `window` of the
    /// earliest pending event, in calendar order (so index 0 is what
    /// [`SimWorld::run_until`] would fire next).
    ///
    /// Events inside one window are concurrent for exploration purposes: an
    /// asynchronous network may legally deliver them in any relative order,
    /// which the explorer realizes by firing a later-scheduled event first
    /// (delaying the others — legal, since delivery delays are unbounded).
    /// A zero window degenerates to exact-tie concurrency only.
    pub fn ready_events(&self, window: Duration) -> Vec<ReadyEvent> {
        let mut out = Vec::new();
        self.ready_events_into(window, &mut out);
        out
    }

    /// [`ready_events`](Self::ready_events) into a caller-owned buffer.  The
    /// schedule executor asks for the ready set before every step, so it must
    /// not cost a fresh allocation each time.
    pub fn ready_events_into(&self, window: Duration, out: &mut Vec<ReadyEvent>) {
        out.clear();
        let Some((&(first_at, _), _)) = self.calendar.first_key_value() else {
            return;
        };
        let horizon = first_at + window;
        out.extend(
            self.calendar
                .iter()
                .take_while(|(&(at, _), _)| at <= horizon)
                .map(|(&id, p)| ReadyEvent { id, at: id.0, kind: Self::ready_kind(&p.ev) }),
        );
    }

    /// Fires one pending event out of calendar order, advancing virtual time
    /// to `max(now, scheduled)` — time never runs backwards; an event pulled
    /// ahead of an earlier one simply means the earlier one is *delayed*.
    /// Returns `false` if the id is no longer pending.
    pub fn fire(&mut self, id: EventId) -> bool {
        let Some(p) = self.calendar.remove(&id) else {
            return false;
        };
        self.untrack_pending(id.0, &p);
        self.time = self.time.max(id.0);
        let Pending { ev, digest, clock } = p;
        self.begin_causal(Self::ready_kind(&ev).target(), clock);
        if self.tracer.is_some() {
            self.trace_fire(id.1, digest, &ev);
        }
        self.dispatch(ev);
        self.ctx_clock.clear();
        self.steps += 1;
        if self.steps >= self.step_limit {
            panic!("{}", self.storm_report());
        }
        true
    }

    /// Removes a pending *remote frame delivery* without firing it — the
    /// explorer's controlled message drop (choice point for lossy-network
    /// exploration).  Refuses anything that is not a remote `Deliver`:
    /// timers, scripted events and loopback deliveries always happen.
    pub fn drop_pending(&mut self, id: EventId) -> bool {
        let droppable = matches!(
            self.calendar.get(&id).map(|p| &p.ev),
            Some(Ev::Net { to, from, .. }) if to != from
        );
        if droppable {
            let p = self.calendar.remove(&id).expect("checked entry");
            self.untrack_pending(id.0, &p);
            self.net.stats_mut().dropped_induced += 1;
            if let Some(t) = &self.tracer {
                let to = match &p.ev {
                    Ev::Net { to, .. } => *to,
                    _ => unreachable!("droppable entries are remote net deliveries"),
                };
                let digest = if p.digest != 0 { p.digest } else { ev_digest(&p.ev) };
                t.record(TraceEvent {
                    at: self.time,
                    ep: to,
                    kind: TraceKind::FrameDrop { digest, seq: id.1, reason: DropReason::Induced },
                });
            }
            true
        } else {
            false
        }
    }

    /// Crashes `ep` at the current instant (explorer-injected fail-stop, the
    /// same transition a scripted [`SimWorld::crash_at`] performs).
    pub fn inject_crash(&mut self, ep: EndpointAddr) {
        self.begin_causal(Some(ep), Vec::new());
        if let Some(t) = &self.tracer {
            t.set_clock(&self.ctx_clock);
            t.record(TraceEvent { at: self.time, ep, kind: TraceKind::InjectCrash });
        }
        self.dispatch(Ev::Crash { ep });
        self.ctx_clock.clear();
    }

    /// Tells `observer`'s stack to suspect `target` at the current instant
    /// (explorer-injected, possibly inaccurate, failure suspicion).
    pub fn inject_suspect(&mut self, observer: EndpointAddr, target: EndpointAddr) {
        self.begin_causal(Some(observer), Vec::new());
        if let Some(t) = &self.tracer {
            t.set_clock(&self.ctx_clock);
            t.record(TraceEvent {
                at: self.time,
                ep: observer,
                kind: TraceKind::InjectSuspect { observer, target },
            });
        }
        self.dispatch(Ev::Suspect { observer, target });
        self.ctx_clock.clear();
    }

    /// Enters a dispatch's causal context: joins the fired event's creation
    /// clock into the target endpoint's clock, bumps the target's own
    /// component, and makes the result the clock every entry scheduled by
    /// the dispatch is stamped with.  No-op when pending tracking is off.
    fn begin_causal(&mut self, target: Option<EndpointAddr>, ev_clock: VClock) {
        if !self.track_pending {
            return;
        }
        match target {
            Some(ep) => {
                let c = self.clocks.entry(ep).or_default();
                vc_join(c, &ev_clock);
                let raw = ep.raw();
                match c.binary_search_by_key(&raw, |&(r, _)| r) {
                    Ok(i) => c[i].1 += 1,
                    Err(i) => c.insert(i, (raw, 1)),
                }
                self.ctx_clock = c.clone();
            }
            // World-global events (partition, heal, fault rules) have no
            // endpoint clock to bump; their consequences inherit the fired
            // event's own creation clock.
            None => self.ctx_clock = ev_clock,
        }
    }

    /// Whether the creation contexts of two pending calendar entries are
    /// strictly ordered by happens-before (either direction).  The DPOR in
    /// `horus-check` refuses to treat causally ordered events as an
    /// exchangeable race.  Returns `false` for unknown ids and for worlds
    /// without pending tracking (no clocks maintained).
    pub fn causally_ordered(&self, a: EventId, b: EventId) -> bool {
        let (Some(pa), Some(pb)) = (self.calendar.get(&a), self.calendar.get(&b)) else {
            return false;
        };
        vc_lt(&pa.clock, &pb.clock) || vc_lt(&pb.clock, &pa.clock)
    }

    /// The time-independent payload digest of a pending entry (tracked
    /// worlds compute these at insertion).  The explorer uses this as a
    /// run-independent event identity: insertion sequence numbers differ
    /// between converging runs, payload digests do not.
    pub fn pending_digest(&self, id: EventId) -> Option<u64> {
        self.calendar.get(&id).map(|p| if p.digest != 0 { p.digest } else { ev_digest(&p.ev) })
    }

    /// Duplicates the entire world — clock, calendar, network, endpoint
    /// stacks, logs, pending-digest sums — if every stack layer and the net
    /// scheduler support snapshotting (`Layer::supports_snapshot` /
    /// `NetScheduler::clone_box`).
    ///
    /// Layer state is shared **copy-on-write** with the original
    /// ([`Stack::clone_cow`]): nothing per-layer is copied here, and a layer
    /// is duplicated only when a later dispatch — on either world — first
    /// mutates it.  Snapshots therefore cost O(touched), not O(world),
    /// which is what lets the model checker park a sibling per untaken
    /// branch at depths a deep clone per branch point would forbid.  Use
    /// [`SimWorld::snapshot_deep`] to pay the full copy up front instead.
    ///
    /// Either way the clone is behaviourally exact: firing the same
    /// schedule against the original and the snapshot produces identical
    /// effects, upcalls, and fingerprints.  The model checker leans on this
    /// to resume exploration from a branch point instead of re-executing
    /// the settle phase and the choice prefix; anything less than an exact
    /// clone corrupts the search, which is why unsupported layers make this
    /// return `None` rather than best-effort copying.
    pub fn snapshot(&self) -> Option<SimWorld> {
        self.snapshot_impl(true)
    }

    /// [`SimWorld::snapshot`] with every layer deep-cloned up front (the
    /// pre-CoW behaviour).  Kept as the honest baseline for the checker's
    /// `cow_off` benchmark arm.
    pub fn snapshot_deep(&self) -> Option<SimWorld> {
        self.snapshot_impl(false)
    }

    fn snapshot_impl(&self, cow: bool) -> Option<SimWorld> {
        let mut endpoints = BTreeMap::new();
        for (ep, slot) in &self.endpoints {
            endpoints.insert(
                *ep,
                Slot {
                    stack: if cow { slot.stack.clone_cow()? } else { slot.stack.try_clone()? },
                    upcalls: slot.upcalls.clone(),
                    alive: slot.alive,
                    log_digest: slot.log_digest.clone(),
                    digest: slot.digest.clone(),
                    dirty: slot.dirty.clone(),
                },
            );
        }
        Some(SimWorld {
            time: self.time,
            seq: self.seq,
            steps: self.steps,
            step_limit: self.step_limit,
            calendar: self.calendar.clone(),
            net: self.net.clone(),
            endpoints,
            sched: self.sched.clone_box()?,
            traces: self.traces.clone(),
            dirty_eps: RefCell::new(self.dirty_eps.borrow().clone()),
            slots_sum: self.slots_sum.clone(),
            clocks: self.clocks.clone(),
            ctx_clock: self.ctx_clock.clone(),
            track_pending: self.track_pending,
            pending_s1: self.pending_s1,
            pending_s2: self.pending_s2,
            tracer: self.tracer.clone(),
        })
    }

    /// A 64-bit fingerprint of the world's explorable state: per-endpoint
    /// stack digests and liveness, observable delivery histories, network
    /// membership/partition state, and the pending-event multiset with times
    /// taken *relative to now* (so two runs reaching the same configuration
    /// at different absolute instants merge).
    ///
    /// Insertion sequence numbers are deliberately excluded — they encode
    /// arrival order history, not future behaviour.  Collisions make the
    /// explorer skip states it should visit (missed coverage), never report
    /// phantom violations.
    pub fn fingerprint(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.endpoints.len() as u64);
        d.write_u64(self.slots_sum_cached());
        self.net.digest_cached_into(&mut d);
        let (n, s1, s2) = if self.track_pending {
            (self.calendar.len() as u64, self.pending_s1, self.pending_s2)
        } else {
            self.pending_sums_fresh()
        };
        Self::write_pending_combine(&mut d, self.time, n, s1, s2);
        d.finish()
    }

    /// Drains the dirty queue — re-digesting only the slots touched since
    /// the last fingerprint — and returns the up-to-date clean-slot sum.
    /// Slot digests combine as a wrapping sum (order-independent; each
    /// digest already covers the endpoint address), which is what lets the
    /// warm path skip even the one-`Cell`-read-per-slot scan the previous
    /// scheme paid.
    fn slots_sum_cached(&self) -> u64 {
        let mut sum = self.slots_sum.get();
        let mut dirty = self.dirty_eps.borrow_mut();
        for ep in dirty.drain(..) {
            let slot = &self.endpoints[&ep];
            let v = Self::slot_digest(ep, slot, slot.stack.state_digest_cached());
            slot.digest.set(v);
            slot.dirty.set(false);
            sum = sum.wrapping_add(v);
        }
        self.slots_sum.set(sum);
        sum
    }

    /// [`SimWorld::fingerprint`] with every cache bypassed: stacks, network
    /// and calendar are all re-digested from scratch.  Bit-identical to the
    /// cached path by construction — the differential tests call both at
    /// every step to police the dirty-marking invariant, and the explorer's
    /// incremental-off benchmark arm uses it as the honest baseline.
    pub fn fingerprint_fresh(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_u64(self.endpoints.len() as u64);
        let mut sum: u64 = 0;
        for (ep, slot) in &self.endpoints {
            sum = sum.wrapping_add(Self::slot_digest(*ep, slot, slot.stack.state_digest()));
        }
        d.write_u64(sum);
        self.net.digest_into(&mut d);
        let (n, s1, s2) = self.pending_sums_fresh();
        Self::write_pending_combine(&mut d, self.time, n, s1, s2);
        d.finish()
    }

    fn slot_digest(ep: EndpointAddr, slot: &Slot, stack_digest: u64) -> u64 {
        let mut e = StateDigest::new();
        e.write_u64(ep.raw());
        e.write_u64(slot.alive as u64);
        e.write_u64(slot.log_digest.finish());
        e.write_u64(stack_digest);
        e.finish()
    }

    /// Pending events enter the fingerprint as an order-independent combine
    /// — `(count, Σ h_e, Σ h_e·(t_e − now))` over the pending multiset —
    /// because two interleavings that converge on the same pending set are
    /// the same state regardless of how the calendar was populated, and two
    /// runs reaching the same configuration at different absolute instants
    /// should merge (times are taken relative to now; the shift falls out
    /// of the maintained absolute-time sums as `S2 − now·S1` since the
    /// combine is linear in time).
    fn write_pending_combine(d: &mut StateDigest, now: SimTime, n: u64, s1: u64, s2: u64) {
        d.write_u64(n);
        d.write_u64(s1);
        d.write_u64(s2.wrapping_sub(now.as_nanos().wrapping_mul(s1)));
    }

    /// Walks the calendar computing the pending combine from scratch
    /// (untracked worlds, and the fresh fingerprint path).
    fn pending_sums_fresh(&self) -> (u64, u64, u64) {
        let mut s1: u64 = 0;
        let mut s2: u64 = 0;
        for (&(at, _), p) in &self.calendar {
            let h = ev_digest(&p.ev);
            s1 = s1.wrapping_add(h);
            s2 = s2.wrapping_add(h.wrapping_mul(at.as_nanos()));
        }
        (self.calendar.len() as u64, s1, s2)
    }
}

/// The time-independent payload digest of one calendar entry, with every
/// variant's fields digested directly — no `format!` in the per-event path.
fn ev_digest(ev: &Ev) -> u64 {
    let mut e = StateDigest::new();
    match ev {
        Ev::Net { to, from, cast, wire } => {
            e.write_u64(1);
            e.write_u64(to.raw());
            e.write_u64(from.raw());
            e.write_u64(*cast as u64);
            e.write_bytes(wire.head());
            e.write_bytes(wire.body());
        }
        Ev::Timer { ep, layer, token } => {
            e.write_u64(2);
            e.write_u64(ep.raw());
            e.write_u64(*layer as u64);
            e.write_u64(*token);
        }
        Ev::App { ep, down } => {
            e.write_u64(3);
            e.write_u64(ep.raw());
            down_digest(&mut e, down);
        }
        Ev::Crash { ep } => {
            e.write_u64(4);
            e.write_u64(ep.raw());
        }
        Ev::Partition { regions } => {
            e.write_u64(5);
            for r in regions {
                e.write_u64(r.len() as u64);
                for m in r {
                    e.write_u64(m.raw());
                }
            }
        }
        Ev::Heal => e.write_u64(6),
        Ev::Suspect { observer, target } => {
            e.write_u64(7);
            e.write_u64(observer.raw());
            e.write_u64(target.raw());
        }
        Ev::Fault { rule } => {
            e.write_u64(8);
            rule.digest_into(&mut e);
        }
    }
    e.finish()
}

fn down_digest(e: &mut StateDigest, down: &Down) {
    match down {
        Down::Join { group } => {
            e.write_u64(1);
            e.write_u64(group.raw());
        }
        Down::Cast(msg) => {
            e.write_u64(2);
            msg_digest(e, msg);
        }
        Down::Send { dests, msg } => {
            e.write_u64(3);
            e.write_u64(dests.len() as u64);
            for dst in dests {
                e.write_u64(dst.raw());
            }
            msg_digest(e, msg);
        }
        Down::Ack(id) => {
            e.write_u64(4);
            e.write_u64(id.origin.raw());
            e.write_u64(id.seq);
        }
        Down::Stable(id) => {
            e.write_u64(5);
            e.write_u64(id.origin.raw());
            e.write_u64(id.seq);
        }
        Down::InstallView(v) => {
            e.write_u64(6);
            e.write_str(&v.to_string());
        }
        Down::Flush { failed } => {
            e.write_u64(7);
            for m in failed {
                e.write_u64(m.raw());
            }
        }
        Down::FlushOk => e.write_u64(8),
        Down::Merge { contact } => {
            e.write_u64(9);
            e.write_u64(contact.raw());
        }
        Down::MergeGranted(id) => {
            e.write_u64(10);
            e.write_u64(id.0);
        }
        Down::MergeDenied(id) => {
            e.write_u64(11);
            e.write_u64(id.0);
        }
        Down::Leave => e.write_u64(12),
        Down::Destroy => e.write_u64(13),
        Down::Suspect { member } => {
            e.write_u64(14);
            e.write_u64(member.raw());
        }
        Down::Dump => e.write_u64(15),
        // `Down` is non_exhaustive; future variants at least digest their
        // kind until a field-direct arm is added.
        other => {
            e.write_u64(99);
            e.write_str(other.kind());
        }
    }
}

fn msg_digest(e: &mut StateDigest, m: &Message) {
    e.write_bytes(m.header_area());
    e.write_bytes(m.body());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Nop;
    impl Layer for Nop {
        fn name(&self) -> &'static str {
            "NOP"
        }
    }

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn world_of(n: u64) -> SimWorld {
        let mut w = SimWorld::new(7, NetConfig::reliable());
        for i in 1..=n {
            let s = StackBuilder::new(ep(i)).push(Box::new(Nop)).build().unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    #[test]
    fn cast_delivered_to_all_members() {
        let mut w = world_of(3);
        w.cast_bytes(ep(1), &b"m1"[..]);
        w.run_for(Duration::from_millis(5));
        for i in 1..=3 {
            let got = w.delivered_casts(ep(i));
            assert_eq!(got.len(), 1, "endpoint {i}");
            assert_eq!(got[0].0, ep(1));
        }
    }

    #[test]
    fn crashed_endpoints_receive_nothing() {
        let mut w = world_of(3);
        w.crash_at(SimTime::from_millis(1), ep(3));
        w.cast_bytes_at(SimTime::from_millis(2), ep(1), &b"late"[..]);
        w.run_for(Duration::from_millis(10));
        assert!(w.delivered_casts(ep(3)).is_empty());
        assert!(!w.is_alive(ep(3)));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
    }

    #[test]
    fn partitions_and_heal_are_scripted() {
        let mut w = world_of(2);
        w.partition_at(SimTime::from_millis(1), &[&[ep(1)], &[ep(2)]]);
        w.cast_bytes_at(SimTime::from_millis(2), ep(1), &b"blocked"[..]);
        w.heal_at(SimTime::from_millis(5));
        w.cast_bytes_at(SimTime::from_millis(6), ep(1), &b"flows"[..]);
        w.run_for(Duration::from_millis(20));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"flows");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut w = world_of(3);
            for k in 0..20 {
                w.cast_bytes_at(SimTime::from_micros(100 * k), ep(1 + k % 3), vec![k as u8]);
            }
            w.run_for(Duration::from_millis(50));
            (1..=3)
                .map(|i| {
                    w.delivered_casts(ep(i))
                        .iter()
                        .map(|(s, b, t)| (s.raw(), b.to_vec(), t.as_nanos()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut w = world_of(2);
        w.cast_bytes_at(SimTime::from_millis(10), ep(1), &b"later"[..]);
        w.run_until(SimTime::from_millis(5));
        assert!(w.delivered_casts(ep(2)).is_empty());
        assert_eq!(w.now(), SimTime::from_millis(5));
        w.run_until(SimTime::from_millis(20));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
    }

    #[test]
    fn physics_can_change_mid_run() {
        let mut w = world_of(2);
        // From t=0 the network loses everything remote...
        w.net_mut().config_mut().loss = 1.0;
        w.cast_bytes(ep(1), &b"lost"[..]);
        w.run_for(Duration::from_millis(5));
        assert!(w.delivered_casts(ep(2)).is_empty());
        // ...then it heals.
        w.net_mut().config_mut().loss = 0.0;
        w.cast_bytes(ep(1), &b"arrives"[..]);
        w.run_for(Duration::from_millis(5));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
    }

    #[test]
    fn take_upcalls_drains() {
        let mut w = world_of(2);
        w.cast_bytes(ep(1), &b"x"[..]);
        w.run_for(Duration::from_millis(5));
        assert_eq!(w.take_upcalls(ep(2)).len(), 1);
        assert!(w.upcalls(ep(2)).is_empty());
        assert!(w.take_upcalls(ep(9)).is_empty(), "unknown endpoints yield nothing");
    }

    #[test]
    fn traces_record_world_events() {
        let mut w = world_of(2);
        w.crash_at(SimTime::from_millis(1), ep(2));
        w.partition_at(SimTime::from_millis(2), &[&[ep(1)]]);
        w.heal_at(SimTime::from_millis(3));
        w.run_for(Duration::from_millis(10));
        let text: Vec<&str> = w.traces().iter().map(|(_, t)| t.as_str()).collect();
        assert!(text.iter().any(|t| t.contains("crashed")));
        assert!(text.iter().any(|t| t.contains("partition")));
        assert!(text.iter().any(|t| t.contains("healed")));
    }

    #[test]
    fn pending_events_visible() {
        let mut w = world_of(1);
        w.cast_bytes_at(SimTime::from_millis(50), ep(1), &b"later"[..]);
        assert!(w.pending_events() >= 1);
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.pending_events(), 0);
    }

    #[test]
    fn cached_fingerprint_matches_fresh_through_a_run() {
        let mut w = world_of(3);
        assert_eq!(w.fingerprint(), w.fingerprint_fresh());
        w.cast_bytes(ep(1), &b"a"[..]);
        w.crash_at(SimTime::from_millis(2), ep(3));
        w.suspect_at(SimTime::from_millis(3), ep(1), ep(3));
        w.partition_at(SimTime::from_millis(4), &[&[ep(1)], &[ep(2)]]);
        w.heal_at(SimTime::from_millis(5));
        assert_eq!(w.fingerprint(), w.fingerprint_fresh(), "with a populated calendar");
        for step in 1..=8u64 {
            w.run_until(SimTime::from_millis(step));
            assert_eq!(w.fingerprint(), w.fingerprint_fresh(), "after step {step}");
        }
    }

    #[test]
    fn tracked_pending_sums_match_a_fresh_walk() {
        // A deterministic world maintains the pending combine incrementally;
        // the fingerprint must not depend on which path computed it.
        let mut w = SimWorld::deterministic(NetConfig::reliable());
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i)).push(Box::new(Nop)).build().unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w.cast_bytes_at(SimTime::from_millis(1), ep(1), &b"x"[..]);
        w.run_until(SimTime::from_micros(1500));
        let tracked = w.fingerprint();
        assert_eq!(tracked, w.fingerprint_fresh());
        w.set_pending_tracking(false);
        assert_eq!(w.fingerprint(), tracked, "untracked walk agrees");
        w.set_pending_tracking(true);
        assert_eq!(w.fingerprint(), tracked, "re-enabling rebuilds exact sums");
    }

    #[test]
    fn fingerprint_merges_time_shifted_equal_states() {
        // Two runs that reach the same configuration at different absolute
        // instants must fingerprint identically: pending times are relative.
        let build = |offset_ms: u64| {
            let mut w = SimWorld::deterministic(NetConfig::reliable());
            let s = StackBuilder::new(ep(1)).push(Box::new(Nop)).build().unwrap();
            w.add_endpoint(s);
            w.join(ep(1), GroupAddr::new(1));
            w.run_until(SimTime::from_millis(offset_ms));
            w.cast_bytes_at(SimTime::from_millis(offset_ms + 7), ep(1), &b"p"[..]);
            w
        };
        let a = build(10);
        let b = build(25);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint_fresh(), b.fingerprint_fresh());
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_endpoint_rejected() {
        let mut w = world_of(1);
        let s = StackBuilder::new(ep(1)).push(Box::new(Nop)).build().unwrap();
        w.add_endpoint(s);
    }

    #[test]
    fn scripted_suspicion_is_dispatched_and_traced() {
        let mut w = world_of(2);
        w.suspect_at(SimTime::from_millis(3), ep(1), ep(2));
        w.run_for(Duration::from_millis(10));
        // The Nop stack consumes nothing, so the downcall falls out the
        // bottom; what matters here is the scheduling and the audit trail.
        let text: Vec<&str> = w.traces().iter().map(|(_, t)| t.as_str()).collect();
        assert!(text.iter().any(|t| t.contains("suspects") && t.contains("scripted")));
        assert!(text.iter().any(|t| t.contains("suspect") && t.contains("fell off")));
    }

    #[test]
    fn scripted_fault_rule_takes_effect_at_its_time() {
        let mut w = world_of(2);
        w.fault_at(
            SimTime::from_millis(5),
            FaultRule::OneWayCut { from: ep(1), to: ep(2), start: SimTime::ZERO, end: None },
        );
        w.cast_bytes_at(SimTime::from_millis(2), ep(1), &b"before"[..]);
        w.cast_bytes_at(SimTime::from_millis(8), ep(1), &b"after"[..]);
        w.run_for(Duration::from_millis(20));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"before");
        assert_eq!(w.net_stats().dropped_cut, 1);
    }

    #[test]
    fn storm_diagnostic_names_busiest_endpoint_and_kind() {
        let mut w = world_of(2);
        w.set_step_limit(5);
        for k in 0..50 {
            w.cast_bytes_at(SimTime::from_micros(10 * k), ep(1), vec![k as u8]);
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.run_for(Duration::from_millis(10));
        }))
        .expect_err("valve must trip");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("safety valve"), "got: {msg}");
        assert!(msg.contains("busiest source"), "got: {msg}");
        assert!(msg.contains("ep"), "names an endpoint: {msg}");
        assert!(
            msg.contains("app downcall") || msg.contains("net delivery"),
            "names an event kind: {msg}"
        );
    }
}
