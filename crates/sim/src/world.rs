//! The deterministic discrete-event executor.
//!
//! A [`SimWorld`] owns a set of endpoints (each a [`Stack`]), the simulated
//! network, and an event calendar ordered by virtual time.  Stacks are pure
//! state machines, the network is a pure function of its RNG, and the
//! calendar breaks ties by insertion order — so a `(seed, script)` pair
//! identifies exactly one execution.  This is what lets the repository
//! replay Figure 2 of the paper byte-for-byte, and lets the property tests
//! shrink failing schedules.

use bytes::Bytes;
use horus_core::prelude::*;
use horus_net::{FaultRule, NetConfig, SimNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::time::Duration;

/// Safety valve: a single `run_until` may not process more events than this
/// (catches accidental message storms in protocol code).
const MAX_STEPS_PER_RUN: u64 = 50_000_000;

// Net deliveries dominate the calendar; boxing them would cost an
// allocation per simulated packet.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Ev {
    /// A wire frame arrives at `to`.
    Net { to: EndpointAddr, from: EndpointAddr, cast: bool, wire: WireFrame },
    /// A stack timer expires.
    Timer { ep: EndpointAddr, layer: usize, token: u64 },
    /// The application issues a downcall.
    App { ep: EndpointAddr, down: Down },
    /// The endpoint crashes (fail-stop).
    Crash { ep: EndpointAddr },
    /// The network splits into the given regions.
    Partition { regions: Vec<Vec<EndpointAddr>> },
    /// All partitions heal.
    Heal,
    /// The scripted failure detector (§5) tells `observer` that `target`
    /// failed — possibly inaccurately.
    Suspect { observer: EndpointAddr, target: EndpointAddr },
    /// A targeted fault rule is installed in the network.
    Fault { rule: FaultRule },
}

struct Entry {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Slot {
    stack: Stack,
    upcalls: Vec<(SimTime, Up)>,
    alive: bool,
}

/// The discrete-event world: endpoints, network, calendar, virtual clock.
///
/// ```
/// use horus_sim::SimWorld;
/// use horus_net::NetConfig;
/// use horus_core::prelude::*;
/// use std::time::Duration;
///
/// #[derive(Debug, Default)]
/// struct Nop;
/// impl Layer for Nop { fn name(&self) -> &'static str { "NOP" } }
///
/// let mut w = SimWorld::new(1, NetConfig::reliable());
/// let a = EndpointAddr::new(1);
/// let b = EndpointAddr::new(2);
/// for ep in [a, b] {
///     let stack = StackBuilder::new(ep).push(Box::new(Nop)).build()?;
///     w.add_endpoint(stack);
///     w.join(ep, GroupAddr::new(1));
/// }
/// w.cast_bytes(a, &b"hi"[..]);
/// w.run_for(Duration::from_millis(10));
/// let got = w.delivered_casts(b);
/// assert_eq!(got.len(), 1);
/// assert_eq!(&got[0].1[..], b"hi");
/// # Ok::<(), HorusError>(())
/// ```
pub struct SimWorld {
    time: SimTime,
    seq: u64,
    steps: u64,
    step_limit: u64,
    calendar: BinaryHeap<Entry>,
    net: SimNetwork,
    endpoints: BTreeMap<EndpointAddr, Slot>,
    rng: StdRng,
    traces: Vec<(SimTime, String)>,
}

impl SimWorld {
    /// Creates a world with a deterministic seed and network physics.
    pub fn new(seed: u64, config: NetConfig) -> Self {
        SimWorld {
            time: SimTime::ZERO,
            seq: 0,
            steps: 0,
            step_limit: MAX_STEPS_PER_RUN,
            calendar: BinaryHeap::new(),
            net: SimNetwork::new(config),
            endpoints: BTreeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            traces: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The simulated network (for physics tweaks mid-run).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// Network counters.
    pub fn net_stats(&self) -> &horus_net::NetStats {
        self.net.stats()
    }

    /// Registers an endpoint's stack and runs its layer initialisation.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint with the same address already exists.
    pub fn add_endpoint(&mut self, mut stack: Stack) -> EndpointAddr {
        let ep = stack.local_addr();
        assert!(!self.endpoints.contains_key(&ep), "endpoint {ep} already exists in this world");
        stack.set_now(self.time);
        let effects = stack.init();
        self.endpoints.insert(ep, Slot { stack, upcalls: Vec::new(), alive: true });
        self.apply_effects(ep, effects);
        ep
    }

    /// Schedules a downcall at the current time.
    pub fn down(&mut self, ep: EndpointAddr, down: Down) {
        self.down_at(self.time, ep, down);
    }

    /// Schedules a downcall at an absolute virtual time.
    pub fn down_at(&mut self, at: SimTime, ep: EndpointAddr, down: Down) {
        self.schedule(at, Ev::App { ep, down });
    }

    /// Shorthand: `join` downcall now.
    pub fn join(&mut self, ep: EndpointAddr, group: GroupAddr) {
        self.down(ep, Down::Join { group });
    }

    /// Shorthand: casts an application payload now.
    pub fn cast_bytes(&mut self, ep: EndpointAddr, body: impl Into<Bytes>) {
        self.cast_bytes_at(self.time, ep, body);
    }

    /// Shorthand: casts an application payload at an absolute time.
    pub fn cast_bytes_at(&mut self, at: SimTime, ep: EndpointAddr, body: impl Into<Bytes>) {
        let msg = self
            .endpoints
            .get(&ep)
            .unwrap_or_else(|| panic!("unknown endpoint {ep}"))
            .stack
            .new_message(body.into());
        self.down_at(at, ep, Down::Cast(msg));
    }

    /// Schedules a fail-stop crash.
    pub fn crash_at(&mut self, at: SimTime, ep: EndpointAddr) {
        self.schedule(at, Ev::Crash { ep });
    }

    /// Schedules a network partition (each slice becomes one region).
    pub fn partition_at(&mut self, at: SimTime, regions: &[&[EndpointAddr]]) {
        let regions = regions.iter().map(|r| r.to_vec()).collect();
        self.schedule(at, Ev::Partition { regions });
    }

    /// Schedules the healing of all partitions.
    pub fn heal_at(&mut self, at: SimTime) {
        self.schedule(at, Ev::Heal);
    }

    /// Schedules a scripted failure-detector suspicion (§5): at `at`,
    /// `observer`'s stack receives `Down::Suspect { member: target }`.  The
    /// suspicion may be **inaccurate** — `target` need not have failed —
    /// which is exactly the detector class MBRSHIP must tolerate (a falsely
    /// suspected live member is excluded but re-merges; it is never
    /// permanently ejected).
    pub fn suspect_at(&mut self, at: SimTime, observer: EndpointAddr, target: EndpointAddr) {
        self.schedule(at, Ev::Suspect { observer, target });
    }

    /// Schedules the installation of a targeted network fault rule at an
    /// absolute virtual time (rules added before the run can also go in
    /// directly via [`SimNetwork::add_fault`]).
    pub fn fault_at(&mut self, at: SimTime, rule: FaultRule) {
        self.schedule(at, Ev::Fault { rule });
    }

    fn schedule(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.time, "cannot schedule into the past");
        self.seq += 1;
        self.calendar.push(Entry { at, seq: self.seq, ev });
    }

    /// Lowers (or raises) the event-count safety valve.  The default is 50
    /// million events per world; tests that deliberately provoke storms
    /// shrink it so the diagnostic fires quickly.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Runs the calendar until `deadline` (inclusive); events after it stay
    /// queued.  Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics if more than the step limit (default 50 million) events fire
    /// — almost certainly a protocol message storm.  The panic message
    /// names the busiest endpoint and event kind in the calendar backlog so
    /// the offending protocol loop can be identified from the failure alone.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(head) = self.calendar.peek() {
            if head.at > deadline {
                break;
            }
            let entry = self.calendar.pop().expect("peeked entry");
            self.time = entry.at;
            self.dispatch(entry.ev);
            processed += 1;
            self.steps += 1;
            if self.steps >= self.step_limit {
                panic!("{}", self.storm_report());
            }
        }
        self.time = self.time.max(deadline);
        processed
    }

    /// Builds the safety-valve diagnostic from the calendar backlog: during
    /// a message storm the backlog is dominated by the runaway loop, so the
    /// busiest `(endpoint, event kind)` pair names the culprit.
    fn storm_report(&self) -> String {
        let mut by_source: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
        for entry in self.calendar.iter() {
            let (ep, kind) = match &entry.ev {
                Ev::Net { to, .. } => (to.to_string(), "net delivery"),
                Ev::Timer { ep, .. } => (ep.to_string(), "timer"),
                Ev::App { ep, .. } => (ep.to_string(), "app downcall"),
                Ev::Crash { ep } => (ep.to_string(), "crash"),
                Ev::Suspect { observer, .. } => (observer.to_string(), "scripted suspicion"),
                Ev::Fault { .. } => ("<network>".to_string(), "fault rule"),
                Ev::Partition { .. } => ("<network>".to_string(), "partition"),
                Ev::Heal => ("<network>".to_string(), "heal"),
            };
            *by_source.entry((ep, kind)).or_insert(0) += 1;
        }
        let header = format!(
            "event-count safety valve tripped at {} after {} events: protocol message storm?",
            self.time, self.steps
        );
        match by_source.iter().max_by_key(|&(_, n)| n) {
            Some(((ep, kind), n)) => format!(
                "{header} busiest source in the {}-entry backlog is endpoint {ep} \
                 with {n} pending '{kind}' events",
                self.calendar.len()
            ),
            None => format!("{header} (calendar backlog is empty — limit set too low?)"),
        }
    }

    /// Runs the calendar for a further `d` of virtual time.
    pub fn run_for(&mut self, d: Duration) -> u64 {
        self.run_until(self.time + d)
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Net { to, from, cast, wire } => {
                let Some(slot) = self.endpoints.get_mut(&to) else { return };
                if !slot.alive {
                    return;
                }
                slot.stack.set_now(self.time);
                let fx = slot.stack.handle(StackInput::FromNet { from, cast, wire });
                self.apply_effects(to, fx);
            }
            Ev::Timer { ep, layer, token } => {
                let Some(slot) = self.endpoints.get_mut(&ep) else { return };
                if !slot.alive {
                    return;
                }
                let fx = slot.stack.handle(StackInput::Timer { layer, token, now: self.time });
                self.apply_effects(ep, fx);
            }
            Ev::App { ep, down } => {
                let Some(slot) = self.endpoints.get_mut(&ep) else { return };
                if !slot.alive {
                    return;
                }
                slot.stack.set_now(self.time);
                let fx = slot.stack.handle(StackInput::FromApp(down));
                self.apply_effects(ep, fx);
            }
            Ev::Crash { ep } => {
                if let Some(slot) = self.endpoints.get_mut(&ep) {
                    slot.alive = false;
                    self.net.leave(ep);
                    self.traces.push((self.time, format!("{ep} crashed")));
                }
            }
            Ev::Partition { regions } => {
                let slices: Vec<&[EndpointAddr]> = regions.iter().map(|r| r.as_slice()).collect();
                self.net.partition(&slices);
                self.traces.push((self.time, format!("partition {regions:?}")));
            }
            Ev::Heal => {
                self.net.heal();
                self.traces.push((self.time, "partitions healed".to_string()));
            }
            Ev::Suspect { observer, target } => {
                let Some(slot) = self.endpoints.get_mut(&observer) else { return };
                if !slot.alive {
                    return;
                }
                slot.stack.set_now(self.time);
                let fx = slot.stack.handle(StackInput::FromApp(Down::Suspect { member: target }));
                self.apply_effects(observer, fx);
                self.traces.push((self.time, format!("{observer} suspects {target} (scripted)")));
            }
            Ev::Fault { rule } => {
                self.traces.push((self.time, format!("fault installed: {rule:?}")));
                self.net.add_fault(rule);
            }
        }
    }

    fn apply_effects(&mut self, ep: EndpointAddr, effects: Vec<Effect>) {
        for fx in effects {
            match fx {
                Effect::Deliver(up) => {
                    if let Some(slot) = self.endpoints.get_mut(&ep) {
                        slot.upcalls.push((self.time, up));
                    }
                }
                Effect::NetCast { wire } => {
                    let deliveries = self.net.cast(ep, wire, self.time, &mut self.rng);
                    for d in deliveries {
                        self.schedule(
                            d.at,
                            Ev::Net { to: d.to, from: d.from, cast: d.cast, wire: d.wire },
                        );
                    }
                }
                Effect::NetSend { dests, wire } => {
                    let deliveries = self.net.send(ep, &dests, wire, self.time, &mut self.rng);
                    for d in deliveries {
                        self.schedule(
                            d.at,
                            Ev::Net { to: d.to, from: d.from, cast: d.cast, wire: d.wire },
                        );
                    }
                }
                Effect::NetJoin { group } => self.net.join(group, ep),
                Effect::NetLeave => self.net.leave(ep),
                Effect::SetTimer { layer, token, delay } => {
                    self.schedule(self.time + delay, Ev::Timer { ep, layer, token });
                }
                Effect::Trace(t) => self.traces.push((self.time, format!("{ep}: {t}"))),
            }
        }
    }

    /// Whether an endpoint is still alive (has not crashed or been
    /// destroyed).
    pub fn is_alive(&self, ep: EndpointAddr) -> bool {
        self.endpoints.get(&ep).map(|s| s.alive && !s.stack.is_destroyed()).unwrap_or(false)
    }

    /// All endpoint addresses, in address order.
    pub fn endpoint_addrs(&self) -> Vec<EndpointAddr> {
        self.endpoints.keys().copied().collect()
    }

    /// The recorded upcalls of an endpoint, in delivery order.
    pub fn upcalls(&self, ep: EndpointAddr) -> &[(SimTime, Up)] {
        self.endpoints.get(&ep).map(|s| s.upcalls.as_slice()).unwrap_or(&[])
    }

    /// Removes and returns an endpoint's recorded upcalls.
    pub fn take_upcalls(&mut self, ep: EndpointAddr) -> Vec<(SimTime, Up)> {
        self.endpoints.get_mut(&ep).map(|s| std::mem::take(&mut s.upcalls)).unwrap_or_default()
    }

    /// CAST deliveries observed by an endpoint: `(source, body, time)`.
    pub fn delivered_casts(&self, ep: EndpointAddr) -> Vec<(EndpointAddr, Bytes, SimTime)> {
        self.upcalls(ep)
            .iter()
            .filter_map(|(t, up)| match up {
                Up::Cast { src, msg } => Some((*src, msg.body().clone(), *t)),
                _ => None,
            })
            .collect()
    }

    /// Views installed at an endpoint, in installation order.
    pub fn installed_views(&self, ep: EndpointAddr) -> Vec<View> {
        self.upcalls(ep)
            .iter()
            .filter_map(|(_, up)| match up {
                Up::View(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    }

    /// Stack counters for an endpoint.
    pub fn stack_stats(&self, ep: EndpointAddr) -> Option<&horus_core::stack::StackStats> {
        self.endpoints.get(&ep).map(|s| s.stack.stats())
    }

    /// Borrow an endpoint's stack (for `focus`/`dump` inspection).
    pub fn stack(&self, ep: EndpointAddr) -> Option<&Stack> {
        self.endpoints.get(&ep).map(|s| &s.stack)
    }

    /// The world's trace log (layer traces, crash/partition markers).
    pub fn traces(&self) -> &[(SimTime, String)] {
        &self.traces
    }

    /// Pending calendar entries (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.calendar.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Nop;
    impl Layer for Nop {
        fn name(&self) -> &'static str {
            "NOP"
        }
    }

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn world_of(n: u64) -> SimWorld {
        let mut w = SimWorld::new(7, NetConfig::reliable());
        for i in 1..=n {
            let s = StackBuilder::new(ep(i)).push(Box::new(Nop)).build().unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    #[test]
    fn cast_delivered_to_all_members() {
        let mut w = world_of(3);
        w.cast_bytes(ep(1), &b"m1"[..]);
        w.run_for(Duration::from_millis(5));
        for i in 1..=3 {
            let got = w.delivered_casts(ep(i));
            assert_eq!(got.len(), 1, "endpoint {i}");
            assert_eq!(got[0].0, ep(1));
        }
    }

    #[test]
    fn crashed_endpoints_receive_nothing() {
        let mut w = world_of(3);
        w.crash_at(SimTime::from_millis(1), ep(3));
        w.cast_bytes_at(SimTime::from_millis(2), ep(1), &b"late"[..]);
        w.run_for(Duration::from_millis(10));
        assert!(w.delivered_casts(ep(3)).is_empty());
        assert!(!w.is_alive(ep(3)));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
    }

    #[test]
    fn partitions_and_heal_are_scripted() {
        let mut w = world_of(2);
        w.partition_at(SimTime::from_millis(1), &[&[ep(1)], &[ep(2)]]);
        w.cast_bytes_at(SimTime::from_millis(2), ep(1), &b"blocked"[..]);
        w.heal_at(SimTime::from_millis(5));
        w.cast_bytes_at(SimTime::from_millis(6), ep(1), &b"flows"[..]);
        w.run_for(Duration::from_millis(20));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"flows");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut w = world_of(3);
            for k in 0..20 {
                w.cast_bytes_at(SimTime::from_micros(100 * k), ep(1 + k % 3), vec![k as u8]);
            }
            w.run_for(Duration::from_millis(50));
            (1..=3)
                .map(|i| {
                    w.delivered_casts(ep(i))
                        .iter()
                        .map(|(s, b, t)| (s.raw(), b.to_vec(), t.as_nanos()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut w = world_of(2);
        w.cast_bytes_at(SimTime::from_millis(10), ep(1), &b"later"[..]);
        w.run_until(SimTime::from_millis(5));
        assert!(w.delivered_casts(ep(2)).is_empty());
        assert_eq!(w.now(), SimTime::from_millis(5));
        w.run_until(SimTime::from_millis(20));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
    }

    #[test]
    fn physics_can_change_mid_run() {
        let mut w = world_of(2);
        // From t=0 the network loses everything remote...
        w.net_mut().config_mut().loss = 1.0;
        w.cast_bytes(ep(1), &b"lost"[..]);
        w.run_for(Duration::from_millis(5));
        assert!(w.delivered_casts(ep(2)).is_empty());
        // ...then it heals.
        w.net_mut().config_mut().loss = 0.0;
        w.cast_bytes(ep(1), &b"arrives"[..]);
        w.run_for(Duration::from_millis(5));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
    }

    #[test]
    fn take_upcalls_drains() {
        let mut w = world_of(2);
        w.cast_bytes(ep(1), &b"x"[..]);
        w.run_for(Duration::from_millis(5));
        assert_eq!(w.take_upcalls(ep(2)).len(), 1);
        assert!(w.upcalls(ep(2)).is_empty());
        assert!(w.take_upcalls(ep(9)).is_empty(), "unknown endpoints yield nothing");
    }

    #[test]
    fn traces_record_world_events() {
        let mut w = world_of(2);
        w.crash_at(SimTime::from_millis(1), ep(2));
        w.partition_at(SimTime::from_millis(2), &[&[ep(1)]]);
        w.heal_at(SimTime::from_millis(3));
        w.run_for(Duration::from_millis(10));
        let text: Vec<&str> = w.traces().iter().map(|(_, t)| t.as_str()).collect();
        assert!(text.iter().any(|t| t.contains("crashed")));
        assert!(text.iter().any(|t| t.contains("partition")));
        assert!(text.iter().any(|t| t.contains("healed")));
    }

    #[test]
    fn pending_events_visible() {
        let mut w = world_of(1);
        w.cast_bytes_at(SimTime::from_millis(50), ep(1), &b"later"[..]);
        assert!(w.pending_events() >= 1);
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.pending_events(), 0);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_endpoint_rejected() {
        let mut w = world_of(1);
        let s = StackBuilder::new(ep(1)).push(Box::new(Nop)).build().unwrap();
        w.add_endpoint(s);
    }

    #[test]
    fn scripted_suspicion_is_dispatched_and_traced() {
        let mut w = world_of(2);
        w.suspect_at(SimTime::from_millis(3), ep(1), ep(2));
        w.run_for(Duration::from_millis(10));
        // The Nop stack consumes nothing, so the downcall falls out the
        // bottom; what matters here is the scheduling and the audit trail.
        let text: Vec<&str> = w.traces().iter().map(|(_, t)| t.as_str()).collect();
        assert!(text.iter().any(|t| t.contains("suspects") && t.contains("scripted")));
        assert!(text.iter().any(|t| t.contains("suspect") && t.contains("fell off")));
    }

    #[test]
    fn scripted_fault_rule_takes_effect_at_its_time() {
        let mut w = world_of(2);
        w.fault_at(
            SimTime::from_millis(5),
            FaultRule::OneWayCut { from: ep(1), to: ep(2), start: SimTime::ZERO, end: None },
        );
        w.cast_bytes_at(SimTime::from_millis(2), ep(1), &b"before"[..]);
        w.cast_bytes_at(SimTime::from_millis(8), ep(1), &b"after"[..]);
        w.run_for(Duration::from_millis(20));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"before");
        assert_eq!(w.net_stats().dropped_cut, 1);
    }

    #[test]
    fn storm_diagnostic_names_busiest_endpoint_and_kind() {
        let mut w = world_of(2);
        w.set_step_limit(5);
        for k in 0..50 {
            w.cast_bytes_at(SimTime::from_micros(10 * k), ep(1), vec![k as u8]);
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.run_for(Duration::from_millis(10));
        }))
        .expect_err("valve must trip");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("safety valve"), "got: {msg}");
        assert!(msg.contains("busiest source"), "got: {msg}");
        assert!(msg.contains("ep"), "names an endpoint: {msg}");
        assert!(
            msg.contains("app downcall") || msg.contains("net delivery"),
            "names an event kind: {msg}"
        );
    }
}
