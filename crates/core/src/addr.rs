//! Endpoint and group addresses (§3 of the paper).
//!
//! An *endpoint* models the communicating entity; it has an address and can
//! send and receive messages.  Messages are not addressed to endpoints but to
//! *groups*; the endpoint address is used for membership purposes.  Both
//! address kinds here are small opaque identifiers — in the 1995 system they
//! were wide enough to embed transport information, but every protocol above
//! the COM layer treats them as opaque tokens, which is all that matters for
//! composition.

use std::fmt;

/// The address of a communication endpoint.
///
/// A process may own several endpoints, each with its own protocol stack.
/// Addresses are totally ordered; several protocols (coordinator election in
/// MBRSHIP, deterministic post-flush ordering in TOTAL) rely on that order to
/// break ties without exchanging messages.
///
/// ```
/// use horus_core::EndpointAddr;
/// let a = EndpointAddr::new(1);
/// let b = EndpointAddr::new(2);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "ep:1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointAddr(u64);

impl EndpointAddr {
    /// The reserved "nobody" address. Never assigned to a real endpoint.
    pub const NULL: EndpointAddr = EndpointAddr(0);

    /// Creates an endpoint address from a raw identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero, which is reserved for [`EndpointAddr::NULL`].
    pub fn new(id: u64) -> Self {
        assert!(id != 0, "endpoint id 0 is reserved for EndpointAddr::NULL");
        EndpointAddr(id)
    }

    /// Returns the raw identifier.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` for the reserved null address.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for EndpointAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "ep:-")
        } else {
            write!(f, "ep:{}", self.0)
        }
    }
}

impl fmt::Debug for EndpointAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<EndpointAddr> for u64 {
    fn from(a: EndpointAddr) -> u64 {
        a.0
    }
}

/// The address of a process group: the destination of `cast` downcalls.
///
/// A group address names the *set of members that communicate*; the local
/// bookkeeping for one member's participation is the group state carried by
/// its stack (see [`crate::view::View`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupAddr(u64);

impl GroupAddr {
    /// Creates a group address from a raw identifier.
    pub fn new(id: u64) -> Self {
        GroupAddr(id)
    }

    /// Returns the raw identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grp:{}", self.0)
    }
}

impl fmt::Debug for GroupAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A member's position in the ordered member list of a view.
///
/// Rank 0 is the first member of the view. Several protocols use ranks for
/// deterministic decisions: TOTAL hands the first token of a new view to the
/// lowest-ranked member, and orders flush-recovered messages by source rank.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(pub usize);

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank:{}", self.0)
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_ordering_follows_raw_id() {
        let mut addrs: Vec<_> = [5u64, 2, 9, 3].iter().map(|&i| EndpointAddr::new(i)).collect();
        addrs.sort();
        let raw: Vec<u64> = addrs.iter().map(|a| a.raw()).collect();
        assert_eq!(raw, vec![2, 3, 5, 9]);
    }

    #[test]
    fn null_is_distinguished() {
        assert!(EndpointAddr::NULL.is_null());
        assert!(!EndpointAddr::new(1).is_null());
        assert_eq!(EndpointAddr::NULL.to_string(), "ep:-");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_endpoint_id_panics() {
        let _ = EndpointAddr::new(0);
    }

    #[test]
    fn group_addr_roundtrip() {
        let g = GroupAddr::new(42);
        assert_eq!(g.raw(), 42);
        assert_eq!(g.to_string(), "grp:42");
        assert_eq!(g, GroupAddr::new(42));
    }

    #[test]
    fn rank_display() {
        assert_eq!(Rank(3).to_string(), "rank:3");
        assert!(Rank(0) < Rank(1));
    }
}
