//! The crate-wide error type.

use std::error::Error;
use std::fmt;

/// Errors reported by the Horus runtime and by protocol layers.
///
/// Following the paper's SYSTEM_ERROR upcall, most *asynchronous* protocol
/// problems are reported through the event stream ([`crate::event::Up`]);
/// `HorusError` covers *synchronous* failures of API calls — malformed stack
/// descriptions, undecodable wire messages, and the like.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HorusError {
    /// The requested stack composition is invalid (empty, too deep, or a
    /// layer rejected its position or parameters).
    BadStack(String),
    /// A layer parameter string could not be parsed.
    BadParam(String),
    /// An incoming wire message could not be decoded against this stack's
    /// header layout.
    Decode(String),
    /// The named layer does not exist in the layer registry.
    UnknownLayer(String),
    /// The endpoint or group referenced by an operation does not exist.
    UnknownEndpoint(String),
    /// An operation was attempted in a state where it is not permitted
    /// (e.g. casting before joining a group).
    BadState(String),
}

impl fmt::Display for HorusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HorusError::BadStack(m) => write!(f, "invalid stack composition: {m}"),
            HorusError::BadParam(m) => write!(f, "invalid layer parameter: {m}"),
            HorusError::Decode(m) => write!(f, "undecodable wire message: {m}"),
            HorusError::UnknownLayer(m) => write!(f, "unknown layer: {m}"),
            HorusError::UnknownEndpoint(m) => write!(f, "unknown endpoint: {m}"),
            HorusError::BadState(m) => write!(f, "operation not permitted in current state: {m}"),
        }
    }
}

impl Error for HorusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = HorusError::BadStack("empty".into());
        assert_eq!(e.to_string(), "invalid stack composition: empty");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HorusError>();
    }
}
