//! The Horus Common Protocol Interface (§4): downcalls (Table 1), upcalls
//! (Table 2), and the effect/input types that connect a stack to its
//! executor.
//!
//! The HCPI is the whole point of the paper: because *every* layer consumes
//! and produces exactly these events, layers can be stacked in any order at
//! run time.  The `endpoint`, `focus`, and `dump` downcalls of Table 1 are
//! synchronous API operations in this implementation
//! ([`crate::stack::StackBuilder`], [`crate::stack::Stack::focus`],
//! [`crate::stack::Stack::dump`]); everything else flows through [`Down`]
//! and [`Up`].

use crate::addr::{EndpointAddr, GroupAddr};
use crate::frame::WireFrame;
use crate::message::Message;
use crate::time::SimTime;
use crate::view::View;
use std::fmt;
use std::time::Duration;

/// Identifies a message for stability tracking (`ack`/`stable` downcalls and
/// the STABLE upcall): the originating endpoint plus its per-origin sequence
/// number in the stability layer's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The endpoint that originally cast the message.
    pub origin: EndpointAddr,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// Identifies one merge negotiation (MERGE_REQUEST upcall and the
/// `merge_granted`/`merge_denied` downcalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MergeId(pub u64);

impl fmt::Display for MergeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "merge:{}", self.0)
    }
}

/// The stability matrix reported by the STABLE upcall (§9).
///
/// Entry `(i, j)` is the highest sequence number of member `j`'s messages
/// that member `i` is known (to the local stability layer) to have
/// *processed*, in the application-defined sense of the `ack` downcall.
/// Row and column order follows the current view's member order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StabilityMatrix {
    members: Vec<EndpointAddr>,
    /// Row-major: `acked[i * n + j]`.
    acked: Vec<u64>,
}

impl StabilityMatrix {
    /// Creates an all-zero matrix over the given members.
    pub fn new(members: Vec<EndpointAddr>) -> Self {
        let n = members.len();
        StabilityMatrix { members, acked: vec![0; n * n] }
    }

    /// The members this matrix covers, in view order.
    pub fn members(&self) -> &[EndpointAddr] {
        &self.members
    }

    /// Highest sequence number of `origin`'s messages processed by `member`.
    pub fn acked(&self, member: EndpointAddr, origin: EndpointAddr) -> u64 {
        match (self.index(member), self.index(origin)) {
            (Some(i), Some(j)) => self.acked[i * self.members.len() + j],
            _ => 0,
        }
    }

    /// Records that `member` has processed `origin`'s messages up to `seq`.
    /// Monotone: lower values than already recorded are ignored.
    pub fn record(&mut self, member: EndpointAddr, origin: EndpointAddr, seq: u64) {
        if let (Some(i), Some(j)) = (self.index(member), self.index(origin)) {
            let cell = &mut self.acked[i * self.members.len() + j];
            *cell = (*cell).max(seq);
        }
    }

    /// A message from `origin` with sequence `seq` is *stable* when every
    /// member has processed it — the end-to-end mechanism of §9.
    pub fn is_stable(&self, origin: EndpointAddr, seq: u64) -> bool {
        match self.index(origin) {
            Some(j) => {
                let n = self.members.len();
                (0..n).all(|i| self.acked[i * n + j] >= seq)
            }
            None => false,
        }
    }

    /// For `origin`, the highest sequence processed by *all* members
    /// (the stable horizon).
    pub fn stable_horizon(&self, origin: EndpointAddr) -> u64 {
        match self.index(origin) {
            Some(j) => {
                let n = self.members.len();
                (0..n).map(|i| self.acked[i * n + j]).min().unwrap_or(0)
            }
            None => 0,
        }
    }

    fn index(&self, who: EndpointAddr) -> Option<usize> {
        self.members.iter().position(|&m| m == who)
    }
}

/// HCPI downcalls (Table 1 of the paper).
///
/// Issued by the application (or an embedding such as the socket facade) at
/// the top of a stack, and passed from layer to layer toward the network.
// Variant sizes intentionally differ: messages and views dominate, and
// boxing them would add an allocation to the per-message hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Down {
    /// `join`: join the group.  Results eventually in a VIEW upcall.
    Join { group: GroupAddr },
    /// `cast`: multicast a message to the current view of the group.
    Cast(Message),
    /// `send`: send a message to a subset of the view.
    Send { dests: Vec<EndpointAddr>, msg: Message },
    /// `ack`: the application has *processed* this message (application-
    /// defined stability, §9).
    Ack(MsgId),
    /// `stable`: the application asserts the message is stable (e.g. it
    /// learned so out of band, or logged it to disk).
    Stable(MsgId),
    /// `view`: install a group view (issued by membership layers toward the
    /// layers below them, or by an application running its own membership).
    InstallView(View),
    /// `flush`: remove the listed failed members and start a view flush.
    Flush { failed: Vec<EndpointAddr> },
    /// `flush_ok`: go along with an in-progress flush.
    FlushOk,
    /// `merge`: ask the view containing `contact` to merge with ours.
    Merge { contact: EndpointAddr },
    /// `merge_granted`: grant a previously reported MERGE_REQUEST.
    MergeGranted(MergeId),
    /// `merge_denied`: deny a previously reported MERGE_REQUEST.
    MergeDenied(MergeId),
    /// `leave`: leave the group.
    Leave,
    /// `destroy`: tear the endpoint down.
    Destroy,
    /// External failure-detector input (§5: "an external service ... decides
    /// whether a process is to be considered faulty"): suspect a member.
    Suspect { member: EndpointAddr },
    /// `dump`: ask every layer to report its state (DumpInfo upcalls).
    Dump,
}

/// HCPI upcalls (Table 2 of the paper).
///
/// Generated by layers and passed from layer to layer toward the
/// application.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Up {
    /// VIEW: a new view was installed.
    View(View),
    /// CAST: a multicast message was received.
    Cast { src: EndpointAddr, msg: Message },
    /// SEND: a subset (point-to-point) message was received.
    Send { src: EndpointAddr, msg: Message },
    /// MERGE_REQUEST: another view asks to merge with ours.
    MergeRequest { from: EndpointAddr, id: MergeId },
    /// MERGE_DENIED: our merge request was denied.
    MergeDenied { why: String },
    /// FLUSH: a view flush has started; the listed members are considered
    /// failed.
    Flush { failed: Vec<EndpointAddr> },
    /// FLUSH_OK: a member completed its part of the flush.
    FlushOk { from: EndpointAddr },
    /// LEAVE: a member left the group voluntarily.
    Leave { member: EndpointAddr },
    /// LOST_MESSAGE: a message is irrecoverably gone (the NAK layer's
    /// retransmission buffer no longer held it).
    LostMessage { src: EndpointAddr },
    /// STABLE: updated stability information (§9).
    Stable(StabilityMatrix),
    /// PROBLEM: communication trouble with a member (failure *suspicion*,
    /// not yet a membership decision).
    Problem { member: EndpointAddr },
    /// PROBLEM_CLEARED: a previously raised suspicion proved false — the
    /// failure detector saw fresh evidence (e.g. a heartbeat) that the
    /// member is alive.  Membership may rescind a pending exclusion that
    /// has not yet committed to a view change (§5: detectors are allowed
    /// to be inaccurate; the system must stay correct anyway).
    ProblemCleared { member: EndpointAddr },
    /// SYSTEM_ERROR: something went wrong inside the stack.
    SystemError { reason: String },
    /// DESTROY: the endpoint has been destroyed.
    Destroy,
    /// EXIT: close-down event; the application should stop using the stack.
    Exit,
    /// Response to the `dump` downcall: one layer's state report
    /// (the `focus`/`dump` debugging interface of Table 1).
    DumpInfo { layer: &'static str, info: String },
}

impl Up {
    /// A short tag for trace output and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Up::View(_) => "VIEW",
            Up::Cast { .. } => "CAST",
            Up::Send { .. } => "SEND",
            Up::MergeRequest { .. } => "MERGE_REQUEST",
            Up::MergeDenied { .. } => "MERGE_DENIED",
            Up::Flush { .. } => "FLUSH",
            Up::FlushOk { .. } => "FLUSH_OK",
            Up::Leave { .. } => "LEAVE",
            Up::LostMessage { .. } => "LOST_MESSAGE",
            Up::Stable(_) => "STABLE",
            Up::Problem { .. } => "PROBLEM",
            Up::ProblemCleared { .. } => "PROBLEM_CLEARED",
            Up::SystemError { .. } => "SYSTEM_ERROR",
            Up::Destroy => "DESTROY",
            Up::Exit => "EXIT",
            Up::DumpInfo { .. } => "DUMP_INFO",
        }
    }
}

impl Down {
    /// A short tag for trace output and statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Down::Join { .. } => "join",
            Down::Cast(_) => "cast",
            Down::Send { .. } => "send",
            Down::Ack(_) => "ack",
            Down::Stable(_) => "stable",
            Down::InstallView(_) => "view",
            Down::Flush { .. } => "flush",
            Down::FlushOk => "flush_ok",
            Down::Merge { .. } => "merge",
            Down::MergeGranted(_) => "merge_granted",
            Down::MergeDenied(_) => "merge_denied",
            Down::Leave => "leave",
            Down::Destroy => "destroy",
            Down::Suspect { .. } => "suspect",
            Down::Dump => "dump",
        }
    }
}

/// One unit of work entering a stack from the outside world.
#[allow(clippy::large_enum_variant)] // downcalls carry whole messages
#[derive(Debug, Clone)]
pub enum StackInput {
    /// A downcall from the application.
    FromApp(Down),
    /// A wire message from the network substrate.
    FromNet {
        /// Transport-level sender.
        from: EndpointAddr,
        /// Whether the transport delivered this as a multicast (`true`) or a
        /// point-to-point send (`false`).
        cast: bool,
        /// The encoded message.
        wire: WireFrame,
    },
    /// A timer set by layer `layer` with the given token has expired.
    Timer { layer: usize, token: u64, now: SimTime },
    /// The virtual clock advanced (executors call this before handing in
    /// other inputs; carries no work by itself).
    Tick { now: SimTime },
}

/// Effects a stack asks its executor to perform.
///
/// The stack runtime is a pure state machine: inputs go in, effects come
/// out, and the executor (simulated or threaded) performs them.  This is
/// what makes protocol runs deterministic and replayable.
#[derive(Debug, Clone)]
pub enum Effect {
    /// Deliver an upcall to the application.
    Deliver(Up),
    /// Multicast `wire` to the group (transport-level membership).
    NetCast { wire: WireFrame },
    /// Send `wire` to the listed endpoints.
    NetSend { dests: Vec<EndpointAddr>, wire: WireFrame },
    /// Register this endpoint as a transport-level receiver of the group.
    NetJoin { group: GroupAddr },
    /// Deregister from the transport-level group.
    NetLeave,
    /// Arm a timer for `layer` with `token`, firing after `delay`.
    SetTimer { layer: usize, token: u64, delay: Duration },
    /// Free-form trace record (TRACE layer, debugging).
    Trace(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    #[test]
    fn stability_matrix_monotone_and_stable() {
        let mut m = StabilityMatrix::new(vec![ep(1), ep(2), ep(3)]);
        m.record(ep(1), ep(1), 5);
        m.record(ep(2), ep(1), 5);
        assert!(!m.is_stable(ep(1), 5)); // ep(3) has not processed it
        m.record(ep(3), ep(1), 7);
        assert!(m.is_stable(ep(1), 5));
        assert_eq!(m.stable_horizon(ep(1)), 5);
        // Monotone: going backwards is ignored.
        m.record(ep(2), ep(1), 1);
        assert_eq!(m.acked(ep(2), ep(1)), 5);
    }

    #[test]
    fn stability_matrix_unknown_members() {
        let m = StabilityMatrix::new(vec![ep(1)]);
        assert_eq!(m.acked(ep(9), ep(1)), 0);
        assert!(!m.is_stable(ep(9), 0));
        assert_eq!(m.stable_horizon(ep(9)), 0);
    }

    #[test]
    fn upcall_kinds_cover_table_2() {
        // The paper's Table 2 lists 14 upcall types; DumpInfo implements the
        // focus/dump reporting channel on top of them.
        let kinds = [
            "MERGE_REQUEST",
            "MERGE_DENIED",
            "FLUSH",
            "FLUSH_OK",
            "VIEW",
            "CAST",
            "SEND",
            "LEAVE",
            "DESTROY",
            "LOST_MESSAGE",
            "STABLE",
            "PROBLEM",
            "SYSTEM_ERROR",
            "EXIT",
        ];
        assert_eq!(kinds.len(), 14);
    }

    #[test]
    fn msg_id_display() {
        let id = MsgId { origin: ep(3), seq: 9 };
        assert_eq!(id.to_string(), "ep:3#9");
    }
}
