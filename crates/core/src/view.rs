//! Group views (§3, §5 of the paper).
//!
//! A *view* is an ordered list of endpoint addresses representing the members
//! of a group, as perceived by one member.  Views are purely local data —
//! Horus allows different endpoints to hold different views of the same group
//! — but a membership layer (MBRSHIP) adds the virtual-synchrony guarantee
//! that members transitioning together between two views agree on both the
//! views and the messages delivered in between.

use crate::addr::{EndpointAddr, GroupAddr, Rank};
use std::fmt;

/// Identifies one installed view of a group.
///
/// View identifiers are totally ordered by `(counter, coordinator)`.  The
/// counter increases by at least one with every installation, so the "oldest
/// view" of the paper's coordinator-election rule is simply the view with the
/// smallest identifier among the candidates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId {
    /// Logical installation counter (the paper's view sequence number).
    pub counter: u64,
    /// The endpoint that installed the view (flush coordinator), breaking
    /// ties between views installed concurrently in different partitions.
    pub coordinator: EndpointAddr,
}

impl ViewId {
    /// The identifier of the initial singleton view created by `join`.
    pub fn initial(owner: EndpointAddr) -> Self {
        ViewId { counter: 0, coordinator: owner }
    }

    /// The identifier a successor view installed by `coordinator` would get.
    pub fn successor(self, coordinator: EndpointAddr) -> Self {
        ViewId { counter: self.counter + 1, coordinator }
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}@{}", self.counter, self.coordinator)
    }
}

impl fmt::Debug for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An ordered list of group members, together with per-member seniority.
///
/// `members` is ordered by *seniority*: the oldest member (the one present
/// since the earliest view) first.  A member's [`Rank`] is its index in that
/// list.  Seniority is what lets the flush protocol elect its coordinator —
/// "usually the oldest surviving member of the oldest view" — without
/// exchanging any messages.
///
/// ```
/// use horus_core::{EndpointAddr, GroupAddr, View};
/// let a = EndpointAddr::new(1);
/// let b = EndpointAddr::new(2);
/// let v = View::initial(GroupAddr::new(7), a).with_joined(&[b]);
/// assert_eq!(v.members(), &[a, b]);
/// assert_eq!(v.rank_of(b).unwrap().0, 1);
/// assert_eq!(v.coordinator_among(v.members()), Some(a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct View {
    group: GroupAddr,
    id: ViewId,
    members: Vec<EndpointAddr>,
    /// For each member, the view counter at which it joined.
    join_epochs: Vec<u64>,
}

impl View {
    /// The singleton view an endpoint installs when it first joins a group.
    pub fn initial(group: GroupAddr, owner: EndpointAddr) -> Self {
        View { group, id: ViewId::initial(owner), members: vec![owner], join_epochs: vec![0] }
    }

    /// Reconstructs a view from its parts (used by the wire codec).
    ///
    /// # Panics
    ///
    /// Panics if `members` and `join_epochs` differ in length, if `members`
    /// is empty, or if members are not in seniority order.
    pub fn from_parts(
        group: GroupAddr,
        id: ViewId,
        members: Vec<EndpointAddr>,
        join_epochs: Vec<u64>,
    ) -> Self {
        assert_eq!(members.len(), join_epochs.len(), "members/join_epochs length mismatch");
        assert!(!members.is_empty(), "a view must contain at least one member");
        for w in 0..members.len().saturating_sub(1) {
            let a = (join_epochs[w], members[w]);
            let b = (join_epochs[w + 1], members[w + 1]);
            assert!(a < b, "view members must be in strict seniority order");
        }
        View { group, id, members, join_epochs }
    }

    /// The group this view belongs to.
    pub fn group(&self) -> GroupAddr {
        self.group
    }

    /// The identifier of this view.
    pub fn id(&self) -> ViewId {
        self.id
    }

    /// The ordered member list (most senior first).
    pub fn members(&self) -> &[EndpointAddr] {
        &self.members
    }

    /// Per-member join epochs, parallel to [`View::members`].
    pub fn join_epochs(&self) -> &[u64] {
        &self.join_epochs
    }

    /// Number of members in the view.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// A view always has at least one member, so this is always `false`;
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `who` is a member of this view.
    pub fn contains(&self, who: EndpointAddr) -> bool {
        self.members.contains(&who)
    }

    /// The rank (seniority index) of `who`, if a member.
    pub fn rank_of(&self, who: EndpointAddr) -> Option<Rank> {
        self.members.iter().position(|&m| m == who).map(Rank)
    }

    /// The seniority key of a member: `(join_epoch, address)`.
    fn seniority(&self, who: EndpointAddr) -> Option<(u64, EndpointAddr)> {
        self.rank_of(who).map(|r| (self.join_epochs[r.0], who))
    }

    /// Elects the flush coordinator among `candidates` (the surviving
    /// members): the oldest member of the oldest view, ties broken by
    /// address.  Returns `None` when no candidate is a member.
    pub fn coordinator_among(&self, candidates: &[EndpointAddr]) -> Option<EndpointAddr> {
        candidates.iter().filter_map(|&c| self.seniority(c)).min().map(|(_, who)| who)
    }

    /// Derives the successor view installed by `coordinator`, removing
    /// `failed` members and appending `joined` newcomers (in address order,
    /// with the new view's counter as their join epoch).
    ///
    /// # Panics
    ///
    /// Panics if the resulting member list would be empty.
    pub fn successor(
        &self,
        coordinator: EndpointAddr,
        failed: &[EndpointAddr],
        joined: &[EndpointAddr],
    ) -> View {
        let id = self.id.successor(coordinator);
        let mut members = Vec::with_capacity(self.members.len() + joined.len());
        let mut join_epochs = Vec::with_capacity(self.members.len() + joined.len());
        for (i, &m) in self.members.iter().enumerate() {
            if !failed.contains(&m) {
                members.push(m);
                join_epochs.push(self.join_epochs[i]);
            }
        }
        let mut newcomers: Vec<EndpointAddr> = joined
            .iter()
            .copied()
            .filter(|j| !members.contains(j) && !failed.contains(j))
            .collect();
        newcomers.sort();
        newcomers.dedup();
        for j in newcomers {
            members.push(j);
            join_epochs.push(id.counter);
        }
        assert!(!members.is_empty(), "successor view would be empty");
        View { group: self.group, id, members, join_epochs }
    }

    /// Convenience builder: the successor view with `joined` newcomers and no
    /// failures, installed by the current most-senior member.
    pub fn with_joined(&self, joined: &[EndpointAddr]) -> View {
        let coord = self.members[0];
        self.successor(coord, &[], joined)
    }

    /// Merges this view with another view of the same group: the union of the
    /// members, seniority preserved (members of the *older* view win ties).
    /// Used by the MERGE/MBRSHIP layers when partitions heal.
    pub fn merged(&self, other: &View, coordinator: EndpointAddr) -> View {
        debug_assert_eq!(self.group, other.group);
        let id = ViewId { counter: self.id.counter.max(other.id.counter) + 1, coordinator };
        let mut pairs: Vec<(u64, EndpointAddr)> = Vec::new();
        for (i, &m) in self.members.iter().enumerate() {
            pairs.push((self.join_epochs[i], m));
        }
        for (i, &m) in other.members.iter().enumerate() {
            match pairs.iter_mut().find(|(_, who)| *who == m) {
                Some(existing) => existing.0 = existing.0.min(other.join_epochs[i]),
                None => pairs.push((other.join_epochs[i], m)),
            }
        }
        pairs.sort();
        let (join_epochs, members): (Vec<u64>, Vec<EndpointAddr>) = pairs.into_iter().unzip();
        View { group: self.group, id, members, join_epochs }
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} ", self.group, self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn three() -> View {
        View::initial(GroupAddr::new(1), ep(10)).with_joined(&[ep(20), ep(30)])
    }

    #[test]
    fn initial_view_is_singleton() {
        let v = View::initial(GroupAddr::new(1), ep(5));
        assert_eq!(v.len(), 1);
        assert_eq!(v.rank_of(ep(5)), Some(Rank(0)));
        assert_eq!(v.id().counter, 0);
    }

    #[test]
    fn successor_removes_failed_and_appends_joined() {
        let v = three();
        let v2 = v.successor(ep(10), &[ep(20)], &[ep(40)]);
        assert_eq!(v2.members(), &[ep(10), ep(30), ep(40)]);
        assert_eq!(v2.id().counter, v.id().counter + 1);
        // The newcomer's join epoch is the new view's counter.
        assert_eq!(v2.join_epochs()[2], v2.id().counter);
    }

    #[test]
    fn coordinator_is_oldest_survivor() {
        let v = three();
        // ep(10) is most senior; if it fails, ep(20) becomes coordinator.
        assert_eq!(v.coordinator_among(&[ep(20), ep(30)]), Some(ep(20)));
        assert_eq!(v.coordinator_among(v.members()), Some(ep(10)));
        assert_eq!(v.coordinator_among(&[ep(99)]), None);
    }

    #[test]
    fn seniority_survives_successions() {
        let v = three();
        // Later joiner has strictly larger seniority key.
        let v2 = v.successor(ep(10), &[], &[ep(5)]);
        // ep(5) has a small address but joined late: must rank last.
        assert_eq!(v2.members().last(), Some(&ep(5)));
        assert_eq!(v2.coordinator_among(v2.members()), Some(ep(10)));
    }

    #[test]
    fn merged_takes_union_and_orders_by_seniority() {
        let g = GroupAddr::new(1);
        let a = View::initial(g, ep(1)).with_joined(&[ep(2)]);
        let b = View::initial(g, ep(9)).with_joined(&[ep(8)]);
        let m = a.merged(&b, ep(1));
        assert_eq!(m.len(), 4);
        assert!(m.contains(ep(1)) && m.contains(ep(2)) && m.contains(ep(8)) && m.contains(ep(9)));
        assert!(m.id().counter > a.id().counter && m.id().counter > b.id().counter);
        // Epoch-0 members (ep1, ep9) come before epoch-1 members (ep2, ep8).
        assert_eq!(m.members()[..2], [ep(1), ep(9)]);
    }

    #[test]
    fn duplicate_join_is_ignored() {
        let v = three();
        let v2 = v.successor(ep(10), &[], &[ep(20), ep(20)]);
        assert_eq!(v2.len(), 3);
    }

    #[test]
    fn view_ids_totally_ordered() {
        let a = ViewId { counter: 1, coordinator: ep(4) };
        let b = ViewId { counter: 1, coordinator: ep(5) };
        let c = ViewId { counter: 2, coordinator: ep(1) };
        assert!(a < b && b < c);
    }

    #[test]
    #[should_panic(expected = "seniority order")]
    fn from_parts_validates_order() {
        let _ = View::from_parts(
            GroupAddr::new(1),
            ViewId::initial(ep(1)),
            vec![ep(2), ep(1)],
            vec![0, 0],
        );
    }
}
