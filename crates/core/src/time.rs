//! Virtual time for the deterministic event-queue execution model.
//!
//! Protocol layers never read a wall clock: they see [`SimTime`] through
//! their [`crate::layer::LayerCtx`] and request wake-ups with relative
//! [`std::time::Duration`]s.  Under the discrete-event simulator the clock is
//! virtual; under the threaded runtime it is mapped to the monotonic OS
//! clock.  Keeping protocols clock-agnostic is what makes failure scenarios
//! like Figure 2 of the paper exactly reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, with nanosecond resolution.
///
/// ```
/// use horus_core::SimTime;
/// use std::time::Duration;
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a nanosecond count.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from a microsecond count.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from a millisecond count.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Returns the time as nanoseconds since the origin.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time as (truncated) microseconds since the origin.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time as (truncated) milliseconds since the origin.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating difference between two times.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0 / 1_000;
        write!(f, "t+{}.{:03}ms", us / 1_000, us % 1_000)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(2) + Duration::from_micros(500);
        assert_eq!(t.as_micros(), 2_500);
        assert_eq!(t - SimTime::from_millis(2), Duration::from_micros(500));
    }

    #[test]
    fn display_is_millis() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "t+1.500ms");
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }
}
