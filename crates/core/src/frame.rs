//! Scatter-gather wire frames: the transport-level unit of transmission.
//!
//! A [`WireFrame`] is the encoded form of a message as it crosses the
//! stack/transport boundary, kept as two segments instead of one contiguous
//! buffer:
//!
//! * `head` — the frame envelope (`[u16 fingerprint][u32 checksum]
//!   [u16 hdr_len][header area]`), built once per transmission;
//! * `body` — the application payload, carried as the *same* [`Bytes`] the
//!   application handed to `cast`/`send`.
//!
//! This is the iovec discipline of the paper's message design ("no copying
//! of the data that the message will actually transport"): the payload is
//! reference-counted from the application downcall to the transport, never
//! memcpy'd into a frame buffer.  A real UDP substrate would hand the two
//! segments to `sendmsg(2)` as separate iovecs; the in-process substrates
//! here pass the `WireFrame` through whole.

use bytes::Bytes;

/// Bytes of envelope before the header area: fingerprint (2), checksum (4),
/// header length (2).
pub const ENVELOPE_BYTES: usize = 8;

/// Streaming word-wise multiply-xorshift hash folded to 32 bits — the frame
/// checksum, computed over `[u16 hdr_len][header area][body]` without
/// requiring those segments to be contiguous.
///
/// Input is consumed eight bytes at a time (a carry buffer bridges segment
/// boundaries, so the digest is independent of how the frame is split into
/// `update` calls); the tail and total length are folded in at `finish`.
/// Word-at-a-time mixing keeps the checksum off the hot path's critical
/// cost: byte-serial FNV was the single largest per-byte cost of a frame
/// encode+decode round trip.
#[derive(Debug, Clone)]
pub struct FrameChecksum {
    h: u64,
    /// Little-endian carry of the last `npend` bytes (< 8) seen so far.
    pending: u64,
    npend: u32,
    len: u64,
}

const CK_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const CK_MULT: u64 = 0x2545_f491_4f6c_dd1d;

#[inline]
fn ck_mix(h: u64, w: u64) -> u64 {
    let x = (h ^ w).wrapping_mul(CK_MULT);
    x ^ (x >> 29)
}

impl FrameChecksum {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        FrameChecksum { h: CK_SEED, pending: 0, npend: 0, len: 0 }
    }

    /// Feeds one segment.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.npend > 0 {
            while self.npend < 8 {
                match data.split_first() {
                    Some((&b, rest)) => {
                        self.pending |= (b as u64) << (8 * self.npend);
                        self.npend += 1;
                        data = rest;
                    }
                    None => return,
                }
            }
            self.h = ck_mix(self.h, self.pending);
            self.pending = 0;
            self.npend = 0;
        }
        let mut words = data.chunks_exact(8);
        for w in &mut words {
            self.h = ck_mix(self.h, u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
        }
        for (i, &b) in words.remainder().iter().enumerate() {
            self.pending |= (b as u64) << (8 * i);
        }
        self.npend = words.remainder().len() as u32;
    }

    /// The folded 32-bit digest.
    pub fn finish(&self) -> u32 {
        let mut h = self.h;
        if self.npend > 0 {
            // npend < 8, so the carry's top byte is free to tag its width.
            h = ck_mix(h, self.pending | ((self.npend as u64) << 56));
        }
        h = ck_mix(h, self.len);
        (h ^ (h >> 32)) as u32
    }
}

impl Default for FrameChecksum {
    fn default() -> Self {
        FrameChecksum::new()
    }
}

/// A wire frame split at the header/body boundary (scatter-gather framing).
///
/// The byte sequence `head ++ body` is the frame as a datagram network would
/// carry it; [`WireFrame::to_bytes`] produces that contiguous form and
/// [`WireFrame::from_bytes`] splits it back without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    head: Bytes,
    body: Bytes,
}

impl WireFrame {
    /// Builds a frame from its parts, computing the checksum over the
    /// scattered segments so neither the header nor the body is ever
    /// concatenated.  `body` is attached as-is: the caller's `Bytes` and the
    /// frame's share storage.
    pub fn build(fingerprint: u16, hdr: &[u8], body: Bytes) -> WireFrame {
        let hdr_len = (hdr.len() as u16).to_le_bytes();
        let mut ck = FrameChecksum::new();
        ck.update(&hdr_len);
        ck.update(hdr);
        ck.update(&body);
        let mut head = Vec::with_capacity(ENVELOPE_BYTES + hdr.len());
        head.extend_from_slice(&fingerprint.to_le_bytes());
        head.extend_from_slice(&ck.finish().to_le_bytes());
        head.extend_from_slice(&hdr_len);
        head.extend_from_slice(hdr);
        WireFrame { head: Bytes::from(head), body }
    }

    /// Wraps an arbitrary byte string as a frame with an empty head.  For
    /// transports and tests that move opaque payloads; such a frame is
    /// re-split at decode time.
    pub fn raw(bytes: impl Into<Bytes>) -> WireFrame {
        WireFrame { head: Bytes::new(), body: bytes.into() }
    }

    /// Splits a contiguous frame at its header/body boundary without
    /// copying.  If the envelope or header length does not parse, the whole
    /// buffer becomes the head (decoding will then reject it).
    pub fn from_bytes(bytes: Bytes) -> WireFrame {
        if bytes.len() >= ENVELOPE_BYTES {
            let hdr_len = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
            if bytes.len() >= ENVELOPE_BYTES + hdr_len {
                let body = bytes.slice(ENVELOPE_BYTES + hdr_len..);
                let head = bytes.slice(..ENVELOPE_BYTES + hdr_len);
                return WireFrame { head, body };
            }
        }
        WireFrame { head: bytes, body: Bytes::new() }
    }

    /// The envelope + header segment.
    pub fn head(&self) -> &Bytes {
        &self.head
    }

    /// The payload segment.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Total frame size on the wire (both segments).
    pub fn len(&self) -> usize {
        self.head.len() + self.body.len()
    }

    /// Whether the frame carries no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty() && self.body.is_empty()
    }

    /// The contiguous form `head ++ body`.  Zero-copy when either segment is
    /// empty; otherwise this is the one place a frame is ever flattened
    /// (needed only by byte-twiddling fault injection and raw transports).
    pub fn to_bytes(&self) -> Bytes {
        if self.head.is_empty() {
            return self.body.clone();
        }
        if self.body.is_empty() {
            return self.head.clone();
        }
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(&self.head);
        v.extend_from_slice(&self.body);
        Bytes::from(v)
    }

    /// The frame re-split at its canonical header/body boundary:
    /// `(head, body)` where `head` is exactly the envelope plus the declared
    /// header area.  Cheap (refcount bumps) when the frame is already
    /// canonically split — the case for every frame built by
    /// [`WireFrame::build`].  Returns `None` when the frame is too short for
    /// its own envelope or header-length claim.
    pub fn canonical_parts(&self) -> Option<(Bytes, Bytes)> {
        if self.head.len() >= ENVELOPE_BYTES {
            let hdr_len = u16::from_le_bytes([self.head[6], self.head[7]]) as usize;
            if self.head.len() == ENVELOPE_BYTES + hdr_len {
                return Some((self.head.clone(), self.body.clone()));
            }
        }
        let flat = self.to_bytes();
        if flat.len() < ENVELOPE_BYTES {
            return None;
        }
        let hdr_len = u16::from_le_bytes([flat[6], flat[7]]) as usize;
        if flat.len() < ENVELOPE_BYTES + hdr_len {
            return None;
        }
        Some((flat.slice(..ENVELOPE_BYTES + hdr_len), flat.slice(ENVELOPE_BYTES + hdr_len..)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_attaches_body_without_copying() {
        let body = Bytes::from(vec![9u8; 512]);
        let f = WireFrame::build(0xABCD, &[1, 2, 3], body.clone());
        assert_eq!(f.body().as_ptr(), body.as_ptr());
        assert_eq!(f.len(), ENVELOPE_BYTES + 3 + 512);
    }

    #[test]
    fn roundtrips_through_contiguous_form() {
        let f = WireFrame::build(7, &[5, 6], Bytes::from_static(b"payload"));
        let flat = f.to_bytes();
        let g = WireFrame::from_bytes(flat);
        assert_eq!(f, g);
        // The re-split is canonical and zero-copy.
        let (head, body) = g.canonical_parts().unwrap();
        assert_eq!(head, *f.head());
        assert_eq!(&body[..], b"payload");
    }

    #[test]
    fn checksum_matches_contiguous_computation() {
        let mut ck = FrameChecksum::new();
        ck.update(b"hello ");
        ck.update(b"world");
        let mut whole = FrameChecksum::new();
        whole.update(b"hello world");
        assert_eq!(ck.finish(), whole.finish());
    }

    #[test]
    fn raw_and_short_frames_have_no_canonical_parts() {
        assert!(WireFrame::raw(&b"abc"[..]).canonical_parts().is_none());
        // A frame whose header-length claim overruns the buffer.
        let mut v = vec![0u8; ENVELOPE_BYTES];
        v[6] = 200; // hdr_len = 200 but no header bytes follow
        assert!(WireFrame::from_bytes(Bytes::from(v)).canonical_parts().is_none());
    }

    #[test]
    fn raw_frame_flattens_without_copying() {
        let payload = Bytes::from(vec![1u8; 64]);
        let f = WireFrame::raw(payload.clone());
        assert_eq!(f.to_bytes().as_ptr(), payload.as_ptr());
    }
}
