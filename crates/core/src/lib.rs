//! # horus-core
//!
//! The object model and protocol-stack runtime of the Horus protocol
//! composition framework, after *"A Framework for Protocol Composition in
//! Horus"* (van Renesse, Birman, Friedman, Hayden, Karr — PODC 1995).
//!
//! Horus treats a protocol as an abstract data type: a module with a
//! standardized top and bottom interface (the *Horus Common Protocol
//! Interface*, HCPI) that can be stacked on other such modules at run time,
//! "like LEGO blocks".  This crate provides:
//!
//! * the four Horus object classes of §3 — **endpoints** ([`addr`]),
//!   **groups**/**views** ([`view`]), **messages** with push/pop header
//!   stacks ([`message`]), and the event machinery that replaces explicit
//!   threads in the event-queue execution model ([`event`], [`stack`]);
//! * the HCPI itself — the downcalls of Table 1 ([`event::Down`]) and the
//!   upcalls of Table 2 ([`event::Up`]);
//! * the [`layer::Layer`] trait every protocol module implements, and
//!   [`stack::Stack`], the single-scheduler-per-stack runtime of §3/§10;
//! * both message-header layouts discussed in §10: the word-aligned
//!   per-layer push/pop format used by the 1995 production system, and the
//!   pre-computed bit-compacted single header the paper proposes as its
//!   replacement ([`message::HeaderMode`]).
//!
//! Protocol layers themselves live in the `horus-layers` crate; network
//! substrates in `horus-net`; the property algebra of Tables 3–4 in
//! `horus-props`; and the deterministic scenario harness in `horus-sim`.
//!
//! ## Example
//!
//! ```
//! use horus_core::prelude::*;
//!
//! // A stack of two pass-through layers; see `horus-layers` for real ones.
//! #[derive(Debug, Default)]
//! struct Nop;
//! impl Layer for Nop {
//!     fn name(&self) -> &'static str { "NOP" }
//! }
//!
//! let mut stack = StackBuilder::new(EndpointAddr::new(1))
//!     .push(Box::new(Nop))
//!     .push(Box::new(Nop))
//!     .build()?;
//! let msg = stack.new_message(&b"hello"[..]);
//! let effects = stack.handle(StackInput::FromApp(Down::Cast(msg)));
//! // With only pass-through layers the cast falls off the bottom of the
//! // stack and becomes a network multicast effect.
//! assert!(matches!(effects[0], Effect::NetCast { .. }));
//! # Ok::<(), horus_core::HorusError>(())
//! ```

pub mod addr;
pub mod digest;
pub mod error;
pub mod event;
pub mod frame;
pub mod layer;
pub mod message;
pub mod stack;
pub mod time;
pub mod trace;
pub mod view;
pub mod wire;

pub use addr::{EndpointAddr, GroupAddr, Rank};
pub use digest::StateDigest;
pub use error::HorusError;
pub use event::{Down, Effect, MergeId, MsgId, StabilityMatrix, StackInput, Up};
pub use frame::WireFrame;
pub use layer::{Layer, LayerCtx};
pub use message::{FieldSpec, HeaderLayout, HeaderMode, Message};
pub use stack::{EffectSink, LayerTraffic, Stack, StackBuilder, StackConfig, StackStats};
pub use time::SimTime;
pub use trace::{
    DropReason, FilterSink, KindMask, NullSink, SamplingSink, TraceEvent, TraceKind, TraceSink,
};
pub use view::{View, ViewId};

/// Convenient glob-import surface for applications and layer authors.
pub mod prelude {
    pub use crate::addr::{EndpointAddr, GroupAddr, Rank};
    pub use crate::error::HorusError;
    pub use crate::event::{Down, Effect, MergeId, MsgId, StabilityMatrix, StackInput, Up};
    pub use crate::frame::WireFrame;
    pub use crate::layer::{Layer, LayerCtx};
    pub use crate::message::{FieldSpec, HeaderLayout, HeaderMode, Message};
    pub use crate::stack::{
        EffectSink, LayerTraffic, Stack, StackBuilder, StackConfig, StackStats,
    };
    pub use crate::time::SimTime;
    pub use crate::trace::{
        DropReason, FilterSink, KindMask, NullSink, SamplingSink, TraceEvent, TraceKind, TraceSink,
    };
    pub use crate::view::{View, ViewId};
}
