//! The protocol-layer abstraction: protocols as abstract data types (§1).
//!
//! Every Horus protocol module implements [`Layer`].  A layer reacts to
//! downcalls arriving from above, upcalls arriving from below, and timer
//! expirations; it responds by emitting further events through its
//! [`LayerCtx`].  Default implementations pass events straight through, so a
//! minimal layer only overrides what it modifies — the paper's observation
//! that "the cost of a layer can be as low as just a few instructions".
//!
//! Layers own their state but perform no I/O and read no clocks: everything
//! reaches them as events, which is what makes stacks executable both under
//! the deterministic simulator and under the threaded runtime.

use crate::addr::EndpointAddr;
use crate::event::{Down, Up};
use crate::message::{FieldSpec, HeaderLayout, Message};
use crate::stack::StackStats;
use crate::time::SimTime;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::RngCore;
use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

/// What a layer emitted during one dispatch; translated by the stack runtime
/// into queue entries or executor effects.
#[derive(Debug)]
pub(crate) enum Emit {
    Down(Down),
    Up(Up),
    Timer { token: u64, delay: Duration },
    Trace(String),
}

/// The execution context handed to a layer for the duration of one event
/// dispatch.
///
/// All interaction with the rest of the stack goes through this object:
/// emitting events up or down, arming timers, creating control messages, and
/// reading/writing this layer's own header fields on a message.
pub struct LayerCtx<'a> {
    pub(crate) layer: usize,
    pub(crate) now: SimTime,
    pub(crate) local: EndpointAddr,
    pub(crate) layout: &'a Arc<HeaderLayout>,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) emitted: &'a mut Vec<Emit>,
    pub(crate) stats: &'a mut StackStats,
}

impl<'a> LayerCtx<'a> {
    /// Passes an event toward the network (to the layer below, or off the
    /// bottom of the stack).
    pub fn down(&mut self, ev: Down) {
        self.emitted.push(Emit::Down(ev));
    }

    /// Passes an event toward the application (to the layer above, or out of
    /// the top of the stack).
    pub fn up(&mut self, ev: Up) {
        self.emitted.push(Emit::Up(ev));
    }

    /// Arms a timer; [`Layer::on_timer`] fires with the same token after
    /// `delay`.  Timers are one-shot; periodic layers re-arm themselves.
    pub fn set_timer(&mut self, delay: Duration, token: u64) {
        self.emitted.push(Emit::Timer { token, delay });
    }

    /// Emits a free-form trace record (collected by the executor).
    pub fn trace(&mut self, text: impl Into<String>) {
        self.emitted.push(Emit::Trace(text.into()));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The address of the endpoint owning this stack.
    pub fn local_addr(&self) -> EndpointAddr {
        self.local
    }

    /// This layer's index in the stack (0 = top). Useful in dumps.
    pub fn layer_index(&self) -> usize {
        self.layer
    }

    /// Deterministic per-stack randomness (timer jitter, probe selection).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// A deterministic random `u64` (shorthand over [`LayerCtx::rng`]).
    pub fn random_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Creates a fresh message (for protocol control traffic) against this
    /// stack's header layout.
    pub fn new_message(&self, body: impl Into<Bytes>) -> Message {
        Message::new(self.layout.clone(), body)
    }

    /// Begins this layer's header on a message travelling down.
    pub fn stamp(&self, msg: &mut Message) {
        msg.push_header(self.layer);
    }

    /// Opens (pops) this layer's header on a message travelling up.
    ///
    /// # Errors
    ///
    /// Fails when the message's top header record belongs to another layer —
    /// i.e. the message was not stamped by this layer's peer.
    pub fn open(&self, msg: &mut Message) -> Result<(), crate::error::HorusError> {
        msg.pop_header(self.layer)
    }

    /// Whether the message's current top header belongs to this layer.
    pub fn is_mine(&self, msg: &Message) -> bool {
        msg.has_header(self.layer)
    }

    /// Writes field `field` of this layer's header.
    pub fn set(&self, msg: &mut Message, field: usize, val: u64) {
        msg.set_field(self.layer, field, val);
    }

    /// Reads field `field` of this layer's header.
    pub fn get(&self, msg: &Message, field: usize) -> u64 {
        msg.field(self.layer, field)
    }

    /// Records that a packing layer coalesced `msgs` messages into one wire
    /// frame, saving `bytes_saved` bytes of per-frame envelope overhead.
    pub fn note_packed(&mut self, msgs: u64, bytes_saved: u64) {
        self.stats.frames_packed += 1;
        self.stats.msgs_packed += msgs;
        self.stats.bytes_saved_packing += bytes_saved;
    }

    /// Records `n` payload copies.  Layers that must materialize a new body
    /// (fragment reassembly, packing, transforms) report here so the
    /// zero-copy discipline of the hot path stays observable.
    pub fn note_payload_copy(&mut self, n: u64) {
        self.stats.payload_copies += n;
    }
}

/// A protocol layer: the abstract data type of the paper's §1.
///
/// Implementations must be `Send + Sync` so stacks can run under the
/// threaded executor and so snapshotted layer state can be shared
/// copy-on-write between explorer workers (layers hold no interior
/// mutability: all mutation flows through `&mut self` dispatch).  The
/// default method bodies make a new layer a pure pass-through; override only
/// the events the protocol participates in.
///
/// ```
/// use horus_core::prelude::*;
///
/// /// Counts messages travelling down the stack.
/// #[derive(Debug, Default)]
/// struct Counter { down: u64 }
///
/// impl Layer for Counter {
///     fn name(&self) -> &'static str { "COUNTER" }
///     fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
///         if matches!(ev, Down::Cast(_)) { self.down += 1; }
///         ctx.down(ev);
///     }
///     fn dump(&self) -> String { format!("down={}", self.down) }
/// }
/// ```
pub trait Layer: Send + Sync {
    /// The layer's name, e.g. `"NAK"`. Used in stack descriptions, dumps,
    /// and the stack fingerprint.
    fn name(&self) -> &'static str;

    /// The fixed-size header fields this layer stamps on messages, used to
    /// pre-compute the stack's header layout (§10 problem 3).
    fn header_fields(&self) -> &'static [FieldSpec] {
        &[]
    }

    /// Called once when the stack starts, before any other event.  Layers
    /// arm their periodic timers here.
    fn on_init(&mut self, _ctx: &mut LayerCtx<'_>) {}

    /// A downcall arrived from the layer above (or the application).
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        ctx.down(ev);
    }

    /// An upcall arrived from the layer below (or the network).
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        ctx.up(ev);
    }

    /// A timer armed by this layer expired.
    fn on_timer(&mut self, _token: u64, _ctx: &mut LayerCtx<'_>) {}

    /// A *passive* layer passes every event through unmodified and sets no
    /// timers; the stack runtime may then skip it entirely (§10 problem 1's
    /// "skipping layers that take no action on the way down or up").
    fn is_passive(&self) -> bool {
        false
    }

    /// One-line state report for the `dump`/`focus` debugging interface.
    fn dump(&self) -> String {
        String::new()
    }

    /// Feeds this layer's delivery-relevant state into a model-checking
    /// state digest (visited-state pruning in `horus-check`).
    ///
    /// The default digests the [`Layer::dump`] report, which every stateful
    /// layer in this repository already keeps current.  Override when the
    /// dump omits state that changes future behaviour — an
    /// under-discriminating digest makes the explorer merge states it
    /// should distinguish and skip schedules it should search.
    fn digest_state(&self, d: &mut crate::digest::StateDigest) {
        d.write_str(&self.dump());
    }

    /// Optional downcast hook so tests and tools can reach layer-specific
    /// state through [`crate::stack::Stack::focus_as`].
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }

    /// How many units of *pending work* this layer is still holding: state
    /// that obliges it to act again before the protocol can be considered
    /// quiescent — unacknowledged retransmit-queue entries, buffered
    /// out-of-order gaps, an unflushed view change, a parked total-order
    /// token.  `0` means "nothing owed".
    ///
    /// Liveness monitors (`horus-sim`'s progress watchdog, `horus-check`'s
    /// quiescence oracle) sample this after faults heal: pending work that
    /// never drains is a wedge.  The unit is deliberately coarse — monitors
    /// only compare against zero and watch the trend — so layers just count
    /// queue entries.  Passive layers owe nothing by construction.
    fn pending_work(&self) -> u64 {
        0
    }

    /// Duplicates this layer's full state, if the layer supports it.
    ///
    /// Snapshot support is *opt-in*: the default `None` makes
    /// [`crate::stack::Stack::try_clone`] (and therefore world snapshotting
    /// in the simulator) fail gracefully, and callers fall back to
    /// re-execution.  A layer that opts in must clone **everything** that
    /// affects future behaviour — the model checker resumes exploration
    /// from cloned worlds, so a shallow or partial clone silently corrupts
    /// the search.  For layers whose state is plain data this is just
    /// `Some(Box::new(self.clone()))`.
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        None
    }

    /// Whether [`Layer::clone_box`] returns `Some` — i.e. whether this
    /// layer's state can be duplicated for snapshotting.
    ///
    /// Copy-on-write snapshots ([`crate::stack::Stack::clone_cow`]) need to
    /// know *up front* that every layer can be materialized later without
    /// paying for a probe clone, so implementations that override
    /// `clone_box` must override this to `true` as well.  The two must
    /// agree: a layer that advertises snapshot support but returns `None`
    /// from `clone_box` panics at the first post-snapshot mutation.
    fn supports_snapshot(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::HeaderMode;
    use rand::SeedableRng;

    #[derive(Debug, Default)]
    struct Nop;
    impl Layer for Nop {
        fn name(&self) -> &'static str {
            "NOP"
        }
        fn is_passive(&self) -> bool {
            true
        }
    }

    #[test]
    fn default_layer_passes_through() {
        let layout = Arc::new(HeaderLayout::build(&[("NOP", &[])], HeaderMode::Compact).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let mut emitted = Vec::new();
        let mut stats = StackStats::default();
        let mut ctx = LayerCtx {
            layer: 0,
            now: SimTime::ZERO,
            local: EndpointAddr::new(1),
            layout: &layout,
            rng: &mut rng,
            emitted: &mut emitted,
            stats: &mut stats,
        };
        let mut l = Nop;
        l.on_down(Down::Leave, &mut ctx);
        l.on_up(Up::Exit, &mut ctx);
        assert!(matches!(emitted[0], Emit::Down(Down::Leave)));
        assert!(matches!(emitted[1], Emit::Up(Up::Exit)));
        assert!(l.is_passive());
        assert!(l.as_any().is_none());
    }

    #[test]
    fn ctx_creates_messages_against_layout() {
        let layout = Arc::new(HeaderLayout::build(&[("NOP", &[])], HeaderMode::Compact).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let mut emitted = Vec::new();
        let mut stats = StackStats::default();
        let ctx = LayerCtx {
            layer: 0,
            now: SimTime::ZERO,
            local: EndpointAddr::new(1),
            layout: &layout,
            rng: &mut rng,
            emitted: &mut emitted,
            stats: &mut stats,
        };
        let m = ctx.new_message(&b"x"[..]);
        assert_eq!(m.body(), &b"x"[..]);
    }
}
