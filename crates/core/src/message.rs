//! The Horus message object (§3) and the two header layouts of §10.
//!
//! A message travels *down* a protocol stack while being sent — each layer
//! pushing a header — and *up* while being delivered — each layer popping its
//! header.  The paper identifies the 1995 layout (each layer pushes its own
//! word-aligned header) as a source of overhead, and proposes pre-computing,
//! per stack, "a single header in which the necessary fields are compacted",
//! specified in bits.  Both layouts are implemented here behind one typed
//! field API, so every protocol layer is written once and the layout is a
//! run-time choice ([`HeaderMode`]) — exactly the ablation benchmarked in
//! `bench/benches/header_overhead.rs`.
//!
//! Layers declare fixed-size header *fields* ([`FieldSpec`]); variable-size
//! control data travels in message bodies (see [`crate::wire`]).  The body is
//! a [`bytes::Bytes`], so passing a message through a stack never copies the
//! payload — the paper's "no copying of the data that the message will
//! actually transport".

use crate::addr::EndpointAddr;
use crate::error::HorusError;
use crate::event::MsgId;
use bytes::Bytes;
use std::fmt;
use std::sync::Arc;

/// Description of one fixed-size header field, sized in bits (1..=64).
///
/// This mirrors the paper's proposal that "a protocol will specify, instead
/// of the layout of their header, the fields that it needs (in terms of size
/// and alignment, both specified in bits)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name, for dumps and diagnostics.
    pub name: &'static str,
    /// Width in bits; must be in `1..=64`.
    pub bits: u32,
}

impl FieldSpec {
    /// Shorthand constructor.
    pub const fn new(name: &'static str, bits: u32) -> Self {
        FieldSpec { name, bits }
    }

    /// Bytes needed to store this field byte-aligned (aligned layout).
    pub fn aligned_bytes(&self) -> usize {
        self.bits.div_ceil(8) as usize
    }
}

/// Which of the two §10 header layouts a stack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeaderMode {
    /// The 1995 production layout: every layer pushes its own header record,
    /// padded to a 4-byte word boundary, preceded by a 4-byte record header.
    /// Push and pop are real operations with per-layer cost.
    Aligned,
    /// The proposed optimization: a single pre-computed header with all
    /// layers' fields bit-compacted.  Push and pop are no-ops; fields are
    /// written and read in place.
    #[default]
    Compact,
}

/// Per-layer slot in a [`HeaderLayout`].
#[derive(Debug, Clone)]
struct LayerSlot {
    layer_name: &'static str,
    fields: Vec<FieldSpec>,
    /// Compact layout: absolute bit offset of each field.
    bit_offsets: Vec<usize>,
    /// Aligned layout: byte offset of each field *within this layer's
    /// record* (after the 4-byte record header).
    rec_offsets: Vec<usize>,
    /// Aligned layout: payload bytes of the record (unpadded).
    rec_bytes: usize,
}

/// The pre-computed header layout of one stack composition.
///
/// Built once when a stack is composed (`StackBuilder::build`), shared by all
/// messages of that stack.  Layer index 0 is the **top** layer.
#[derive(Debug, Clone)]
pub struct HeaderLayout {
    slots: Vec<LayerSlot>,
    total_bits: usize,
    mode: HeaderMode,
}

impl HeaderLayout {
    /// Builds a layout from each layer's field list, top layer first.
    ///
    /// # Errors
    ///
    /// Fails if any field is wider than 64 bits or zero bits wide.
    pub fn build(
        layers: &[(&'static str, &[FieldSpec])],
        mode: HeaderMode,
    ) -> Result<Self, HorusError> {
        let mut slots = Vec::with_capacity(layers.len());
        let mut bit_cursor = 0usize;
        for &(layer_name, fields) in layers {
            let mut bit_offsets = Vec::with_capacity(fields.len());
            let mut rec_offsets = Vec::with_capacity(fields.len());
            let mut rec_cursor = 0usize;
            for f in fields {
                if f.bits == 0 || f.bits > 64 {
                    return Err(HorusError::BadStack(format!(
                        "field {}/{} has invalid width {} bits",
                        layer_name, f.name, f.bits
                    )));
                }
                bit_offsets.push(bit_cursor);
                bit_cursor += f.bits as usize;
                rec_offsets.push(rec_cursor);
                rec_cursor += f.aligned_bytes();
            }
            slots.push(LayerSlot {
                layer_name,
                fields: fields.to_vec(),
                bit_offsets,
                rec_offsets,
                rec_bytes: rec_cursor,
            });
        }
        Ok(HeaderLayout { slots, total_bits: bit_cursor, mode })
    }

    /// The header layout mode.
    pub fn mode(&self) -> HeaderMode {
        self.mode
    }

    /// Number of layers in the layout.
    pub fn layers(&self) -> usize {
        self.slots.len()
    }

    /// Total compacted header size in bytes (compact mode).
    pub fn compact_bytes(&self) -> usize {
        self.total_bits.div_ceil(8)
    }

    /// Size in bytes of one layer's aligned record, including the 4-byte
    /// record header and word padding.
    pub fn aligned_record_bytes(&self, layer: usize) -> usize {
        4 + self.slots[layer].rec_bytes.div_ceil(4) * 4
    }

    /// Worst-case total aligned header size (every layer pushes).
    pub fn aligned_bytes_all(&self) -> usize {
        (0..self.slots.len()).map(|i| self.aligned_record_bytes(i)).sum()
    }

    /// The field specs of one layer.
    pub fn fields_of(&self, layer: usize) -> &[FieldSpec] {
        &self.slots[layer].fields
    }

    /// The name of the layer occupying a slot.
    pub fn layer_name(&self, layer: usize) -> &'static str {
        self.slots[layer].layer_name
    }
}

/// Non-wire annotations layers attach to a message during delivery.
///
/// These model per-message state the 1995 system kept in its message object
/// (source endpoint, stability identifier, ordering position) without paying
/// wire bytes for information that is local to the receiving stack.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MessageMeta {
    /// The sending endpoint, filled in by the COM layer on receipt.
    pub src: Option<EndpointAddr>,
    /// Stability identifier assigned by a STABLE/PINWHEEL layer, for use
    /// with the `ack`/`stable` downcalls.
    pub msg_id: Option<MsgId>,
    /// Global total-order sequence number assigned by TOTAL, if any.
    pub total_seq: Option<u64>,
    /// Whether this delivery was recovered by a flush (Figure 2 path)
    /// rather than received directly from its sender.
    pub flush_recovered: bool,
    /// Application-assigned send priority (used by PRIO/NNAK layers;
    /// higher is more urgent).
    pub priority: u8,
    /// Logical channel for MUX layers (cactus-stack multiplexing, §4).
    pub channel: u8,
    /// RPC correlation: `(request id, is_reply)`, managed by the RPC
    /// layer.
    pub rpc: Option<(u64, bool)>,
}

/// A Horus message: a header area managed per [`HeaderMode`] plus a cheaply
/// cloneable body.
///
/// ```
/// use horus_core::message::{FieldSpec, HeaderLayout, HeaderMode, Message};
///
/// const F: &[FieldSpec] = &[FieldSpec::new("seq", 32), FieldSpec::new("kind", 3)];
/// let layout = std::sync::Arc::new(
///     HeaderLayout::build(&[("NAK", F)], HeaderMode::Compact).unwrap());
/// let mut m = Message::new(layout, &b"payload"[..]);
/// m.push_header(0);
/// m.set_field(0, 0, 7);
/// m.set_field(0, 1, 5);
/// assert_eq!(m.field(0, 0), 7);
/// assert_eq!(m.body(), &b"payload"[..]);
/// ```
#[derive(Clone)]
pub struct Message {
    layout: Arc<HeaderLayout>,
    /// Compact mode: the single bit-compacted header area.
    compact: Vec<u8>,
    /// Aligned mode: the stack of pushed records, bottom of the byte vector
    /// = first pushed (top layer); the *end* of the vector is the top of the
    /// header stack (last pushed, i.e. lowest layer so far).
    aligned: Vec<u8>,
    /// Aligned mode: (layer index, record start offset) of pushed records.
    records: Vec<(u8, usize)>,
    /// Aligned mode: fields of the most recently popped record.
    popped: Option<(u8, Vec<u64>)>,
    body: Bytes,
    /// Receiving-side annotations; never serialized.
    pub meta: MessageMeta,
}

impl Message {
    /// Creates a fresh message with the given body and no headers pushed.
    pub fn new(layout: Arc<HeaderLayout>, body: impl Into<Bytes>) -> Self {
        let compact = match layout.mode {
            HeaderMode::Compact => vec![0u8; layout.compact_bytes()],
            HeaderMode::Aligned => Vec::new(),
        };
        Message {
            layout,
            compact,
            aligned: Vec::new(),
            records: Vec::new(),
            popped: None,
            body: body.into(),
            meta: MessageMeta::default(),
        }
    }

    /// The shared layout this message was created against.
    pub fn layout(&self) -> &Arc<HeaderLayout> {
        &self.layout
    }

    /// The message body. Cloning the returned [`Bytes`] is O(1).
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// Replaces the body, returning the previous one.
    pub fn set_body(&mut self, body: impl Into<Bytes>) -> Bytes {
        std::mem::replace(&mut self.body, body.into())
    }

    /// Begins this layer's header on the way down.
    ///
    /// In aligned mode this appends a word-aligned record (a real operation
    /// with measurable cost — §10 problem 3); in compact mode it is free.
    pub fn push_header(&mut self, layer: usize) {
        match self.layout.mode {
            HeaderMode::Compact => {}
            HeaderMode::Aligned => {
                let start = self.aligned.len();
                let rec_bytes = self.layout.slots[layer].rec_bytes;
                let padded = rec_bytes.div_ceil(4) * 4;
                // Record header: layer id, payload length, padding count.
                self.aligned.push(layer as u8);
                self.aligned.push((padded - rec_bytes) as u8);
                self.aligned.extend_from_slice(&(rec_bytes as u16).to_le_bytes());
                self.aligned.resize(start + 4 + padded, 0);
                self.records.push((layer as u8, start));
            }
        }
    }

    /// Removes this layer's header on the way up, making its fields readable
    /// through [`Message::field`].
    ///
    /// # Errors
    ///
    /// In aligned mode, fails if the top record does not belong to `layer`
    /// (stack composition mismatch or corrupted message).
    pub fn pop_header(&mut self, layer: usize) -> Result<(), HorusError> {
        match self.layout.mode {
            HeaderMode::Compact => Ok(()),
            HeaderMode::Aligned => {
                let (rec_layer, start) = *self.records.last().ok_or_else(|| {
                    HorusError::Decode(format!(
                        "pop_header({}) on empty header stack",
                        self.layout.layer_name(layer)
                    ))
                })?;
                if rec_layer as usize != layer {
                    return Err(HorusError::Decode(format!(
                        "header stack mismatch: top record belongs to {}, {} tried to pop",
                        self.layout.layer_name(rec_layer as usize),
                        self.layout.layer_name(layer)
                    )));
                }
                let slot = &self.layout.slots[layer];
                let mut vals = Vec::with_capacity(slot.fields.len());
                for (i, f) in slot.fields.iter().enumerate() {
                    let off = start + 4 + slot.rec_offsets[i];
                    let n = f.aligned_bytes();
                    let mut raw = [0u8; 8];
                    raw[..n].copy_from_slice(&self.aligned[off..off + n]);
                    vals.push(u64::from_le_bytes(raw) & mask(f.bits));
                }
                self.records.pop();
                self.aligned.truncate(start);
                self.popped = Some((layer as u8, vals));
                Ok(())
            }
        }
    }

    /// Whether this layer currently has a header on the message.
    ///
    /// In aligned mode, true when the *top* record belongs to `layer` — the
    /// up-path test for "is this message mine to open?".  In compact mode
    /// every layer always has its (possibly all-zero) fields, so this is
    /// always true.
    pub fn has_header(&self, layer: usize) -> bool {
        match self.layout.mode {
            HeaderMode::Compact => true,
            HeaderMode::Aligned => {
                self.records.last().map(|&(l, _)| l as usize == layer).unwrap_or(false)
            }
        }
    }

    /// Writes a header field. Must follow [`Message::push_header`] for this
    /// layer in aligned mode.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit the declared field width, or (in
    /// aligned mode) if the layer's record is not the top of the header
    /// stack.
    pub fn set_field(&mut self, layer: usize, field: usize, val: u64) {
        let spec = self.layout.slots[layer].fields[field];
        assert!(
            val <= mask(spec.bits),
            "value {} does not fit field {}/{} of {} bits",
            val,
            self.layout.layer_name(layer),
            spec.name,
            spec.bits
        );
        match self.layout.mode {
            HeaderMode::Compact => {
                let off = self.layout.slots[layer].bit_offsets[field];
                set_bits(&mut self.compact, off, spec.bits, val);
            }
            HeaderMode::Aligned => {
                let &(rec_layer, start) =
                    self.records.last().expect("set_field before push_header");
                assert_eq!(
                    rec_layer as usize, layer,
                    "set_field: top record belongs to a different layer"
                );
                let slot = &self.layout.slots[layer];
                let off = start + 4 + slot.rec_offsets[field];
                let n = spec.aligned_bytes();
                self.aligned[off..off + n].copy_from_slice(&val.to_le_bytes()[..n]);
            }
        }
    }

    /// Reads a header field.  In aligned mode the layer must have popped its
    /// record first (receive path) or pushed it (send path).
    ///
    /// # Panics
    ///
    /// Panics in aligned mode when neither a popped nor a pushed record for
    /// this layer is available.
    pub fn field(&self, layer: usize, field: usize) -> u64 {
        let spec = self.layout.slots[layer].fields[field];
        match self.layout.mode {
            HeaderMode::Compact => {
                let off = self.layout.slots[layer].bit_offsets[field];
                get_bits(&self.compact, off, spec.bits)
            }
            HeaderMode::Aligned => {
                if let Some((l, vals)) = &self.popped {
                    if *l as usize == layer {
                        return vals[field];
                    }
                }
                // Fall back to the top pushed record (send path).
                let &(rec_layer, start) =
                    self.records.last().expect("field() with no popped or pushed record");
                assert_eq!(
                    rec_layer as usize, layer,
                    "field(): record belongs to a different layer"
                );
                let slot = &self.layout.slots[layer];
                let off = start + 4 + slot.rec_offsets[field];
                let n = spec.aligned_bytes();
                let mut raw = [0u8; 8];
                raw[..n].copy_from_slice(&self.aligned[off..off + n]);
                u64::from_le_bytes(raw) & mask(spec.bits)
            }
        }
    }

    /// Current header area size in bytes — the quantity the §10 header
    /// ablation measures.
    pub fn header_wire_len(&self) -> usize {
        match self.layout.mode {
            HeaderMode::Compact => self.compact.len(),
            HeaderMode::Aligned => self.aligned.len(),
        }
    }

    /// The current header area: the bit-compacted header (compact mode) or
    /// the pushed record stack (aligned mode).  This is exactly what
    /// [`Message::encode_inner`] serializes ahead of the body.
    pub fn header_area(&self) -> &[u8] {
        match self.layout.mode {
            HeaderMode::Compact => &self.compact,
            HeaderMode::Aligned => &self.aligned,
        }
    }

    /// Size of [`Message::encode_inner`] output, without encoding.  Lets
    /// callers that embed encoded messages (FRAG, PACK) pre-size buffers.
    pub fn encoded_inner_len(&self) -> usize {
        2 + self.header_area().len() + self.body.len()
    }

    /// Serializes header area + body into one buffer.  Used by FRAG when a
    /// partially-built message must be chunked and by PACK when messages are
    /// coalesced; the stack itself ships the two parts as a scatter-gather
    /// [`crate::frame::WireFrame`] instead.
    pub fn encode_inner(&self) -> Bytes {
        let hdr = self.header_area();
        let mut out = Vec::with_capacity(2 + hdr.len() + self.body.len());
        out.extend_from_slice(&(hdr.len() as u16).to_le_bytes());
        out.extend_from_slice(hdr);
        out.extend_from_slice(&self.body);
        Bytes::from(out)
    }

    /// Reconstructs a message from [`Message::encode_inner`] output.
    ///
    /// # Errors
    ///
    /// Fails on truncation or on malformed aligned records.
    pub fn decode_inner(layout: Arc<HeaderLayout>, buf: &[u8]) -> Result<Self, HorusError> {
        if buf.len() < 2 {
            return Err(HorusError::Decode("message shorter than its length prefix".into()));
        }
        let hdr_len = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        if buf.len() < 2 + hdr_len {
            return Err(HorusError::Decode(format!(
                "header length {} exceeds buffer {}",
                hdr_len,
                buf.len() - 2
            )));
        }
        Message::decode_parts(
            layout,
            &buf[2..2 + hdr_len],
            Bytes::copy_from_slice(&buf[2 + hdr_len..]),
        )
    }

    /// Reconstructs a message from an already-split header area and body.
    /// The zero-copy receive path: `body` is attached as-is, so a transport
    /// that kept the payload as a distinct [`Bytes`] segment hands it to the
    /// reconstructed message without a copy.
    ///
    /// # Errors
    ///
    /// Fails on a header area that does not match the layout, or on
    /// malformed aligned records.
    pub fn decode_parts(
        layout: Arc<HeaderLayout>,
        hdr: &[u8],
        body: Bytes,
    ) -> Result<Self, HorusError> {
        let hdr_len = hdr.len();
        let mut msg = Message::new(layout.clone(), body);
        match layout.mode {
            HeaderMode::Compact => {
                if hdr_len != layout.compact_bytes() {
                    return Err(HorusError::Decode(format!(
                        "compact header is {} bytes, layout expects {}",
                        hdr_len,
                        layout.compact_bytes()
                    )));
                }
                msg.compact.copy_from_slice(hdr);
            }
            HeaderMode::Aligned => {
                // Re-index the record stack by walking the records in push
                // order (front of the buffer was pushed first).
                let mut pos = 0usize;
                while pos < hdr.len() {
                    if pos + 4 > hdr.len() {
                        return Err(HorusError::Decode("truncated aligned record header".into()));
                    }
                    let layer = hdr[pos];
                    let pad = hdr[pos + 1] as usize;
                    let rec_bytes = u16::from_le_bytes([hdr[pos + 2], hdr[pos + 3]]) as usize;
                    if layer as usize >= layout.slots.len()
                        || layout.slots[layer as usize].rec_bytes != rec_bytes
                        || pad != rec_bytes.div_ceil(4) * 4 - rec_bytes
                    {
                        return Err(HorusError::Decode(format!(
                            "malformed aligned record at offset {pos}"
                        )));
                    }
                    msg.records.push((layer, pos));
                    pos += 4 + rec_bytes + pad;
                }
                if pos != hdr.len() {
                    return Err(HorusError::Decode("aligned records overrun header area".into()));
                }
                msg.aligned.extend_from_slice(hdr);
            }
        }
        Ok(msg)
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Message")
            .field("mode", &self.layout.mode)
            .field("header_bytes", &self.header_wire_len())
            .field("body_bytes", &self.body.len())
            .field("meta", &self.meta)
            .finish()
    }
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Writes `bits` bits of `val` at absolute bit offset `off` (LSB-first).
fn set_bits(area: &mut [u8], off: usize, bits: u32, val: u64) {
    for i in 0..bits as usize {
        let bit = (val >> i) & 1;
        let pos = off + i;
        let byte = pos / 8;
        let shift = pos % 8;
        if bit == 1 {
            area[byte] |= 1 << shift;
        } else {
            area[byte] &= !(1 << shift);
        }
    }
}

/// Reads `bits` bits at absolute bit offset `off` (LSB-first).
fn get_bits(area: &[u8], off: usize, bits: u32) -> u64 {
    let mut v = 0u64;
    for i in 0..bits as usize {
        let pos = off + i;
        let byte = pos / 8;
        let shift = pos % 8;
        if (area[byte] >> shift) & 1 == 1 {
            v |= 1 << i;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOP: &[FieldSpec] = &[FieldSpec::new("order", 24), FieldSpec::new("kind", 3)];
    const MID: &[FieldSpec] = &[FieldSpec::new("last", 1)];
    const BOT: &[FieldSpec] = &[FieldSpec::new("seq", 32), FieldSpec::new("k", 2)];

    fn layout(mode: HeaderMode) -> Arc<HeaderLayout> {
        Arc::new(HeaderLayout::build(&[("TOP", TOP), ("MID", MID), ("BOT", BOT)], mode).unwrap())
    }

    #[test]
    fn compact_layout_packs_bits() {
        let l = layout(HeaderMode::Compact);
        // 24+3+1+32+2 = 62 bits -> 8 bytes.
        assert_eq!(l.compact_bytes(), 8);
    }

    #[test]
    fn aligned_layout_pads_records() {
        let l = layout(HeaderMode::Aligned);
        // TOP: 3+1=4 payload bytes -> 4 hdr + 4 = 8.
        assert_eq!(l.aligned_record_bytes(0), 8);
        // MID: 1 byte -> 4 hdr + 4 padded = 8.
        assert_eq!(l.aligned_record_bytes(1), 8);
        // BOT: 4+1=5 -> 4 hdr + 8 padded = 12.
        assert_eq!(l.aligned_record_bytes(2), 12);
        assert_eq!(l.aligned_bytes_all(), 28);
    }

    fn roundtrip(mode: HeaderMode) {
        let l = layout(mode);
        let mut m = Message::new(l.clone(), &b"abc"[..]);
        // Down path: TOP, MID, BOT push in order.
        m.push_header(0);
        m.set_field(0, 0, 0xABCDE);
        m.set_field(0, 1, 5);
        m.push_header(1);
        m.set_field(1, 0, 1);
        m.push_header(2);
        m.set_field(2, 0, 0xDEADBEEF);
        m.set_field(2, 1, 3);

        // Wire roundtrip.
        let wire = m.encode_inner();
        let mut r = Message::decode_inner(l, &wire).unwrap();
        assert_eq!(r.body(), &b"abc"[..]);

        // Up path: BOT, MID, TOP pop in reverse order.
        r.pop_header(2).unwrap();
        assert_eq!(r.field(2, 0), 0xDEADBEEF);
        assert_eq!(r.field(2, 1), 3);
        r.pop_header(1).unwrap();
        assert_eq!(r.field(1, 0), 1);
        r.pop_header(0).unwrap();
        assert_eq!(r.field(0, 0), 0xABCDE);
        assert_eq!(r.field(0, 1), 5);
    }

    #[test]
    fn roundtrip_compact() {
        roundtrip(HeaderMode::Compact);
    }

    #[test]
    fn roundtrip_aligned() {
        roundtrip(HeaderMode::Aligned);
    }

    #[test]
    fn aligned_pop_order_enforced() {
        let l = layout(HeaderMode::Aligned);
        let mut m = Message::new(l, &b""[..]);
        m.push_header(0);
        m.push_header(1);
        // Popping TOP while MID is on top must fail.
        assert!(m.pop_header(0).is_err());
        assert!(m.pop_header(1).is_ok());
        assert!(m.pop_header(0).is_ok());
        assert!(m.pop_header(0).is_err());
    }

    #[test]
    fn partial_stacks_encode() {
        // A control message created at MID never visits TOP.
        let l = layout(HeaderMode::Aligned);
        let mut m = Message::new(l.clone(), &b"ctl"[..]);
        m.push_header(1);
        m.set_field(1, 0, 1);
        m.push_header(2);
        m.set_field(2, 0, 42);
        m.set_field(2, 1, 1);
        let wire = m.encode_inner();
        let mut r = Message::decode_inner(l, &wire).unwrap();
        r.pop_header(2).unwrap();
        assert_eq!(r.field(2, 0), 42);
        assert!(r.has_header(1));
        assert!(!r.has_header(0));
        r.pop_header(1).unwrap();
        assert_eq!(r.field(1, 0), 1);
    }

    #[test]
    fn compact_headers_smaller_than_aligned() {
        let lc = layout(HeaderMode::Compact);
        let la = layout(HeaderMode::Aligned);
        let mut mc = Message::new(lc, &b""[..]);
        let mut ma = Message::new(la, &b""[..]);
        for i in 0..3 {
            mc.push_header(i);
            ma.push_header(i);
        }
        assert!(mc.header_wire_len() < ma.header_wire_len());
    }

    #[test]
    fn field_width_enforced() {
        let l = layout(HeaderMode::Compact);
        let mut m = Message::new(l, &b""[..]);
        m.push_header(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.set_field(1, 0, 2); // "last" is 1 bit
        }));
        assert!(r.is_err());
    }

    #[test]
    fn decode_rejects_garbage() {
        let l = layout(HeaderMode::Aligned);
        assert!(Message::decode_inner(l.clone(), &[]).is_err());
        assert!(Message::decode_inner(l.clone(), &[200, 0, 1, 2]).is_err());
        // A record claiming a bogus layer id.
        let mut m = Message::new(l.clone(), &b""[..]);
        m.push_header(0);
        let wire = m.encode_inner().to_vec();
        let mut bad = wire.clone();
        bad[2] = 9; // layer id byte of the first record
        assert!(Message::decode_inner(l, &bad).is_err());
    }

    #[test]
    fn bit_ops_dense_packing() {
        let mut area = vec![0u8; 16];
        set_bits(&mut area, 3, 7, 0b1010101);
        set_bits(&mut area, 10, 64, u64::MAX);
        set_bits(&mut area, 74, 1, 1);
        assert_eq!(get_bits(&area, 3, 7), 0b1010101);
        assert_eq!(get_bits(&area, 10, 64), u64::MAX);
        assert_eq!(get_bits(&area, 74, 1), 1);
        // Overwrite with a smaller value clears old bits.
        set_bits(&mut area, 10, 64, 5);
        assert_eq!(get_bits(&area, 10, 64), 5);
    }

    #[test]
    fn body_clone_is_shallow() {
        let l = layout(HeaderMode::Compact);
        let body = Bytes::from(vec![7u8; 1024]);
        let m = Message::new(l, body.clone());
        let m2 = m.clone();
        // Same backing storage: no copy of the payload.
        assert_eq!(m.body().as_ptr(), m2.body().as_ptr());
    }

    #[test]
    fn zero_width_field_rejected() {
        let bad: &[FieldSpec] = &[FieldSpec::new("x", 0)];
        assert!(HeaderLayout::build(&[("L", bad)], HeaderMode::Compact).is_err());
        let wide: &[FieldSpec] = &[FieldSpec::new("x", 65)];
        assert!(HeaderLayout::build(&[("L", wide)], HeaderMode::Compact).is_err());
    }
}
