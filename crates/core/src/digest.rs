//! State digests for model checking.
//!
//! The bounded schedule explorer (`horus-check`) prunes its search when it
//! reaches a world state it has already visited.  "Same state" is decided by
//! a 64-bit digest: every layer feeds its delivery-relevant state into a
//! [`StateDigest`] through [`crate::layer::Layer::digest_state`], and the
//! executor combines the per-stack digests with its pending-event multiset.
//!
//! The digest is FNV-1a over the fed bytes — not cryptographic, just cheap
//! and stable.  A collision makes the explorer skip a subtree it should have
//! searched (missed coverage, never a false alarm), which is the right
//! failure direction for a bug-finding tool.

/// An incremental 64-bit FNV-1a digest of protocol state.
#[derive(Debug, Clone)]
pub struct StateDigest {
    h: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl StateDigest {
    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        StateDigest { h: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string (with a terminator so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        self.write_bytes(&[0xff]);
    }

    /// Feeds a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        // Final avalanche (splitmix-style) so short inputs still spread.
        let mut z = self.h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl Default for StateDigest {
    fn default() -> Self {
        StateDigest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let digest = |parts: &[&str]| {
            let mut d = StateDigest::new();
            for p in parts {
                d.write_str(p);
            }
            d.finish()
        };
        assert_eq!(digest(&["a", "b"]), digest(&["a", "b"]));
        assert_ne!(digest(&["a", "b"]), digest(&["b", "a"]));
        assert_ne!(digest(&["ab", "c"]), digest(&["a", "bc"]), "framing matters");
    }

    #[test]
    fn u64_and_bytes_feed() {
        let mut a = StateDigest::new();
        a.write_u64(7);
        let mut b = StateDigest::new();
        b.write_u64(8);
        assert_ne!(a.finish(), b.finish());
        let mut c = StateDigest::new();
        c.write_bytes(&7u64.to_le_bytes());
        assert_eq!(a.finish(), c.finish());
    }
}
