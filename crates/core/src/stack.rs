//! The stack runtime: run-time protocol composition plus the event-queue
//! execution model (§3, §10).
//!
//! A [`Stack`] is an ordered sequence of [`Layer`]s (index 0 on top) driven
//! by a single scheduler — the paper's non-threaded model, where "each layer
//! is implemented with a single scheduling thread per endpoint".  The stack
//! is a pure state machine: [`Stack::handle`] consumes one [`StackInput`]
//! and returns the [`Effect`]s the surrounding executor must perform
//! (deliver upcalls, transmit wire messages, arm timers).  Determinism
//! follows, and with it replayable failure scenarios.
//!
//! Two §10 optimizations are implemented and benchmarkable:
//!
//! * **layer skipping** ([`StackConfig::skip_passive`]): events bypass
//!   layers that declare themselves passive, avoiding the indirect call per
//!   boundary crossing (§10 problem 1);
//! * **header compaction** ([`StackConfig::mode`]): the pre-computed
//!   bit-compacted single header replaces per-layer aligned push/pop (§10
//!   problem 3).

use crate::addr::{EndpointAddr, GroupAddr};
use crate::digest::StateDigest;
use crate::error::HorusError;
use crate::event::{Down, Effect, StackInput, Up};
use crate::frame::{FrameChecksum, WireFrame, ENVELOPE_BYTES};
use crate::layer::{Emit, Layer, LayerCtx};
use crate::message::{HeaderLayout, HeaderMode, Message};
use crate::time::SimTime;
use crate::trace::{DropReason, TraceEvent, TraceKind, TraceSink};
use crate::view::View;
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a stack's runtime behaviour.
#[derive(Debug, Clone)]
pub struct StackConfig {
    /// Header layout (§10 problem 3 ablation). Default: [`HeaderMode::Compact`].
    pub mode: HeaderMode,
    /// Skip dispatching events through passive layers (§10 problem 1
    /// optimization). Default: `true`.
    pub skip_passive: bool,
    /// Seed for the stack's deterministic RNG. Defaults to the endpoint
    /// address so distinct endpoints jitter differently but reproducibly.
    pub seed: Option<u64>,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig { mode: HeaderMode::Compact, skip_passive: true, seed: None }
    }
}

/// Counters accumulated by a stack; the raw material for the paper's
/// overhead discussion (§10).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Wire messages transmitted (casts + sends).
    pub msgs_sent: u64,
    /// Wire messages received and decoded.
    pub msgs_received: u64,
    /// Total bytes handed to the transport.
    pub bytes_sent: u64,
    /// Total bytes received from the transport.
    pub bytes_received: u64,
    /// Header bytes (excluding frame and body) transmitted.
    pub header_bytes_sent: u64,
    /// Individual layer dispatches performed.
    pub dispatches: u64,
    /// Dispatches avoided by the passive-layer skip optimization.
    pub skipped: u64,
    /// Incoming wire messages dropped for a stack-fingerprint mismatch.
    pub fingerprint_drops: u64,
    /// Incoming wire messages dropped as undecodable.
    pub decode_drops: u64,
    /// Wire frames that carried more than one coalesced message (PACK).
    pub frames_packed: u64,
    /// Messages that travelled inside a packed carrier frame.
    pub msgs_packed: u64,
    /// Envelope bytes saved by packing versus one frame per message.
    pub bytes_saved_packing: u64,
    /// Payload (body) copies performed between the application boundary and
    /// the transport.  Zero on the plain cast/send hot path: the scatter-
    /// gather framing ships the application's `Bytes` by reference.
    pub payload_copies: u64,
    /// Inputs processed through [`Stack::handle_batch`].
    pub batched_inputs: u64,
    /// Calls to [`Stack::handle_batch`] (so `batched_inputs / batches` is the
    /// achieved batch size).
    pub batches: u64,
    /// Times a reused dispatch buffer (scratch queue or emission buffer) had
    /// to grow during an input's processing.  Zero in steady state: the
    /// buffers warm up and every further event dispatches allocation-free.
    pub dispatch_buf_grows: u64,
    /// Per-layer crossing counters, indexed top-first like the stack's
    /// layers (sized at build; empty only for a default value that was
    /// never attached to a stack).  Together with the trace timestamps
    /// these are the per-layer occupancy/latency decomposition of §10.
    pub per_layer: Vec<LayerTraffic>,
    /// High-water mark of the intra-stack scratch queue (events queued
    /// between layers during one input's processing) — the stack's
    /// occupancy measure.  Merged by maximum, not sum.
    pub scratch_peak: u64,
}

/// Per-layer dispatch counters: how many items of each direction a layer
/// handled.  The trace's layer-crossing events carry the same information
/// with timestamps; these are the always-on aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Downward items dispatched into the layer.
    pub downs: u64,
    /// Upward items dispatched into the layer.
    pub ups: u64,
    /// Timer items dispatched into the layer.
    pub timers: u64,
}

impl StackStats {
    /// Adds `other`'s counters into `self` — per-shard and per-worker
    /// aggregation for the sharded executor.
    pub fn merge(&mut self, other: &StackStats) {
        let StackStats {
            msgs_sent,
            msgs_received,
            bytes_sent,
            bytes_received,
            header_bytes_sent,
            dispatches,
            skipped,
            fingerprint_drops,
            decode_drops,
            frames_packed,
            msgs_packed,
            bytes_saved_packing,
            payload_copies,
            batched_inputs,
            batches,
            dispatch_buf_grows,
            per_layer,
            scratch_peak,
        } = other;
        self.msgs_sent += msgs_sent;
        self.msgs_received += msgs_received;
        self.bytes_sent += bytes_sent;
        self.bytes_received += bytes_received;
        self.header_bytes_sent += header_bytes_sent;
        self.dispatches += dispatches;
        self.skipped += skipped;
        self.fingerprint_drops += fingerprint_drops;
        self.decode_drops += decode_drops;
        self.frames_packed += frames_packed;
        self.msgs_packed += msgs_packed;
        self.bytes_saved_packing += bytes_saved_packing;
        self.payload_copies += payload_copies;
        self.batched_inputs += batched_inputs;
        self.batches += batches;
        self.dispatch_buf_grows += dispatch_buf_grows;
        if self.per_layer.len() < per_layer.len() {
            self.per_layer.resize(per_layer.len(), LayerTraffic::default());
        }
        for (mine, theirs) in self.per_layer.iter_mut().zip(per_layer) {
            mine.downs += theirs.downs;
            mine.ups += theirs.ups;
            mine.timers += theirs.timers;
        }
        self.scratch_peak = self.scratch_peak.max(*scratch_peak);
    }
}

/// A reusable effect emission buffer: the zero-allocation counterpart of the
/// `Vec<Effect>` that [`Stack::handle`] returns.
///
/// Executors on the hot path keep one `EffectSink` per worker, pass it to
/// [`Stack::handle_into`] / [`Stack::handle_batch`], drain it, and pass it
/// again: once warm, no allocation happens per dispatched event — the
/// per-call `Vec` return of `handle` was the last steady-state allocation on
/// the cast path.
#[derive(Debug, Default)]
pub struct EffectSink {
    effects: Vec<Effect>,
}

impl EffectSink {
    /// An empty sink.
    pub fn new() -> Self {
        EffectSink::default()
    }

    /// An empty sink with room for `cap` effects before any growth.
    pub fn with_capacity(cap: usize) -> Self {
        EffectSink { effects: Vec::with_capacity(cap) }
    }

    /// Number of effects currently buffered.
    pub fn len(&self) -> usize {
        self.effects.len()
    }

    /// Whether the sink holds no effects.
    pub fn is_empty(&self) -> bool {
        self.effects.is_empty()
    }

    /// The buffered effects, oldest first.
    pub fn as_slice(&self) -> &[Effect] {
        &self.effects
    }

    /// Removes and yields the buffered effects, keeping the allocation.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Effect> {
        self.effects.drain(..)
    }

    /// Drops the buffered effects, keeping the allocation.
    pub fn clear(&mut self) {
        self.effects.clear();
    }

    /// Consumes the sink, returning the buffered effects.
    pub fn into_effects(self) -> Vec<Effect> {
        self.effects
    }

    pub(crate) fn buf(&mut self) -> &mut Vec<Effect> {
        &mut self.effects
    }
}

impl Extend<Effect> for EffectSink {
    fn extend<I: IntoIterator<Item = Effect>>(&mut self, iter: I) {
        self.effects.extend(iter);
    }
}

impl From<EffectSink> for Vec<Effect> {
    fn from(sink: EffectSink) -> Vec<Effect> {
        sink.effects
    }
}

/// Builds a [`Stack`] from layers given top-first — the run-time `endpoint`
/// downcall of Table 1.
///
/// ```
/// use horus_core::prelude::*;
/// #[derive(Debug, Default)]
/// struct Nop;
/// impl Layer for Nop { fn name(&self) -> &'static str { "NOP" } }
///
/// let stack = StackBuilder::new(EndpointAddr::new(7))
///     .push(Box::new(Nop))
///     .build()?;
/// assert_eq!(stack.layer_names(), vec!["NOP"]);
/// # Ok::<(), HorusError>(())
/// ```
pub struct StackBuilder {
    local: EndpointAddr,
    layers: Vec<Box<dyn Layer>>,
    config: StackConfig,
}

impl StackBuilder {
    /// Starts a builder for an endpoint with the given address.
    pub fn new(local: EndpointAddr) -> Self {
        StackBuilder { local, layers: Vec::new(), config: StackConfig::default() }
    }

    /// Appends the next layer (top first: the first `push` is the layer the
    /// application talks to).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends many layers, top first.
    pub fn extend(mut self, layers: impl IntoIterator<Item = Box<dyn Layer>>) -> Self {
        self.layers.extend(layers);
        self
    }

    /// Overrides the runtime configuration.
    pub fn config(mut self, config: StackConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the header layout.
    pub fn mode(mut self, mode: HeaderMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Enables or disables the passive-layer skip optimization.
    pub fn skip_passive(mut self, on: bool) -> Self {
        self.config.skip_passive = on;
        self
    }

    /// Finishes composition, pre-computing the header layout and skip
    /// tables.
    ///
    /// # Errors
    ///
    /// Fails on an empty stack, on more than 250 layers, or on invalid
    /// header field declarations.
    pub fn build(self) -> Result<Stack, HorusError> {
        if self.layers.is_empty() {
            return Err(HorusError::BadStack("a stack needs at least one layer".into()));
        }
        if self.layers.len() > 250 {
            return Err(HorusError::BadStack(format!(
                "{} layers exceed the maximum stack depth of 250",
                self.layers.len()
            )));
        }
        let specs: Vec<(&'static str, &[crate::message::FieldSpec])> =
            self.layers.iter().map(|l| (l.name(), l.header_fields())).collect();
        let layout = Arc::new(HeaderLayout::build(&specs, self.config.mode)?);
        let fingerprint = fingerprint(&specs, self.config.mode);
        let seed = self.config.seed.unwrap_or(self.local.raw());
        let n = self.layers.len();
        Ok(Stack {
            local: self.local,
            layers: self.layers.into_iter().map(LayerCell::new).collect(),
            layout,
            fingerprint,
            config: self.config,
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            group: None,
            view: None,
            stats: StackStats {
                per_layer: vec![LayerTraffic::default(); n],
                ..StackStats::default()
            },
            destroyed: false,
            scratch: VecDeque::with_capacity(n * 2),
            emit_buf: Vec::with_capacity(4),
            layer_digests: (0..n).map(|_| Cell::new(0)).collect(),
            layer_dirty: (0..n).map(|_| Cell::new(true)).collect(),
            view_digest: Cell::new(0),
            view_dirty: Cell::new(true),
            tracer: None,
            traced: false,
        })
    }
}

/// A 16-bit fingerprint of a stack composition (layer names, field specs,
/// header mode).  Carried on every wire message so endpoints with mismatched
/// stacks discard each other's traffic instead of misparsing it.
fn fingerprint(specs: &[(&'static str, &[crate::message::FieldSpec])], mode: HeaderMode) -> u16 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    eat(match mode {
        HeaderMode::Aligned => 0,
        HeaderMode::Compact => 1,
    });
    for (name, fields) in specs {
        for b in name.bytes() {
            eat(b);
        }
        eat(0xff);
        for f in *fields {
            for b in f.name.bytes() {
                eat(b);
            }
            eat(f.bits as u8);
        }
    }
    (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16
}

enum Item {
    Down(Down),
    Up(Up),
    Timer(u64),
}

/// Process-global count of layer states duplicated through
/// [`Layer::clone_box`] — by deep stack clones ([`Stack::try_clone`]) and by
/// copy-on-write materializations (first mutation of a shared layer after
/// [`Stack::clone_cow`]).  The model checker's benchmarks read this as the
/// "bytes cloned" proxy when comparing snapshot strategies.
static LAYER_CLONES: AtomicU64 = AtomicU64::new(0);

/// Total layer-state duplications since process start (or the last
/// [`reset_layer_clones`]).
pub fn layer_clones() -> u64 {
    LAYER_CLONES.load(Ordering::Relaxed)
}

/// Resets the [`layer_clones`] counter to zero.  Benchmark harnesses call
/// this between arms; the counter is process-global, so concurrent stacks in
/// the same process all contribute.
pub fn reset_layer_clones() {
    LAYER_CLONES.store(0, Ordering::Relaxed);
}

/// One layer's state behind a copy-on-write cell.
///
/// A freshly built stack owns each layer exclusively (`Arc` strong count 1)
/// and mutates it in place.  [`Stack::clone_cow`] shares the `Arc`s instead
/// of cloning layer state; the first dispatch into a shared layer — on
/// either side — materializes a private copy via [`Layer::clone_box`].
/// Layers a parked exploration sibling never touches are therefore never
/// cloned, which is what makes world snapshots O(touched) instead of
/// O(world).
struct LayerCell(Arc<Box<dyn Layer>>);

impl LayerCell {
    fn new(layer: Box<dyn Layer>) -> Self {
        LayerCell(Arc::new(layer))
    }

    /// Read access; never clones.
    fn get(&self) -> &dyn Layer {
        &**self.0
    }

    /// Write access; materializes a private copy first if the cell is
    /// shared with a snapshot.
    ///
    /// # Panics
    ///
    /// Panics when a shared layer breaks the
    /// [`Layer::supports_snapshot`]/[`Layer::clone_box`] agreement: sharing
    /// only happens after `supports_snapshot()` returned `true`, so
    /// `clone_box()` returning `None` here is a layer implementation bug.
    fn make_mut(&mut self) -> &mut dyn Layer {
        if Arc::get_mut(&mut self.0).is_none() {
            let copy = self.0.clone_box().unwrap_or_else(|| {
                panic!(
                    "layer {} advertises snapshot support but clone_box returned None",
                    self.0.name()
                )
            });
            LAYER_CLONES.fetch_add(1, Ordering::Relaxed);
            self.0 = Arc::new(copy);
        }
        &mut **Arc::get_mut(&mut self.0).expect("uniquely owned after materialization")
    }

    /// Shares the cell (no state copied) if the layer can be materialized
    /// later.
    fn share(&self) -> Option<LayerCell> {
        self.get().supports_snapshot().then(|| LayerCell(Arc::clone(&self.0)))
    }
}

/// A composed protocol stack for one endpoint: the Horus "endpoint object"
/// together with its layers and the per-stack event scheduler.
pub struct Stack {
    local: EndpointAddr,
    /// Per-layer copy-on-write cells; see [`LayerCell`].
    layers: Vec<LayerCell>,
    layout: Arc<HeaderLayout>,
    fingerprint: u16,
    config: StackConfig,
    now: SimTime,
    rng: StdRng,
    group: Option<GroupAddr>,
    view: Option<View>,
    stats: StackStats,
    destroyed: bool,
    scratch: VecDeque<(usize, Item)>,
    /// Reusable per-dispatch emission buffer: one allocation per stack, not
    /// one per layer dispatch.
    emit_buf: Vec<Emit>,
    /// Cached per-layer state digests, parallel to `layers`.  The dirty bit
    /// is the caching invariant: **every dispatch into a layer marks it
    /// dirty** (in [`Stack::drain`] and [`Stack::init`]) before the layer
    /// runs, so a stale cache entry can only describe a layer no event has
    /// touched since the digest was taken.  Marking is conservative — a
    /// dispatch that mutates nothing still invalidates — which is what makes
    /// the scheme sound without trusting each of the 37 layer
    /// implementations to track its own mutations.
    layer_digests: Vec<Cell<u64>>,
    layer_dirty: Vec<Cell<bool>>,
    /// Cached digest of the current view string (the one `format!` in the
    /// stack's digest path), refreshed only when a view installs.
    view_digest: Cell<u64>,
    view_dirty: Cell<bool>,
    /// Structured-event hook ([`crate::trace`]).  `None` — the default —
    /// costs one branch per event site; executors mirror the installed sink
    /// for the events only they can see (frame arrival, timer firing).
    tracer: Option<Arc<dyn TraceSink>>,
    /// Cached [`TraceSink::interested`] answer — the one flag every event
    /// site branches on, so a sink that will never record (a [`NullSink`])
    /// skips event construction exactly like no sink at all.
    ///
    /// [`NullSink`]: crate::trace::NullSink
    traced: bool,
}

impl Stack {
    /// The owning endpoint's address.
    pub fn local_addr(&self) -> EndpointAddr {
        self.local
    }

    /// The group joined through this stack, if any.
    pub fn group(&self) -> Option<GroupAddr> {
        self.group
    }

    /// The most recent view delivered to the application, if any.
    pub fn view(&self) -> Option<&View> {
        self.view.as_ref()
    }

    /// The stack's pre-computed header layout.
    pub fn layout(&self) -> &Arc<HeaderLayout> {
        &self.layout
    }

    /// The stack composition fingerprint carried on wire messages.
    pub fn fingerprint(&self) -> u16 {
        self.fingerprint
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &StackStats {
        &self.stats
    }

    /// Whether `destroy` has completed; a destroyed stack ignores inputs.
    pub fn is_destroyed(&self) -> bool {
        self.destroyed
    }

    /// Installs a trace sink; every subsequent dispatch reports its layer
    /// crossings, frame traffic, timer arms, and deliveries through it.
    /// The sink's [`TraceSink::interested`] answer is cached here: an
    /// uninterested sink leaves dispatch on the untraced path.
    pub fn set_tracer(&mut self, tracer: Arc<dyn TraceSink>) {
        self.traced = tracer.interested();
        self.tracer = Some(tracer);
    }

    /// Removes the trace sink, returning dispatch to the untraced path.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
        self.traced = false;
    }

    /// The installed trace sink, if it wants events.  Executors clone this
    /// to report the events only they observe (frame arrival, timer
    /// firing) into the same collector; an uninterested sink reads as
    /// `None` so executors skip their event sites too.
    pub fn tracer(&self) -> Option<&Arc<dyn TraceSink>> {
        if self.traced {
            self.tracer.as_ref()
        } else {
            None
        }
    }

    /// Records one trace event, stamped with the stack's own clock.  One
    /// branch when disabled; kind construction happens at the call site,
    /// so call this only with cheap (copy/`&'static str`) payloads outside
    /// a `traced`-checked block.
    #[inline]
    fn trace(&self, kind: TraceKind) {
        if self.traced {
            if let Some(t) = &self.tracer {
                t.record(TraceEvent { at: self.now, ep: self.local, kind });
            }
        }
    }

    /// [`trace`](Self::trace) for event payloads that are expensive to
    /// build (digests, rendered strings): the construction closure runs
    /// only after the sink [`admit`](TraceSink::admit)s the event, so a
    /// sampling sink skips the build cost of the records it discards.
    #[inline]
    fn trace_lazy(&self, kind: impl FnOnce() -> TraceKind) {
        if self.traced {
            if let Some(t) = &self.tracer {
                if t.admit() {
                    t.record(TraceEvent { at: self.now, ep: self.local, kind: kind() });
                }
            }
        }
    }

    /// Duplicates the stack's full runtime state, if every layer supports
    /// snapshotting ([`Layer::clone_box`]).
    ///
    /// The clone is *behaviourally exact*: layers, RNG stream position,
    /// armed-timer bookkeeping, view, stats, and the digest caches all come
    /// along, so a cloned stack fed the same events produces the same
    /// effects — which is what lets the model checker resume exploration
    /// from snapshotted worlds instead of re-executing prefixes.  Returns
    /// `None` when any layer opts out.
    pub fn try_clone(&self) -> Option<Stack> {
        let mut layers = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            layers.push(LayerCell::new(l.get().clone_box()?));
            LAYER_CLONES.fetch_add(1, Ordering::Relaxed);
        }
        self.clone_rest(layers)
    }

    /// Copy-on-write counterpart of [`Stack::try_clone`]: shares every
    /// layer's state with the original instead of duplicating it, deferring
    /// each layer's clone to the first dispatch into it — on either stack.
    ///
    /// Behaviourally indistinguishable from a deep clone (the checker's
    /// fingerprint `debug_assert` polices this); the difference is purely
    /// when (and whether) layer state gets copied.  Returns `None` when any
    /// layer opts out of snapshotting ([`Layer::supports_snapshot`]).
    pub fn clone_cow(&self) -> Option<Stack> {
        let mut layers = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            layers.push(l.share()?);
        }
        self.clone_rest(layers)
    }

    /// The non-layer half of stack duplication, shared by the deep and CoW
    /// paths.
    fn clone_rest(&self, layers: Vec<LayerCell>) -> Option<Stack> {
        Some(Stack {
            local: self.local,
            layers,
            layout: Arc::clone(&self.layout),
            fingerprint: self.fingerprint,
            config: self.config.clone(),
            now: self.now,
            rng: self.rng.clone(),
            group: self.group,
            view: self.view.clone(),
            stats: self.stats.clone(),
            destroyed: self.destroyed,
            // Dispatch scratch space is drained to empty before any public
            // entry point returns, so the clone starts with fresh buffers.
            scratch: VecDeque::new(),
            emit_buf: Vec::new(),
            layer_digests: self.layer_digests.clone(),
            layer_dirty: self.layer_dirty.clone(),
            view_digest: self.view_digest.clone(),
            view_dirty: self.view_dirty.clone(),
            tracer: self.tracer.clone(),
            traced: self.traced,
        })
    }

    /// Layer names, top first.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.get().name()).collect()
    }

    /// Creates an application message against this stack's layout.
    pub fn new_message(&self, body: impl Into<Bytes>) -> Message {
        Message::new(self.layout.clone(), body)
    }

    /// Sets the stack's notion of "now".  Executors call this before
    /// [`Stack::handle`] whenever virtual or real time has advanced.
    /// Monotone: an older timestamp (possible under the threaded executor,
    /// where inputs are timestamped at enqueue time) is ignored.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    /// Current virtual time as last told by the executor.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The `focus` downcall of Table 1: a state report from the named layer.
    pub fn focus(&self, name: &str) -> Option<String> {
        self.layers.iter().find(|l| l.get().name() == name).map(|l| l.get().dump())
    }

    /// Typed `focus`: borrow a layer's concrete type (layers opt in through
    /// [`Layer::as_any`]).
    pub fn focus_as<T: 'static>(&self, name: &str) -> Option<&T> {
        self.layers
            .iter()
            .find(|l| l.get().name() == name)
            .and_then(|l| l.get().as_any())
            .and_then(|a| a.downcast_ref::<T>())
    }

    /// The `dump` downcall: every layer's state report, top first.
    pub fn dump(&self) -> Vec<(&'static str, String)> {
        self.layers.iter().map(|l| (l.get().name(), l.get().dump())).collect()
    }

    /// Total [`Layer::pending_work`] across the stack: how much state still
    /// obliges some layer to act.  `0` means the stack is fully drained —
    /// the condition liveness monitors demand once the network is quiet.
    pub fn pending_work(&self) -> u64 {
        self.layers.iter().map(|l| l.get().pending_work()).sum()
    }

    /// Feeds this stack's protocol state into a model-checking digest: the
    /// endpoint identity, lifecycle flags, current view, and one 64-bit
    /// digest per layer (the layer's name plus its [`Layer::digest_state`]
    /// contribution), top first.  This is the **from-scratch** path; it must
    /// stay bit-identical to [`Stack::state_digest_cached`], which the
    /// differential test in `tests/check_fingerprint.rs` enforces.
    ///
    /// Two caveats the checker documents: the per-stack jitter RNG is not
    /// part of the digest (two merged states may diverge in future jitter
    /// draws), and layers that rely on the default `dump`-based digest are
    /// only as discriminating as their dump string.
    pub fn state_digest_into(&self, d: &mut crate::digest::StateDigest) {
        self.digest_meta(d, self.view_digest_fresh());
        for i in 0..self.layers.len() {
            d.write_u64(self.layer_digest_fresh(i));
        }
    }

    /// The 64-bit state digest ([`Stack::state_digest_into`] finished).
    pub fn state_digest(&self) -> u64 {
        let mut d = crate::digest::StateDigest::new();
        self.state_digest_into(&mut d);
        d.finish()
    }

    /// The incremental counterpart of [`Stack::state_digest`]: per-layer
    /// digests are served from the cache and only layers dispatched into
    /// since the last call are re-digested.  Bit-identical to the
    /// from-scratch path by construction — both combine the same per-layer
    /// digests in the same order — provided the dirty-marking invariant
    /// holds (see the `layer_digests` field).
    pub fn state_digest_cached(&self) -> u64 {
        if self.view_dirty.get() {
            self.view_digest.set(self.view_digest_fresh());
            self.view_dirty.set(false);
        }
        let mut d = crate::digest::StateDigest::new();
        self.digest_meta(&mut d, self.view_digest.get());
        for i in 0..self.layers.len() {
            if self.layer_dirty[i].get() {
                self.layer_digests[i].set(self.layer_digest_fresh(i));
                self.layer_dirty[i].set(false);
            }
            d.write_u64(self.layer_digests[i].get());
        }
        d.finish()
    }

    /// The scalar stack fields every digest starts with.  `group` and
    /// `destroyed` are plain integers, so they are digested fresh each time;
    /// only the view (a `format!`) is worth caching.
    fn digest_meta(&self, d: &mut crate::digest::StateDigest, view_digest: u64) {
        d.write_u64(self.local.raw());
        d.write_u64(self.fingerprint as u64);
        d.write_u64(self.destroyed as u64);
        d.write_u64(self.group.map(|g| g.raw()).unwrap_or(0));
        d.write_u64(view_digest);
    }

    fn view_digest_fresh(&self) -> u64 {
        let mut vd = crate::digest::StateDigest::new();
        match &self.view {
            Some(v) => vd.write_str(&v.to_string()),
            None => vd.write_str("-"),
        }
        vd.finish()
    }

    fn layer_digest_fresh(&self, i: usize) -> u64 {
        let mut ld = crate::digest::StateDigest::new();
        ld.write_str(self.layers[i].get().name());
        self.layers[i].get().digest_state(&mut ld);
        ld.finish()
    }

    /// Runs every layer's [`Layer::on_init`].  Executors must call this
    /// exactly once, before any input, and perform the returned effects
    /// (layers arm their periodic timers here).
    pub fn init(&mut self) -> Vec<Effect> {
        let mut effects = Vec::new();
        for i in 0..self.layers.len() {
            self.layer_dirty[i].set(true);
            let mut emitted = std::mem::take(&mut self.emit_buf);
            let mut ctx = LayerCtx {
                layer: i,
                now: self.now,
                local: self.local,
                layout: &self.layout,
                rng: &mut self.rng,
                emitted: &mut emitted,
                stats: &mut self.stats,
            };
            self.layers[i].make_mut().on_init(&mut ctx);
            self.absorb(i, &mut emitted, &mut effects);
            self.emit_buf = emitted;
            self.drain(&mut effects);
        }
        effects
    }

    /// Feeds one input through the stack, returning the effects to perform.
    ///
    /// Thin shim over [`Stack::handle_into`] that allocates a fresh effect
    /// vector per call.  Convenient for tests and cold paths; executors on
    /// the hot path should keep a reusable [`EffectSink`] instead.
    pub fn handle(&mut self, input: StackInput) -> Vec<Effect> {
        let mut sink = EffectSink::new();
        self.handle_into(input, &mut sink);
        sink.into_effects()
    }

    /// Drains a burst of inputs through the stack in one pass, appending all
    /// effects to `sink` in order.
    ///
    /// Exactly equivalent to calling [`Stack::handle_into`] once per input in
    /// sequence — each input still runs to completion before the next starts,
    /// so batching is observationally invisible (the batch differential test
    /// holds this to byte-identical effects).  What the batch buys is
    /// amortization: one warm effect sink, warm scratch and emission buffers,
    /// and one executor round-trip for the whole burst instead of a
    /// `Vec<Effect>` allocation and effect walk per event.
    pub fn handle_batch(
        &mut self,
        inputs: impl IntoIterator<Item = StackInput>,
        sink: &mut EffectSink,
    ) {
        self.stats.batches += 1;
        for input in inputs {
            self.stats.batched_inputs += 1;
            self.handle_into(input, sink);
        }
    }

    /// Feeds one input through the stack, appending the effects to perform
    /// to `sink` (which is *not* cleared first — executors drain it).
    ///
    /// This is the single scheduler of the event-queue execution model: the
    /// internal work queue drains completely before `handle_into` returns, so
    /// one input's processing is never interleaved with another's.
    pub fn handle_into(&mut self, input: StackInput, sink: &mut EffectSink) {
        let scratch_cap = self.scratch.capacity();
        let emit_cap = self.emit_buf.capacity();
        let effects = sink.buf();
        if self.destroyed {
            return;
        }
        match input {
            StackInput::FromApp(Down::Dump) => {
                // The dump downcall is answered by the runtime on behalf of
                // every layer, so even passive layers appear.
                for l in &self.layers {
                    let l = l.get();
                    effects.push(Effect::Deliver(Up::DumpInfo { layer: l.name(), info: l.dump() }));
                }
                return;
            }
            StackInput::FromApp(down) => {
                if let Down::Join { group } = &down {
                    self.group = Some(*group);
                }
                match self.first_active_down(0) {
                    Some(i) => self.scratch.push_back((i, Item::Down(down))),
                    None => self.bottom_out(down, effects),
                }
            }
            StackInput::FromNet { from, cast, wire } => {
                self.stats.bytes_received += wire.len() as u64;
                match self.decode_frame(&wire) {
                    Ok(mut msg) => {
                        self.stats.msgs_received += 1;
                        msg.meta.src = Some(from);
                        let up = if cast {
                            Up::Cast { src: from, msg }
                        } else {
                            Up::Send { src: from, msg }
                        };
                        let n = self.layers.len();
                        match self.first_active_up(n - 1) {
                            Some(i) => self.scratch.push_back((i, Item::Up(up))),
                            None => self.top_out(up, effects),
                        }
                    }
                    Err(e) => {
                        let reason = if matches!(e, FrameError::Fingerprint) {
                            self.stats.fingerprint_drops += 1;
                            DropReason::Fingerprint
                        } else {
                            self.stats.decode_drops += 1;
                            DropReason::Decode
                        };
                        self.trace(TraceKind::FrameDrop { digest: 0, seq: 0, reason });
                        effects.push(Effect::Trace(format!(
                            "{}: dropped wire message from {from}: {e}",
                            self.local
                        )));
                    }
                }
            }
            StackInput::Timer { layer, token, now } => {
                self.set_now(now);
                if layer < self.layers.len() {
                    self.scratch.push_back((layer, Item::Timer(token)));
                }
            }
            StackInput::Tick { now } => {
                self.set_now(now);
            }
        }
        self.drain(effects);
        if self.scratch.capacity() > scratch_cap || self.emit_buf.capacity() > emit_cap {
            self.stats.dispatch_buf_grows += 1;
        }
    }

    /// Index of the first non-skipped layer at or below `i` (toward the
    /// network).
    fn first_active_down(&self, i: usize) -> Option<usize> {
        if !self.config.skip_passive {
            return (i < self.layers.len()).then_some(i);
        }
        (i..self.layers.len()).find(|&j| !self.layers[j].get().is_passive())
    }

    /// Index of the first non-skipped layer at or above `i` (toward the
    /// application).
    fn first_active_up(&self, i: usize) -> Option<usize> {
        if !self.config.skip_passive {
            return Some(i);
        }
        (0..=i).rev().find(|&j| !self.layers[j].get().is_passive())
    }

    fn drain(&mut self, effects: &mut Vec<Effect>) {
        while let Some((idx, item)) = self.scratch.pop_front() {
            self.stats.dispatches += 1;
            self.layer_dirty[idx].set(true);
            // Occupancy: the popped item plus whatever is still queued.
            self.stats.scratch_peak = self.stats.scratch_peak.max(self.scratch.len() as u64 + 1);
            {
                let traffic = &mut self.stats.per_layer[idx];
                match &item {
                    Item::Down(_) => traffic.downs += 1,
                    Item::Up(_) => traffic.ups += 1,
                    Item::Timer(_) => traffic.timers += 1,
                }
            }
            if self.traced {
                let layer = self.layers[idx].get().name();
                self.trace(match &item {
                    Item::Down(_) => TraceKind::LayerDown { layer },
                    Item::Up(_) => TraceKind::LayerUp { layer },
                    Item::Timer(token) => TraceKind::LayerTimer { layer, token: *token },
                });
            }
            let mut emitted = std::mem::take(&mut self.emit_buf);
            let mut ctx = LayerCtx {
                layer: idx,
                now: self.now,
                local: self.local,
                layout: &self.layout,
                rng: &mut self.rng,
                emitted: &mut emitted,
                stats: &mut self.stats,
            };
            match item {
                Item::Down(ev) => self.layers[idx].make_mut().on_down(ev, &mut ctx),
                Item::Up(ev) => self.layers[idx].make_mut().on_up(ev, &mut ctx),
                Item::Timer(token) => self.layers[idx].make_mut().on_timer(token, &mut ctx),
            }
            self.absorb(idx, &mut emitted, effects);
            self.emit_buf = emitted;
        }
    }

    /// Routes what layer `idx` emitted: to neighbouring layers' queues or to
    /// executor effects.
    fn absorb(&mut self, idx: usize, emitted: &mut Vec<Emit>, effects: &mut Vec<Effect>) {
        if self.config.skip_passive {
            // Count what the skip optimization saved: each emitted event
            // would otherwise visit every passive neighbour it bypasses.
            for e in emitted.iter() {
                match e {
                    Emit::Down(_) => {
                        let next = self.first_active_down(idx + 1).unwrap_or(self.layers.len());
                        self.stats.skipped += (next - (idx + 1)) as u64;
                    }
                    Emit::Up(_) if idx > 0 => {
                        let next = self.first_active_up(idx - 1).map(|j| j + 1).unwrap_or(0);
                        self.stats.skipped += (idx - next) as u64;
                    }
                    _ => {}
                }
            }
        }
        for e in emitted.drain(..) {
            match e {
                Emit::Down(ev) => match self.first_active_down(idx + 1) {
                    Some(j) => self.scratch.push_back((j, Item::Down(ev))),
                    None => self.bottom_out(ev, effects),
                },
                Emit::Up(ev) => {
                    let dest = if idx == 0 { None } else { self.first_active_up(idx - 1) };
                    match dest {
                        Some(j) => self.scratch.push_back((j, Item::Up(ev))),
                        None => self.top_out(ev, effects),
                    }
                }
                Emit::Timer { token, delay } => {
                    self.trace(TraceKind::TimerArm {
                        layer: idx,
                        token,
                        delay_us: delay.as_micros() as u64,
                    });
                    effects.push(Effect::SetTimer { layer: idx, token, delay });
                }
                Emit::Trace(t) => {
                    self.trace_lazy(|| TraceKind::Note(t.clone()));
                    effects.push(Effect::Trace(t));
                }
            }
        }
    }

    /// A downcall fell off the bottom of the stack: convert to transport
    /// effects.
    fn bottom_out(&mut self, ev: Down, effects: &mut Vec<Effect>) {
        match ev {
            Down::Cast(msg) => {
                let wire = self.encode_frame(&msg);
                self.stats.msgs_sent += 1;
                self.stats.bytes_sent += wire.len() as u64;
                self.stats.header_bytes_sent += msg.header_wire_len() as u64;
                self.trace(TraceKind::FrameSend { cast: true, bytes: wire.len() });
                effects.push(Effect::NetCast { wire });
            }
            Down::Send { dests, msg } => {
                let wire = self.encode_frame(&msg);
                self.stats.msgs_sent += 1;
                self.stats.bytes_sent += wire.len() as u64;
                self.stats.header_bytes_sent += msg.header_wire_len() as u64;
                self.trace(TraceKind::FrameSend { cast: false, bytes: wire.len() });
                effects.push(Effect::NetSend { dests, wire });
            }
            Down::Join { group } => effects.push(Effect::NetJoin { group }),
            Down::Leave => effects.push(Effect::NetLeave),
            Down::Destroy => {
                self.destroyed = true;
                self.scratch.clear();
                effects.push(Effect::NetLeave);
                effects.push(Effect::Deliver(Up::Destroy));
            }
            // Control downcalls consumed by protocol layers; reaching the
            // bottom means no layer in this composition implements them.
            other => effects.push(Effect::Trace(format!(
                "{}: downcall `{}` fell off the bottom of the stack unconsumed",
                self.local,
                other.kind()
            ))),
        }
    }

    /// An upcall crossed the top of the stack: deliver to the application.
    fn top_out(&mut self, ev: Up, effects: &mut Vec<Effect>) {
        if let Up::View(v) = &ev {
            self.view = Some(v.clone());
            self.view_dirty.set(true);
            self.trace_lazy(|| TraceKind::ViewInstall { view: v.to_string() });
        }
        // Delivery identity: `(src, content digest)` is executor- and
        // timestamp-independent, so cross-executor determinism checks
        // compare it directly.
        self.trace_lazy(|| {
            let (src, digest) = match &ev {
                Up::Cast { src, msg } | Up::Send { src, msg } => {
                    let mut d = StateDigest::new();
                    d.write_u64(src.raw());
                    d.write_bytes(msg.body());
                    (src.raw(), d.finish())
                }
                _ => (0, 0),
            };
            TraceKind::Deliver { kind: ev.kind(), src, digest }
        });
        effects.push(Effect::Deliver(ev));
    }

    /// Frame: `[u16 fingerprint][u32 checksum][u16 hdr_len][hdr][body]`,
    /// carried as a scatter-gather [`WireFrame`] whose head (envelope +
    /// header area) is built here in a single exact-capacity allocation and
    /// whose body *is* the message body — the application's payload `Bytes`
    /// reaches the transport by reference, never by copy.
    ///
    /// The checksum covers `hdr_len|hdr|body` (computed streaming over the
    /// two segments) — the link-level CRC every real datagram network
    /// provides, and what makes the COM/frame level's byte re-ordering
    /// detection (P10) actually true over the garbling simulated network.
    fn encode_frame(&self, msg: &Message) -> WireFrame {
        WireFrame::build(self.fingerprint, msg.header_area(), msg.body().clone())
    }

    fn decode_frame(&self, frame: &WireFrame) -> Result<Message, FrameError> {
        let (head, body) = frame
            .canonical_parts()
            .ok_or_else(|| FrameError::Malformed("frame shorter than its envelope".into()))?;
        let fp = u16::from_le_bytes([head[0], head[1]]);
        if fp != self.fingerprint {
            return Err(FrameError::Fingerprint);
        }
        let sum = u32::from_le_bytes([head[2], head[3], head[4], head[5]]);
        let mut ck = FrameChecksum::new();
        ck.update(&head[6..]);
        ck.update(&body);
        if sum != ck.finish() {
            return Err(FrameError::Malformed("frame checksum mismatch (garbled)".into()));
        }
        // Zero-copy receive: the body segment is attached to the decoded
        // message as-is.
        Message::decode_parts(self.layout.clone(), &head[ENVELOPE_BYTES..], body)
            .map_err(|e| FrameError::Malformed(e.to_string()))
    }
}

#[derive(Debug)]
enum FrameError {
    Fingerprint,
    Malformed(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Fingerprint => write!(f, "stack fingerprint mismatch"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack")
            .field("local", &self.local)
            .field("layers", &self.layer_names())
            .field("mode", &self.config.mode)
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::FieldSpec;

    #[derive(Debug, Default)]
    struct Nop;
    impl Layer for Nop {
        fn name(&self) -> &'static str {
            "NOP"
        }
        fn is_passive(&self) -> bool {
            true
        }
    }

    /// A layer that stamps a sequence number on casts.
    #[derive(Debug, Default)]
    struct Seq {
        next: u64,
        seen: Vec<u64>,
    }
    const SEQ_FIELDS: &[FieldSpec] = &[FieldSpec::new("seq", 32)];
    impl Layer for Seq {
        fn name(&self) -> &'static str {
            "SEQ"
        }
        fn header_fields(&self) -> &'static [FieldSpec] {
            SEQ_FIELDS
        }
        fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
            match ev {
                Down::Cast(mut msg) => {
                    ctx.stamp(&mut msg);
                    ctx.set(&mut msg, 0, self.next);
                    self.next += 1;
                    ctx.down(Down::Cast(msg));
                }
                other => ctx.down(other),
            }
        }
        fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
            match ev {
                Up::Cast { src, mut msg } => {
                    ctx.open(&mut msg).unwrap();
                    self.seen.push(ctx.get(&msg, 0));
                    ctx.up(Up::Cast { src, msg });
                }
                other => ctx.up(other),
            }
        }
        fn dump(&self) -> String {
            format!("next={} seen={}", self.next, self.seen.len())
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn two_layer_stack(mode: HeaderMode) -> Stack {
        StackBuilder::new(ep(1))
            .push(Box::new(Seq::default()))
            .push(Box::new(Nop))
            .mode(mode)
            .build()
            .unwrap()
    }

    #[test]
    fn cast_falls_out_the_bottom_as_netcast() {
        let mut s = two_layer_stack(HeaderMode::Compact);
        let m = s.new_message(&b"hi"[..]);
        let fx = s.handle(StackInput::FromApp(Down::Cast(m)));
        assert_eq!(fx.len(), 1);
        assert!(matches!(fx[0], Effect::NetCast { .. }));
        assert_eq!(s.stats().msgs_sent, 1);
    }

    #[test]
    fn loopback_roundtrip_preserves_body_and_fields() {
        for mode in [HeaderMode::Compact, HeaderMode::Aligned] {
            let mut a = two_layer_stack(mode);
            let mut b = StackBuilder::new(ep(2))
                .push(Box::new(Seq::default()))
                .push(Box::new(Nop))
                .mode(mode)
                .build()
                .unwrap();
            let m = a.new_message(&b"payload"[..]);
            let fx = a.handle(StackInput::FromApp(Down::Cast(m)));
            let wire = match &fx[0] {
                Effect::NetCast { wire } => wire.clone(),
                other => panic!("unexpected {other:?}"),
            };
            let fx = b.handle(StackInput::FromNet { from: ep(1), cast: true, wire });
            let delivered = fx
                .iter()
                .find_map(|e| match e {
                    Effect::Deliver(Up::Cast { src, msg }) => Some((*src, msg.clone())),
                    _ => None,
                })
                .expect("delivery");
            assert_eq!(delivered.0, ep(1));
            assert_eq!(delivered.1.body(), &b"payload"[..]);
            let seq: &Seq = b.focus_as("SEQ").unwrap();
            assert_eq!(seq.seen, vec![0]);
        }
    }

    #[test]
    fn transmitted_body_shares_storage_with_app_payload() {
        // The scatter-gather frame ships the application's Bytes by
        // reference: same backing storage at the transport boundary, and
        // again on the receiving stack's delivered message.
        let mut a = two_layer_stack(HeaderMode::Compact);
        let mut b = StackBuilder::new(ep(2))
            .push(Box::new(Seq::default()))
            .push(Box::new(Nop))
            .build()
            .unwrap();
        let payload = Bytes::from(vec![0xAB; 256]);
        let m = a.new_message(payload.clone());
        let fx = a.handle(StackInput::FromApp(Down::Cast(m)));
        let wire = match &fx[0] {
            Effect::NetCast { wire } => wire.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(wire.body().as_ptr(), payload.as_ptr());
        assert_eq!(a.stats().payload_copies, 0);
        let fx = b.handle(StackInput::FromNet { from: ep(1), cast: true, wire });
        let delivered = fx
            .iter()
            .find_map(|e| match e {
                Effect::Deliver(Up::Cast { msg, .. }) => Some(msg.clone()),
                _ => None,
            })
            .expect("delivery");
        assert_eq!(delivered.body().as_ptr(), payload.as_ptr());
        assert_eq!(b.stats().payload_copies, 0);
    }

    #[test]
    fn fingerprint_mismatch_drops() {
        let mut a = two_layer_stack(HeaderMode::Compact);
        // A stack with different composition.
        let mut b = StackBuilder::new(ep(2)).push(Box::new(Nop)).build().unwrap();
        let m = a.new_message(&b"x"[..]);
        let fx = a.handle(StackInput::FromApp(Down::Cast(m)));
        let wire = match &fx[0] {
            Effect::NetCast { wire } => wire.clone(),
            _ => unreachable!(),
        };
        let fx = b.handle(StackInput::FromNet { from: ep(1), cast: true, wire });
        assert!(fx.iter().all(|e| matches!(e, Effect::Trace(_))));
        assert_eq!(b.stats().fingerprint_drops, 1);
    }

    #[test]
    fn skip_passive_counts_saved_dispatches() {
        let build = |skip| {
            StackBuilder::new(ep(1))
                .push(Box::new(Seq::default()))
                .push(Box::new(Nop))
                .push(Box::new(Nop))
                .push(Box::new(Nop))
                .skip_passive(skip)
                .build()
                .unwrap()
        };
        let mut skipping = build(true);
        let mut plain = build(false);
        for s in [&mut skipping, &mut plain] {
            let m = s.new_message(&b"x"[..]);
            let _ = s.handle(StackInput::FromApp(Down::Cast(m)));
        }
        assert!(skipping.stats().dispatches < plain.stats().dispatches);
        assert_eq!(skipping.stats().skipped, 3);
    }

    #[test]
    fn dump_reports_every_layer() {
        let mut s = two_layer_stack(HeaderMode::Compact);
        let fx = s.handle(StackInput::FromApp(Down::Dump));
        let names: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Deliver(Up::DumpInfo { layer, .. }) => Some(*layer),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["SEQ", "NOP"]);
        assert_eq!(s.focus("SEQ").unwrap(), "next=0 seen=0");
        assert!(s.focus("MISSING").is_none());
    }

    #[test]
    fn destroy_is_terminal() {
        let mut s = two_layer_stack(HeaderMode::Compact);
        let fx = s.handle(StackInput::FromApp(Down::Destroy));
        assert!(fx.iter().any(|e| matches!(e, Effect::Deliver(Up::Destroy))));
        assert!(fx.iter().any(|e| matches!(e, Effect::NetLeave)));
        assert!(s.is_destroyed());
        let m = s.new_message(&b"x"[..]);
        assert!(s.handle(StackInput::FromApp(Down::Cast(m))).is_empty());
    }

    #[test]
    fn join_records_group_and_reaches_transport() {
        let mut s = two_layer_stack(HeaderMode::Compact);
        let fx = s.handle(StackInput::FromApp(Down::Join { group: GroupAddr::new(5) }));
        assert!(matches!(fx[0], Effect::NetJoin { group } if group == GroupAddr::new(5)));
        assert_eq!(s.group(), Some(GroupAddr::new(5)));
    }

    #[test]
    fn unconsumed_control_downcall_traced() {
        let mut s = two_layer_stack(HeaderMode::Compact);
        let fx = s.handle(StackInput::FromApp(Down::FlushOk));
        assert!(matches!(&fx[0], Effect::Trace(t) if t.contains("flush_ok")));
    }

    #[test]
    fn empty_stack_rejected() {
        assert!(StackBuilder::new(ep(1)).build().is_err());
    }

    #[test]
    fn fingerprints_differ_across_modes_and_compositions() {
        let a = two_layer_stack(HeaderMode::Compact).fingerprint();
        let b = two_layer_stack(HeaderMode::Aligned).fingerprint();
        let c = StackBuilder::new(ep(1)).push(Box::new(Nop)).build().unwrap().fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn cached_digest_matches_fresh_across_mutations() {
        let mut a = two_layer_stack(HeaderMode::Compact);
        let mut b = StackBuilder::new(ep(2))
            .push(Box::new(Seq::default()))
            .push(Box::new(Nop))
            .build()
            .unwrap();
        assert_eq!(a.state_digest_cached(), a.state_digest(), "fresh build");
        let before = a.state_digest_cached();
        let m = a.new_message(&b"hi"[..]);
        let fx = a.handle(StackInput::FromApp(Down::Cast(m)));
        assert_eq!(a.state_digest_cached(), a.state_digest(), "after a cast");
        assert_ne!(a.state_digest_cached(), before, "SEQ state advanced");
        let wire = match &fx[0] {
            Effect::NetCast { wire } => wire.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let _ = b.handle(StackInput::FromNet { from: ep(1), cast: true, wire });
        assert_eq!(b.state_digest_cached(), b.state_digest(), "after a receive");
        let _ = b.handle(StackInput::FromApp(Down::Destroy));
        assert_eq!(b.state_digest_cached(), b.state_digest(), "after destroy");
    }

    #[test]
    fn timer_roundtrip() {
        /// Arms a timer on init and counts expirations.
        #[derive(Debug, Default)]
        struct Ticker {
            fired: u64,
        }
        impl Layer for Ticker {
            fn name(&self) -> &'static str {
                "TICK"
            }
            fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
                ctx.set_timer(std::time::Duration::from_millis(10), 7);
            }
            fn on_timer(&mut self, token: u64, _ctx: &mut LayerCtx<'_>) {
                assert_eq!(token, 7);
                self.fired += 1;
            }
            fn dump(&self) -> String {
                format!("fired={}", self.fired)
            }
        }
        let mut s = StackBuilder::new(ep(1)).push(Box::new(Ticker::default())).build().unwrap();
        let fx = s.init();
        let (layer, token) = fx
            .iter()
            .find_map(|e| match e {
                Effect::SetTimer { layer, token, .. } => Some((*layer, *token)),
                _ => None,
            })
            .expect("timer armed at init");
        let _ = s.handle(StackInput::Timer { layer, token, now: SimTime::from_millis(10) });
        assert_eq!(s.focus("TICK").unwrap(), "fired=1");
        assert_eq!(s.now(), SimTime::from_millis(10));
    }
}
