//! The tracing hook: a cheap, structured record of everything a stack does.
//!
//! [`TraceSink`] is the single seam through which the whole runtime —
//! [`Stack`](crate::stack::Stack) dispatch in this crate, the simulated and
//! loopback transports in `horus-net`, and all three executors in
//! `horus-sim` — reports structured events: layer crossings, frame
//! send/deliver/drop, timer arm/fire, view installs, crashes, suspicions.
//! Sink implementations live in `horus-trace` (a lock-free ring for the
//! real-time executors, an ordered vector-clock-stamped log for the
//! virtual-time world); this module defines only the trait and the event
//! vocabulary so every crate below `horus-trace` can *emit* without
//! depending on any collector.
//!
//! The cost contract: with no sink installed the hooks compile to one
//! `Option` branch per event site — no allocation, no formatting, no
//! atomic.  Event payloads are built from values already at hand
//! (`&'static str` layer names, copy-size integers); anything that would
//! cost an allocation (view strings, payload digests) is computed *inside*
//! the `Some` arm only.

use crate::addr::EndpointAddr;
use crate::time::SimTime;
use std::fmt;

/// One `(actor, count)` component of a vector clock, as threaded through
/// the deterministic simulator's per-event causality tracking.
pub type ClockEntry = (u64, u64);

/// A consumer of trace events.
///
/// `record` must be cheap and non-blocking from the caller's point of view
/// (the hot paths call it with locks held); sinks that need ordering or
/// aggregation buffer internally.  `Debug` is a supertrait so structures
/// that carry a sink (`SimNetwork`, `Stack`) keep their derived `Debug`.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Records one event.
    fn record(&self, ev: TraceEvent);

    /// Announces the vector clock of the causal context the *next* records
    /// belong to.  Only the virtual-time simulator calls this (it is where
    /// the per-event clocks live); sinks that don't stamp clocks — the
    /// real-time rings — keep the default no-op.
    fn set_clock(&self, _clock: &[ClockEntry]) {}

    /// Whether this sink will ever keep a record.  [`Stack::set_tracer`]
    /// caches the answer and a `false` routes dispatch down the untraced
    /// path — no event construction, no digesting, no virtual call — so a
    /// [`NullSink`] costs the same as no sink at all.
    ///
    /// [`Stack::set_tracer`]: crate::stack::Stack::set_tracer
    fn interested(&self) -> bool {
        true
    }
}

/// A structured trace event: where, when, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time: virtual time under the simulator, executor-epoch elapsed
    /// time under the threaded/sharded executors.
    pub at: SimTime,
    /// The endpoint the event concerns (`ep:0` for world-global events —
    /// partitions, heals, fault rules).
    pub ep: EndpointAddr,
    /// What happened.
    pub kind: TraceKind,
}

/// Why a frame was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Decode failure (malformed header, truncation).
    Decode,
    /// Stack-layout fingerprint mismatch.
    Fingerprint,
    /// Induced by a controlled scheduler (`SimWorld::drop_pending`).
    Induced,
    /// Network physics: the loss dice.
    Loss,
    /// Network physics: a partition (region or fault-rule cut).
    Partition,
    /// Network physics: frame over the configured MTU.
    Mtu,
    /// Transport: the receiver was never registered, or its channel closed.
    Unroutable,
}

impl DropReason {
    /// Stable lower-case name used by the trace file format.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Decode => "decode",
            DropReason::Fingerprint => "fingerprint",
            DropReason::Induced => "induced",
            DropReason::Loss => "loss",
            DropReason::Partition => "partition",
            DropReason::Mtu => "mtu",
            DropReason::Unroutable => "unroutable",
        }
    }
}

/// The event vocabulary.
///
/// Calendar-fire kinds (`FrameDeliver`, `TimerFire`, `AppDown`, `Crash`,
/// `Suspect`, `Partition`, `Heal`, `Fault`) carry the pending event's
/// run-independent payload `digest` and its calendar sequence number `seq`
/// when recorded by the virtual-time simulator — the identity the
/// trace→schedule bridge matches ready-set options against.  The real-time
/// executors record the same kinds with `digest`/`seq` zero (they have no
/// calendar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A layer handled a downward item.
    LayerDown {
        /// The layer's registry name.
        layer: &'static str,
    },
    /// A layer handled an upward item.
    LayerUp {
        /// The layer's registry name.
        layer: &'static str,
    },
    /// A layer handled its own timer.
    LayerTimer {
        /// The layer's registry name.
        layer: &'static str,
        /// The layer-chosen timer token.
        token: u64,
    },
    /// A frame left the bottom of a stack toward the network.
    FrameSend {
        /// Multicast (`true`) or point-to-point.
        cast: bool,
        /// Encoded wire length.
        bytes: usize,
    },
    /// A frame arrived at a stack from the network.
    FrameDeliver {
        /// Transport-level sender.
        from: EndpointAddr,
        /// Multicast (`true`) or point-to-point.
        cast: bool,
        /// Encoded wire length.
        bytes: usize,
        /// Pending-event payload digest (simulator only; 0 otherwise).
        digest: u64,
        /// Calendar sequence number (simulator only; 0 otherwise).
        seq: u64,
    },
    /// A frame was dropped (physics, decode, or induced).
    FrameDrop {
        /// Pending-event payload digest when known (0 otherwise).
        digest: u64,
        /// Calendar sequence number when known (0 otherwise).
        seq: u64,
        /// Why.
        reason: DropReason,
    },
    /// A layer armed a timer.
    TimerArm {
        /// Index of the arming layer within its stack.
        layer: usize,
        /// The layer-chosen timer token.
        token: u64,
        /// Delay until it fires, in microseconds.
        delay_us: u64,
    },
    /// A timer fired into a stack.
    TimerFire {
        /// Index of the owning layer within its stack.
        layer: usize,
        /// The layer-chosen timer token.
        token: u64,
        /// Pending-event payload digest (simulator only; 0 otherwise).
        digest: u64,
        /// Calendar sequence number (simulator only; 0 otherwise).
        seq: u64,
    },
    /// A scripted application downcall fired into a stack.
    AppDown {
        /// The downcall's kind name (`Down::kind`).
        kind: &'static str,
        /// Pending-event payload digest (simulator only; 0 otherwise).
        digest: u64,
        /// Calendar sequence number (simulator only; 0 otherwise).
        seq: u64,
    },
    /// A stack delivered an upcall to the application.
    Deliver {
        /// The upcall's kind name (`Up::kind`).
        kind: &'static str,
        /// Sender for `CAST`/`SEND` upcalls (0 otherwise).
        src: u64,
        /// Content digest for `CAST`/`SEND` upcalls (0 otherwise) — the
        /// executor-independent delivery identity the cross-executor
        /// determinism projection compares.
        digest: u64,
    },
    /// A stack installed a view.
    ViewInstall {
        /// The view, rendered (`group[vN@coord m1 m2 ...]`).
        view: String,
    },
    /// A scripted crash fired from the calendar.
    Crash {
        /// Pending-event payload digest (0 outside the simulator).
        digest: u64,
        /// Calendar sequence number (0 outside the simulator).
        seq: u64,
    },
    /// A scripted suspicion fired from the calendar.
    Suspect {
        /// The endpoint being suspected.
        target: EndpointAddr,
        /// Pending-event payload digest (0 outside the simulator).
        digest: u64,
        /// Calendar sequence number (0 outside the simulator).
        seq: u64,
    },
    /// A scheduler-injected crash (`Step::Crash`), outside the calendar.
    InjectCrash,
    /// A scheduler-injected suspicion (`Step::Suspect`).
    InjectSuspect {
        /// The endpoint being told.
        observer: EndpointAddr,
        /// The endpoint it will suspect.
        target: EndpointAddr,
    },
    /// A scripted partition fired (world-global; `ep` is `ep:0`).
    Partition {
        /// Pending-event payload digest.
        digest: u64,
        /// Calendar sequence number.
        seq: u64,
    },
    /// A scripted heal fired (world-global).
    Heal {
        /// Pending-event payload digest.
        digest: u64,
        /// Calendar sequence number.
        seq: u64,
    },
    /// A fault-plan rule installation fired (world-global).
    Fault {
        /// Pending-event payload digest.
        digest: u64,
        /// Calendar sequence number.
        seq: u64,
    },
    /// A free-text layer trace (`Emit::Trace` / `Effect::Trace`).
    Note(String),
}

impl TraceKind {
    /// Stable kind name used by the trace file format.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::LayerDown { .. } => "layer-down",
            TraceKind::LayerUp { .. } => "layer-up",
            TraceKind::LayerTimer { .. } => "layer-timer",
            TraceKind::FrameSend { .. } => "frame-send",
            TraceKind::FrameDeliver { .. } => "frame-deliver",
            TraceKind::FrameDrop { .. } => "frame-drop",
            TraceKind::TimerArm { .. } => "timer-arm",
            TraceKind::TimerFire { .. } => "timer-fire",
            TraceKind::AppDown { .. } => "app-down",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::ViewInstall { .. } => "view-install",
            TraceKind::Crash { .. } => "crash",
            TraceKind::Suspect { .. } => "suspect",
            TraceKind::InjectCrash => "inject-crash",
            TraceKind::InjectSuspect { .. } => "inject-suspect",
            TraceKind::Partition { .. } => "partition",
            TraceKind::Heal { .. } => "heal",
            TraceKind::Fault { .. } => "fault",
            TraceKind::Note(_) => "note",
        }
    }
}

/// A sink that discards everything.  It declares itself un-[`interested`],
/// so installing it is indistinguishable from installing no sink: the
/// stack caches the answer and never constructs an event — which is what
/// the disabled-overhead gate in `trace_smoke` measures.
///
/// [`interested`]: TraceSink::interested
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}

    fn interested(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceKind::LayerDown { layer: "COM" }.name(), "layer-down");
        assert_eq!(TraceKind::Note("x".into()).name(), "note");
        assert_eq!(DropReason::Fingerprint.name(), "fingerprint");
    }

    #[test]
    fn null_sink_is_a_trace_sink() {
        let s: &dyn TraceSink = &NullSink;
        s.record(TraceEvent {
            at: SimTime::ZERO,
            ep: EndpointAddr::new(1),
            kind: TraceKind::InjectCrash,
        });
        s.set_clock(&[(1, 2)]);
    }
}
