//! The tracing hook: a cheap, structured record of everything a stack does.
//!
//! [`TraceSink`] is the single seam through which the whole runtime —
//! [`Stack`](crate::stack::Stack) dispatch in this crate, the simulated and
//! loopback transports in `horus-net`, and all three executors in
//! `horus-sim` — reports structured events: layer crossings, frame
//! send/deliver/drop, timer arm/fire, view installs, crashes, suspicions.
//! Sink implementations live in `horus-trace` (a lock-free ring for the
//! real-time executors, an ordered vector-clock-stamped log for the
//! virtual-time world); this module defines only the trait and the event
//! vocabulary so every crate below `horus-trace` can *emit* without
//! depending on any collector.
//!
//! The cost contract: with no sink installed the hooks compile to one
//! `Option` branch per event site — no allocation, no formatting, no
//! atomic.  Event payloads are built from values already at hand
//! (`&'static str` layer names, copy-size integers); anything that would
//! cost an allocation (view strings, payload digests) is computed *inside*
//! the `Some` arm only.

use crate::addr::EndpointAddr;
use crate::time::SimTime;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One `(actor, count)` component of a vector clock, as threaded through
/// the deterministic simulator's per-event causality tracking.
pub type ClockEntry = (u64, u64);

/// A consumer of trace events.
///
/// `record` must be cheap and non-blocking from the caller's point of view
/// (the hot paths call it with locks held); sinks that need ordering or
/// aggregation buffer internally.  `Debug` is a supertrait so structures
/// that carry a sink (`SimNetwork`, `Stack`) keep their derived `Debug`.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Records one event.
    fn record(&self, ev: TraceEvent);

    /// Announces the vector clock of the causal context the *next* records
    /// belong to.  Only the virtual-time simulator calls this (it is where
    /// the per-event clocks live); sinks that don't stamp clocks — the
    /// real-time rings — keep the default no-op.
    fn set_clock(&self, _clock: &[ClockEntry]) {}

    /// Whether this sink will ever keep a record.  [`Stack::set_tracer`]
    /// caches the answer and a `false` routes dispatch down the untraced
    /// path — no event construction, no digesting, no virtual call — so a
    /// [`NullSink`] costs the same as no sink at all.
    ///
    /// [`Stack::set_tracer`]: crate::stack::Stack::set_tracer
    fn interested(&self) -> bool {
        true
    }

    /// Cheap per-event pre-flight: producers with an *expensive* event to
    /// build (state digests, rendered views) call this first and skip
    /// construction — and the `record` call — on `false`.
    ///
    /// The protocol is optional per event: a producer may call `record`
    /// directly (cheap events do), and a sink must stay correct under any
    /// mix of the two.  [`SamplingSink`] implements this by advancing its
    /// record counter either here (when it answers `false`) or in `record`
    /// (for kept or un-pre-flighted events), so each event is counted
    /// exactly once; pass-through wrappers forward to their inner sink.
    fn admit(&self) -> bool {
        true
    }
}

/// A structured trace event: where, when, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time: virtual time under the simulator, executor-epoch elapsed
    /// time under the threaded/sharded executors.
    pub at: SimTime,
    /// The endpoint the event concerns (`ep:0` for world-global events —
    /// partitions, heals, fault rules).
    pub ep: EndpointAddr,
    /// What happened.
    pub kind: TraceKind,
}

/// Why a frame was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Decode failure (malformed header, truncation).
    Decode,
    /// Stack-layout fingerprint mismatch.
    Fingerprint,
    /// Induced by a controlled scheduler (`SimWorld::drop_pending`).
    Induced,
    /// Network physics: the loss dice.
    Loss,
    /// Network physics: a partition (region or fault-rule cut).
    Partition,
    /// Network physics: frame over the configured MTU.
    Mtu,
    /// Transport: the receiver was never registered, or its channel closed.
    Unroutable,
}

impl DropReason {
    /// Stable lower-case name used by the trace file format.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Decode => "decode",
            DropReason::Fingerprint => "fingerprint",
            DropReason::Induced => "induced",
            DropReason::Loss => "loss",
            DropReason::Partition => "partition",
            DropReason::Mtu => "mtu",
            DropReason::Unroutable => "unroutable",
        }
    }
}

/// The event vocabulary.
///
/// Calendar-fire kinds (`FrameDeliver`, `TimerFire`, `AppDown`, `Crash`,
/// `Suspect`, `Partition`, `Heal`, `Fault`) carry the pending event's
/// run-independent payload `digest` and its calendar sequence number `seq`
/// when recorded by the virtual-time simulator — the identity the
/// trace→schedule bridge matches ready-set options against.  The real-time
/// executors record the same kinds with `digest`/`seq` zero (they have no
/// calendar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A layer handled a downward item.
    LayerDown {
        /// The layer's registry name.
        layer: &'static str,
    },
    /// A layer handled an upward item.
    LayerUp {
        /// The layer's registry name.
        layer: &'static str,
    },
    /// A layer handled its own timer.
    LayerTimer {
        /// The layer's registry name.
        layer: &'static str,
        /// The layer-chosen timer token.
        token: u64,
    },
    /// A frame left the bottom of a stack toward the network.
    FrameSend {
        /// Multicast (`true`) or point-to-point.
        cast: bool,
        /// Encoded wire length.
        bytes: usize,
    },
    /// A frame arrived at a stack from the network.
    FrameDeliver {
        /// Transport-level sender.
        from: EndpointAddr,
        /// Multicast (`true`) or point-to-point.
        cast: bool,
        /// Encoded wire length.
        bytes: usize,
        /// Pending-event payload digest (simulator only; 0 otherwise).
        digest: u64,
        /// Calendar sequence number (simulator only; 0 otherwise).
        seq: u64,
    },
    /// A frame was dropped (physics, decode, or induced).
    FrameDrop {
        /// Pending-event payload digest when known (0 otherwise).
        digest: u64,
        /// Calendar sequence number when known (0 otherwise).
        seq: u64,
        /// Why.
        reason: DropReason,
    },
    /// A layer armed a timer.
    TimerArm {
        /// Index of the arming layer within its stack.
        layer: usize,
        /// The layer-chosen timer token.
        token: u64,
        /// Delay until it fires, in microseconds.
        delay_us: u64,
    },
    /// A timer fired into a stack.
    TimerFire {
        /// Index of the owning layer within its stack.
        layer: usize,
        /// The layer-chosen timer token.
        token: u64,
        /// Pending-event payload digest (simulator only; 0 otherwise).
        digest: u64,
        /// Calendar sequence number (simulator only; 0 otherwise).
        seq: u64,
    },
    /// A scripted application downcall fired into a stack.
    AppDown {
        /// The downcall's kind name (`Down::kind`).
        kind: &'static str,
        /// Pending-event payload digest (simulator only; 0 otherwise).
        digest: u64,
        /// Calendar sequence number (simulator only; 0 otherwise).
        seq: u64,
    },
    /// A stack delivered an upcall to the application.
    Deliver {
        /// The upcall's kind name (`Up::kind`).
        kind: &'static str,
        /// Sender for `CAST`/`SEND` upcalls (0 otherwise).
        src: u64,
        /// Content digest for `CAST`/`SEND` upcalls (0 otherwise) — the
        /// executor-independent delivery identity the cross-executor
        /// determinism projection compares.
        digest: u64,
    },
    /// A stack installed a view.
    ViewInstall {
        /// The view, rendered (`group[vN@coord m1 m2 ...]`).
        view: String,
    },
    /// A scripted crash fired from the calendar.
    Crash {
        /// Pending-event payload digest (0 outside the simulator).
        digest: u64,
        /// Calendar sequence number (0 outside the simulator).
        seq: u64,
    },
    /// A scripted suspicion fired from the calendar.
    Suspect {
        /// The endpoint being suspected.
        target: EndpointAddr,
        /// Pending-event payload digest (0 outside the simulator).
        digest: u64,
        /// Calendar sequence number (0 outside the simulator).
        seq: u64,
    },
    /// A scheduler-injected crash (`Step::Crash`), outside the calendar.
    InjectCrash,
    /// A scheduler-injected suspicion (`Step::Suspect`).
    InjectSuspect {
        /// The endpoint being told.
        observer: EndpointAddr,
        /// The endpoint it will suspect.
        target: EndpointAddr,
    },
    /// A scripted partition fired (world-global; `ep` is `ep:0`).
    Partition {
        /// Pending-event payload digest.
        digest: u64,
        /// Calendar sequence number.
        seq: u64,
    },
    /// A scripted heal fired (world-global).
    Heal {
        /// Pending-event payload digest.
        digest: u64,
        /// Calendar sequence number.
        seq: u64,
    },
    /// A fault-plan rule installation fired (world-global).
    Fault {
        /// Pending-event payload digest.
        digest: u64,
        /// Calendar sequence number.
        seq: u64,
    },
    /// A free-text layer trace (`Emit::Trace` / `Effect::Trace`).
    Note(String),
}

impl TraceKind {
    /// Stable kind name used by the trace file format.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::LayerDown { .. } => "layer-down",
            TraceKind::LayerUp { .. } => "layer-up",
            TraceKind::LayerTimer { .. } => "layer-timer",
            TraceKind::FrameSend { .. } => "frame-send",
            TraceKind::FrameDeliver { .. } => "frame-deliver",
            TraceKind::FrameDrop { .. } => "frame-drop",
            TraceKind::TimerArm { .. } => "timer-arm",
            TraceKind::TimerFire { .. } => "timer-fire",
            TraceKind::AppDown { .. } => "app-down",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::ViewInstall { .. } => "view-install",
            TraceKind::Crash { .. } => "crash",
            TraceKind::Suspect { .. } => "suspect",
            TraceKind::InjectCrash => "inject-crash",
            TraceKind::InjectSuspect { .. } => "inject-suspect",
            TraceKind::Partition { .. } => "partition",
            TraceKind::Heal { .. } => "heal",
            TraceKind::Fault { .. } => "fault",
            TraceKind::Note(_) => "note",
        }
    }

    /// Stable small-integer id for this kind: the bit position in a
    /// [`KindMask`] and the record tag of the v2 binary trace format in
    /// `horus-trace`.  Appending new kinds is fine; renumbering existing
    /// ones would break committed v2 traces.
    pub fn id(&self) -> u8 {
        match self {
            TraceKind::LayerDown { .. } => 0,
            TraceKind::LayerUp { .. } => 1,
            TraceKind::LayerTimer { .. } => 2,
            TraceKind::FrameSend { .. } => 3,
            TraceKind::FrameDeliver { .. } => 4,
            TraceKind::FrameDrop { .. } => 5,
            TraceKind::TimerArm { .. } => 6,
            TraceKind::TimerFire { .. } => 7,
            TraceKind::AppDown { .. } => 8,
            TraceKind::Deliver { .. } => 9,
            TraceKind::ViewInstall { .. } => 10,
            TraceKind::Crash { .. } => 11,
            TraceKind::Suspect { .. } => 12,
            TraceKind::InjectCrash => 13,
            TraceKind::InjectSuspect { .. } => 14,
            TraceKind::Partition { .. } => 15,
            TraceKind::Heal { .. } => 16,
            TraceKind::Fault { .. } => 17,
            TraceKind::Note(_) => 18,
        }
    }
}

/// Every kind name, indexed by [`TraceKind::id`].
pub const KIND_NAMES: [&str; 19] = [
    "layer-down",
    "layer-up",
    "layer-timer",
    "frame-send",
    "frame-deliver",
    "frame-drop",
    "timer-arm",
    "timer-fire",
    "app-down",
    "deliver",
    "view-install",
    "crash",
    "suspect",
    "inject-crash",
    "inject-suspect",
    "partition",
    "heal",
    "fault",
    "note",
];

/// The [`TraceKind::id`] for a kind name, when it is one of the vocabulary.
pub fn kind_id_by_name(name: &str) -> Option<u8> {
    KIND_NAMES.iter().position(|&n| n == name).map(|i| i as u8)
}

/// A set of [`TraceKind`]s as a bitset over [`TraceKind::id`] — the filter
/// a [`FilterSink`] applies at the hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindMask(u32);

impl KindMask {
    /// Every kind.
    pub const ALL: KindMask = KindMask((1 << KIND_NAMES.len()) - 1);
    /// No kind.
    pub const NONE: KindMask = KindMask(0);

    /// Builds a mask from kind names (as in the file format / CLI).
    ///
    /// # Errors
    ///
    /// Returns the offending name when one is not in the vocabulary.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Result<KindMask, String> {
        let mut mask = KindMask::NONE;
        for name in names {
            let id = kind_id_by_name(name).ok_or_else(|| format!("unknown kind {name:?}"))?;
            mask.0 |= 1 << id;
        }
        Ok(mask)
    }

    /// This mask plus one kind.
    #[must_use]
    pub fn with(self, kind: &TraceKind) -> KindMask {
        KindMask(self.0 | 1 << kind.id())
    }

    /// Whether `kind` is in the mask.
    pub fn contains(self, kind: &TraceKind) -> bool {
        self.0 & (1 << kind.id()) != 0
    }

    /// Whether the mask admits nothing.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// A sink that discards everything.  It declares itself un-[`interested`],
/// so installing it is indistinguishable from installing no sink: the
/// stack caches the answer and never constructs an event — which is what
/// the disabled-overhead gate in `trace_smoke` measures.
///
/// [`interested`]: TraceSink::interested
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _ev: TraceEvent) {}

    fn interested(&self) -> bool {
        false
    }
}

/// A sink wrapper that keeps 1-in-`every` records and discards the rest —
/// the knob that lets a multi-hour chaos soak stay traced: the hook still
/// fires on every event, but only the sampled records pay the inner sink's
/// cost (ring CAS, clock clone, allocation).
///
/// Sampling is by global record count, not per kind or per endpoint, so a
/// sampled trace is an unbiased 1/N thinning of the full stream.  The
/// records that were *not* kept are counted ([`sampled_out`]) so file
/// writers can report the thinning factor honestly — a sampled trace must
/// never masquerade as a complete one (the trace→schedule bridge refuses
/// them).
///
/// [`sampled_out`]: SamplingSink::sampled_out
#[derive(Debug)]
pub struct SamplingSink {
    inner: Arc<dyn TraceSink>,
    every: u64,
    seen: AtomicU64,
}

impl SamplingSink {
    /// Wraps `inner`, keeping one record in `every` (clamped to ≥ 1).
    pub fn new(inner: Arc<dyn TraceSink>, every: u64) -> Self {
        SamplingSink { inner, every: every.max(1), seen: AtomicU64::new(0) }
    }

    /// The sampling rate `N` of this 1-in-N sink.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Records seen so far (kept + sampled out).
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Records forwarded to the inner sink so far.
    pub fn kept(&self) -> u64 {
        self.seen().div_ceil(self.every)
    }

    /// Records discarded by sampling so far.
    pub fn sampled_out(&self) -> u64 {
        self.seen() - self.kept()
    }
}

impl TraceSink for SamplingSink {
    fn record(&self, ev: TraceEvent) {
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(self.every) {
            self.inner.record(ev);
        }
    }

    // Clocks are causal context, not records: forward them all so the
    // records that *are* kept carry the right clock.
    fn set_clock(&self, clock: &[ClockEntry]) {
        self.inner.set_clock(clock);
    }

    fn interested(&self) -> bool {
        self.inner.interested()
    }

    // Counter discipline: a to-be-kept event is NOT counted here — the
    // producer's follow-up `record` advances the counter and forwards.  A
    // to-be-dropped event is counted here and `record` never runs for it.
    // Either way each event advances `seen` exactly once, so the protocol
    // composes with producers that skip `admit` entirely.  (A concurrent
    // interleaving between `admit` and `record` can shift which slot an
    // event lands on; sampling is statistical, counts stay exact.)
    fn admit(&self) -> bool {
        loop {
            let n = self.seen.load(Ordering::Relaxed);
            if n.is_multiple_of(self.every) {
                return true;
            }
            if self
                .seen
                .compare_exchange_weak(n, n + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return false;
            }
        }
    }
}

/// A sink wrapper that forwards only the kinds in a [`KindMask`] — e.g.
/// layer crossings and timers for latency work, without paying for the
/// frame-level firehose.
#[derive(Debug)]
pub struct FilterSink {
    inner: Arc<dyn TraceSink>,
    mask: KindMask,
}

impl FilterSink {
    /// Wraps `inner`, forwarding only kinds in `mask`.
    pub fn new(inner: Arc<dyn TraceSink>, mask: KindMask) -> Self {
        FilterSink { inner, mask }
    }

    /// The mask this sink applies.
    pub fn mask(&self) -> KindMask {
        self.mask
    }
}

impl TraceSink for FilterSink {
    fn record(&self, ev: TraceEvent) {
        if self.mask.contains(&ev.kind) {
            self.inner.record(ev);
        }
    }

    fn set_clock(&self, clock: &[ClockEntry]) {
        self.inner.set_clock(clock);
    }

    fn interested(&self) -> bool {
        !self.mask.is_empty() && self.inner.interested()
    }

    // The kind is unknown before construction, so the filter itself cannot
    // pre-flight; forward so an inner sampler still can.
    fn admit(&self) -> bool {
        self.inner.admit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceKind::LayerDown { layer: "COM" }.name(), "layer-down");
        assert_eq!(TraceKind::Note("x".into()).name(), "note");
        assert_eq!(DropReason::Fingerprint.name(), "fingerprint");
    }

    #[test]
    fn null_sink_is_a_trace_sink() {
        let s: &dyn TraceSink = &NullSink;
        s.record(TraceEvent {
            at: SimTime::ZERO,
            ep: EndpointAddr::new(1),
            kind: TraceKind::InjectCrash,
        });
        s.set_clock(&[(1, 2)]);
    }

    #[test]
    fn kind_ids_and_names_agree() {
        // Every name maps back to the id that indexes it.
        for (i, name) in KIND_NAMES.iter().enumerate() {
            assert_eq!(kind_id_by_name(name), Some(i as u8), "{name}");
        }
        assert_eq!(kind_id_by_name("no-such-kind"), None);
        // Spot-check id() against the table through name().
        let samples = [
            TraceKind::LayerDown { layer: "COM" },
            TraceKind::FrameSend { cast: true, bytes: 1 },
            TraceKind::InjectCrash,
            TraceKind::Note("x".into()),
        ];
        for k in &samples {
            assert_eq!(KIND_NAMES[k.id() as usize], k.name());
        }
    }

    /// A counting sink for the wrapper tests.
    #[derive(Debug, Default)]
    struct Counter {
        records: AtomicU64,
        clocks: AtomicU64,
    }

    impl TraceSink for Counter {
        fn record(&self, _ev: TraceEvent) {
            self.records.fetch_add(1, Ordering::Relaxed);
        }

        fn set_clock(&self, _clock: &[ClockEntry]) {
            self.clocks.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn ev(kind: TraceKind) -> TraceEvent {
        TraceEvent { at: SimTime::ZERO, ep: EndpointAddr::new(1), kind }
    }

    #[test]
    fn sampling_sink_keeps_one_in_n() {
        let inner = Arc::new(Counter::default());
        let s = SamplingSink::new(inner.clone(), 4);
        for _ in 0..10 {
            s.record(ev(TraceKind::InjectCrash));
        }
        s.set_clock(&[(1, 1)]);
        // Records 0, 4, 8 kept: ceil(10/4) = 3.
        assert_eq!(inner.records.load(Ordering::Relaxed), 3);
        assert_eq!(inner.clocks.load(Ordering::Relaxed), 1);
        assert_eq!((s.seen(), s.kept(), s.sampled_out()), (10, 3, 7));
        assert!(s.interested());
    }

    #[test]
    fn sampling_sink_admit_protocol_counts_each_event_once() {
        let inner = Arc::new(Counter::default());
        let s = SamplingSink::new(inner.clone(), 4);
        let mut admitted = 0;
        for _ in 0..12 {
            // Full pre-flight protocol: construct + record only on admit.
            if s.admit() {
                admitted += 1;
                s.record(ev(TraceKind::InjectCrash));
            }
        }
        // Identical outcome to the record-only path: slots 0, 4, 8.
        assert_eq!(admitted, 3);
        assert_eq!(inner.records.load(Ordering::Relaxed), 3);
        assert_eq!((s.seen(), s.kept(), s.sampled_out()), (12, 3, 9));

        // A mixed producer (some events pre-flighted, some not) still
        // advances the counter exactly once per event.
        let inner = Arc::new(Counter::default());
        let s = SamplingSink::new(inner.clone(), 2);
        for i in 0..10 {
            if i % 3 == 0 {
                s.record(ev(TraceKind::InjectCrash));
            } else if s.admit() {
                s.record(ev(TraceKind::InjectCrash));
            }
        }
        assert_eq!(s.seen(), 10);
        assert_eq!(inner.records.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn filter_sink_forwards_admit_to_the_sampler() {
        let inner = Arc::new(Counter::default());
        let sampler = Arc::new(SamplingSink::new(inner, 3));
        let f = FilterSink::new(sampler.clone(), KindMask::ALL);
        let mut kept = 0;
        for _ in 0..9 {
            if f.admit() {
                f.record(ev(TraceKind::InjectCrash));
                kept += 1;
            }
        }
        assert_eq!(kept, 3);
        assert_eq!(sampler.seen(), 9);
    }

    #[test]
    fn sampling_sink_clamps_every_to_one() {
        let inner = Arc::new(Counter::default());
        let s = SamplingSink::new(inner.clone(), 0);
        assert_eq!(s.every(), 1);
        for _ in 0..5 {
            s.record(ev(TraceKind::InjectCrash));
        }
        assert_eq!(inner.records.load(Ordering::Relaxed), 5);
        assert_eq!(s.sampled_out(), 0);
    }

    #[test]
    fn filter_sink_applies_the_mask() {
        let inner = Arc::new(Counter::default());
        let mask = KindMask::from_names(["layer-down", "note"]).unwrap();
        let s = FilterSink::new(inner.clone(), mask);
        s.record(ev(TraceKind::LayerDown { layer: "COM" }));
        s.record(ev(TraceKind::InjectCrash));
        s.record(ev(TraceKind::Note("x".into())));
        assert_eq!(inner.records.load(Ordering::Relaxed), 2);
        assert!(s.interested());
        assert!(!FilterSink::new(inner, KindMask::NONE).interested());
        assert!(KindMask::ALL.contains(&TraceKind::InjectCrash));
        assert!(KindMask::from_names(["bogus"]).is_err());
        assert!(KindMask::NONE.with(&TraceKind::InjectCrash).contains(&TraceKind::InjectCrash));
    }
}
