//! A small, explicit wire codec for control payloads.
//!
//! Horus's one-message-format principle (§1) means every layer speaks the
//! same encoding.  Fixed-size per-message control *fields* travel in the
//! header area managed by [`crate::message`]; variable-size control *data*
//! (member lists, ack vectors, retransmitted messages) travels in message
//! bodies, encoded with these helpers.  Everything is little-endian.
//!
//! ```
//! use horus_core::wire::{WireWriter, WireReader};
//! use horus_core::EndpointAddr;
//!
//! let mut w = WireWriter::new();
//! w.put_u32(7);
//! w.put_addr(EndpointAddr::new(3));
//! w.put_bytes(b"tail");
//! let buf = w.finish();
//!
//! let mut r = WireReader::new(&buf);
//! assert_eq!(r.get_u32().unwrap(), 7);
//! assert_eq!(r.get_addr().unwrap(), EndpointAddr::new(3));
//! assert_eq!(r.get_bytes().unwrap(), b"tail");
//! assert!(r.is_empty());
//! ```

use crate::addr::{EndpointAddr, GroupAddr};
use crate::error::HorusError;
use crate::view::{View, ViewId};
use bytes::Bytes;

/// Incrementally builds a wire buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        WireWriter { buf: Vec::with_capacity(n) }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an endpoint address.
    pub fn put_addr(&mut self, a: EndpointAddr) {
        self.put_u64(a.raw());
    }

    /// Appends a group address.
    pub fn put_group(&mut self, g: GroupAddr) {
        self.put_u64(g.raw());
    }

    /// Appends a length-prefixed byte string (length as `u32`).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends raw bytes with no length prefix, for callers that frame
    /// their own records (the PACK carrier body writes segments whose
    /// lengths are derivable from an earlier prefix).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed list of endpoint addresses.
    pub fn put_addrs(&mut self, addrs: &[EndpointAddr]) {
        self.put_u32(addrs.len() as u32);
        for &a in addrs {
            self.put_addr(a);
        }
    }

    /// Appends a length-prefixed list of `u64`s.
    pub fn put_u64s(&mut self, vals: &[u64]) {
        self.put_u32(vals.len() as u32);
        for &v in vals {
            self.put_u64(v);
        }
    }

    /// Appends a full view (group, id, members, join epochs).
    pub fn put_view(&mut self, v: &View) {
        self.put_group(v.group());
        self.put_u64(v.id().counter);
        self.put_addr(v.id().coordinator);
        self.put_addrs(v.members());
        self.put_u64s(v.join_epochs());
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Sequentially decodes a wire buffer produced by [`WireWriter`].
///
/// All getters return [`HorusError::Decode`] on truncated input rather than
/// panicking: wire data may come from a garbling network model.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a buffer for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], HorusError> {
        if self.pos + n > self.buf.len() {
            return Err(HorusError::Decode(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, HorusError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, HorusError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, HorusError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, HorusError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an endpoint address.
    ///
    /// # Errors
    ///
    /// Fails on truncation or on the reserved null address (which never
    /// appears on the wire).
    pub fn get_addr(&mut self) -> Result<EndpointAddr, HorusError> {
        let raw = self.get_u64()?;
        if raw == 0 {
            return Err(HorusError::Decode("null endpoint address on wire".into()));
        }
        Ok(EndpointAddr::new(raw))
    }

    /// Reads a group address.
    pub fn get_group(&mut self) -> Result<GroupAddr, HorusError> {
        Ok(GroupAddr::new(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], HorusError> {
        let n = self.get_u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed list of endpoint addresses.
    pub fn get_addrs(&mut self) -> Result<Vec<EndpointAddr>, HorusError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() / 8 {
            return Err(HorusError::Decode(format!("implausible address count {n}")));
        }
        (0..n).map(|_| self.get_addr()).collect()
    }

    /// Reads a length-prefixed list of `u64`s.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, HorusError> {
        let n = self.get_u32()? as usize;
        if n > self.remaining() / 8 {
            return Err(HorusError::Decode(format!("implausible u64 count {n}")));
        }
        (0..n).map(|_| self.get_u64()).collect()
    }

    /// Reads a full view.
    pub fn get_view(&mut self) -> Result<View, HorusError> {
        let group = self.get_group()?;
        let counter = self.get_u64()?;
        let coordinator = self.get_addr()?;
        let members = self.get_addrs()?;
        let join_epochs = self.get_u64s()?;
        if members.is_empty() || members.len() != join_epochs.len() {
            return Err(HorusError::Decode("malformed view on wire".into()));
        }
        for w in 0..members.len() - 1 {
            if (join_epochs[w], members[w]) >= (join_epochs[w + 1], members[w + 1]) {
                return Err(HorusError::Decode("view members out of seniority order".into()));
            }
        }
        Ok(View::from_parts(group, ViewId { counter, coordinator }, members, join_epochs))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// The rest of the buffer, consuming it.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::EndpointAddr;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX);
        let b = w.finish();
        let mut r = WireReader::new(&b);
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert!(r.is_empty());
    }

    #[test]
    fn view_roundtrip() {
        let v = View::initial(GroupAddr::new(9), EndpointAddr::new(4))
            .with_joined(&[EndpointAddr::new(2), EndpointAddr::new(6)]);
        let mut w = WireWriter::new();
        w.put_view(&v);
        let b = w.finish();
        let mut r = WireReader::new(&b);
        assert_eq!(r.get_view().unwrap(), v);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_u64(5);
        let b = w.finish();
        let mut r = WireReader::new(&b[..4]);
        assert!(matches!(r.get_u64(), Err(HorusError::Decode(_))));
    }

    #[test]
    fn implausible_lengths_rejected() {
        // Claims 2^31 addresses but carries none.
        let mut w = WireWriter::new();
        w.put_u32(1 << 31);
        let b = w.finish();
        let mut r = WireReader::new(&b);
        assert!(r.get_addrs().is_err());
    }

    #[test]
    fn null_addr_on_wire_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(0);
        let b = w.finish();
        let mut r = WireReader::new(&b);
        assert!(r.get_addr().is_err());
    }

    #[test]
    fn rest_consumes() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        w.put_bytes(b"xy");
        let b = w.finish();
        let mut r = WireReader::new(&b);
        let _ = r.get_u8().unwrap();
        assert_eq!(r.get_bytes().unwrap(), b"xy");
        assert_eq!(r.rest(), b"");
    }

    #[test]
    fn garbled_view_rejected() {
        // Members out of seniority order must not decode.
        let mut w = WireWriter::new();
        w.put_group(GroupAddr::new(1));
        w.put_u64(3);
        w.put_addr(EndpointAddr::new(1));
        w.put_addrs(&[EndpointAddr::new(2), EndpointAddr::new(1)]);
        w.put_u64s(&[0, 0]);
        let b = w.finish();
        let mut r = WireReader::new(&b);
        assert!(r.get_view().is_err());
    }
}
