//! PACK — message packing: coalescing small messages into one frame (§10).
//!
//! "Another important optimization is *message packing*: the combining of
//! several small messages into a single large one."  Per-frame costs
//! (envelope, checksum, syscall, interrupt) dominate when applications
//! emit bursts of small casts; PACK amortizes them by queueing outbound
//! casts and sends briefly and flushing a whole run of same-destination
//! messages as one carrier frame.
//!
//! A carrier's body is a concatenation of length-prefixed
//! `Message::encode_inner` images, so every sub-message keeps its own
//! header stack intact; the peer PACK layer re-splits the carrier with
//! zero-copy slices of the carrier body and delivers the sub-messages in
//! their original order.  Because runs only group *consecutive* messages
//! with the same destination key, FIFO order is preserved exactly — both
//! between packed and unpacked messages and within a carrier.
//!
//! Flushing is triggered three ways, whichever comes first:
//!
//! * **count** — the queue reached `max_msgs` messages;
//! * **size** — adding the next message would push the carrier body past
//!   `max_bytes` (keeping carriers under a typical MTU);
//! * **delay** — a one-shot timer armed when the queue becomes non-empty
//!   expires, bounding the latency a queued message can suffer.
//!
//! Any other downcall (views, flush markers, leaves) forces a flush first,
//! so PACK never reorders control traffic around queued data.  PACK is
//! transparent to properties: it requires FIFO below (like FRAG, its
//! carrier-in-carrier dual) and provides nothing new.

use horus_core::frame::ENVELOPE_BYTES;
use horus_core::prelude::*;
use horus_core::wire::WireWriter;
use std::collections::VecDeque;
use std::time::Duration;

const PACK_FIELDS: &[FieldSpec] = &[FieldSpec::new("npack", 16)];

/// Destination key: only consecutive messages with the same key share a
/// carrier, so packing can never reorder traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PackKey {
    Cast,
    Send(Vec<EndpointAddr>),
}

/// The message-packing layer.
#[derive(Debug, Clone)]
pub struct Pack {
    /// Flush when this many messages are queued.
    max_msgs: usize,
    /// Flush before a carrier body would exceed this many bytes.
    max_bytes: usize,
    /// Maximum time a queued message waits before a timer flush.
    delay: Duration,
    /// Outbound messages awaiting a flush, in application order.
    queue: VecDeque<(PackKey, Message)>,
    /// Carrier-body bytes the queue would occupy if flushed now.
    pending_bytes: usize,
    /// Flush generation; pending delay timers carry the epoch they were
    /// armed in and are ignored if a threshold flush beat them to it.
    epoch: u64,
    carriers: u64,
    singles: u64,
    packed_msgs: u64,
    flushes_count: u64,
    flushes_size: u64,
    flushes_timer: u64,
    unpacked: u64,
    malformed: u64,
}

impl Default for Pack {
    fn default() -> Self {
        Pack::new(16, 1200, Duration::from_millis(1))
    }
}

impl Pack {
    /// Creates a PACK layer flushing at `max_msgs` queued messages, at
    /// `max_bytes` of carrier body, or after `delay`, whichever is first.
    ///
    /// # Panics
    ///
    /// Panics if `max_msgs` or `max_bytes` is zero.
    pub fn new(max_msgs: usize, max_bytes: usize, delay: Duration) -> Self {
        assert!(max_msgs > 0, "packing count threshold must be positive");
        assert!(max_bytes > 0, "packing byte threshold must be positive");
        Pack {
            max_msgs,
            max_bytes,
            delay,
            queue: VecDeque::new(),
            pending_bytes: 0,
            epoch: 0,
            carriers: 0,
            singles: 0,
            packed_msgs: 0,
            flushes_count: 0,
            flushes_size: 0,
            flushes_timer: 0,
            unpacked: 0,
            malformed: 0,
        }
    }

    fn enqueue(&mut self, key: PackKey, msg: Message, ctx: &mut LayerCtx<'_>) {
        // 4 bytes of length prefix per sub-message in the carrier body.
        let cost = 4 + msg.encoded_inner_len();
        if !self.queue.is_empty() && self.pending_bytes + cost > self.max_bytes {
            self.flushes_size += 1;
            self.flush(ctx);
        }
        self.queue.push_back((key, msg));
        self.pending_bytes += cost;
        if self.queue.len() == 1 {
            // Queue just became non-empty: bound its latency.
            ctx.set_timer(self.delay, self.epoch);
        }
        if self.queue.len() >= self.max_msgs || self.pending_bytes >= self.max_bytes {
            if self.pending_bytes >= self.max_bytes {
                self.flushes_size += 1;
            } else {
                self.flushes_count += 1;
            }
            self.flush(ctx);
        }
    }

    /// Drains the queue, emitting one frame per run of consecutive
    /// same-destination messages.
    fn flush(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.queue.is_empty() {
            return;
        }
        self.epoch += 1; // invalidate any armed delay timer
        self.pending_bytes = 0;
        let mut queue = std::mem::take(&mut self.queue);
        while let Some((key, first)) = queue.pop_front() {
            let mut run = vec![first];
            while queue.front().is_some_and(|(k, _)| *k == key) {
                run.push(queue.pop_front().expect("peeked").1);
            }
            self.emit_run(key, run, ctx);
        }
    }

    fn emit_run(&mut self, key: PackKey, mut run: Vec<Message>, ctx: &mut LayerCtx<'_>) {
        if run.len() == 1 {
            // A lone message travels unpacked; npack=0 marks passthrough.
            let mut m = run.pop().expect("len checked");
            ctx.stamp(&mut m);
            ctx.set(&mut m, 0, 0);
            self.singles += 1;
            self.pass_down(key, m, ctx);
            return;
        }
        let n = run.len();
        let mut cap = 0usize;
        let mut unpacked_wire = 0usize;
        for m in &run {
            let inner = m.encoded_inner_len();
            cap += 4 + inner;
            unpacked_wire += ENVELOPE_BYTES + inner;
        }
        // Sub-messages are serialized straight into the carrier body —
        // `[u32 len][u16 hdr_len][hdr][body]` each — skipping the
        // intermediate `encode_inner` allocation.
        let mut w = WireWriter::with_capacity(cap);
        for m in &run {
            let hdr = m.header_area();
            w.put_u32((2 + hdr.len() + m.body().len()) as u32);
            w.put_u16(hdr.len() as u16);
            w.put_raw(hdr);
            w.put_raw(m.body());
        }
        let mut carrier = ctx.new_message(w.finish());
        ctx.stamp(&mut carrier);
        ctx.set(&mut carrier, 0, n as u64);
        let packed_wire = ENVELOPE_BYTES + carrier.encoded_inner_len();
        ctx.note_packed(n as u64, unpacked_wire.saturating_sub(packed_wire) as u64);
        // Packing is the one place the send path materializes sub-message
        // bodies into a new buffer; keep the copy discipline observable.
        ctx.note_payload_copy(n as u64);
        self.carriers += 1;
        self.packed_msgs += n as u64;
        self.pass_down(key, carrier, ctx);
    }

    fn pass_down(&self, key: PackKey, msg: Message, ctx: &mut LayerCtx<'_>) {
        match key {
            PackKey::Cast => ctx.down(Down::Cast(msg)),
            PackKey::Send(dests) => ctx.down(Down::Send { dests, msg }),
        }
    }

    fn receive(&mut self, src: EndpointAddr, cast: bool, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        if ctx.open(&mut msg).is_err() {
            return;
        }
        let n = ctx.get(&msg, 0);
        if n == 0 {
            self.pass_up(src, cast, msg, ctx);
            return;
        }
        // Unpack: each sub-message is `[u32 len][u16 hdr_len][hdr][body]`;
        // bodies are zero-copy slices of the carrier body.
        let body = msg.body().clone();
        let mut pos = 0usize;
        for _ in 0..n {
            if body.len() - pos < 4 {
                self.malformed += 1;
                ctx.trace("PACK: carrier truncated at length prefix".to_string());
                return;
            }
            let len = u32::from_le_bytes([body[pos], body[pos + 1], body[pos + 2], body[pos + 3]])
                as usize;
            pos += 4;
            if len < 2 || body.len() - pos < len {
                self.malformed += 1;
                ctx.trace("PACK: carrier sub-message overruns body".to_string());
                return;
            }
            let hdr_len = u16::from_le_bytes([body[pos], body[pos + 1]]) as usize;
            if len - 2 < hdr_len {
                self.malformed += 1;
                ctx.trace("PACK: sub-message header overruns record".to_string());
                return;
            }
            let hdr = &body[pos + 2..pos + 2 + hdr_len];
            let sub_body = body.slice(pos + 2 + hdr_len..pos + len);
            pos += len;
            match Message::decode_parts(msg.layout().clone(), hdr, sub_body) {
                Ok(mut m) => {
                    self.unpacked += 1;
                    m.meta.src = Some(src);
                    self.pass_up(src, cast, m, ctx);
                }
                Err(e) => {
                    self.malformed += 1;
                    ctx.trace(format!("PACK: sub-message decode failed: {e}"));
                }
            }
        }
    }

    fn pass_up(&self, src: EndpointAddr, cast: bool, msg: Message, ctx: &mut LayerCtx<'_>) {
        if cast {
            ctx.up(Up::Cast { src, msg });
        } else {
            ctx.up(Up::Send { src, msg });
        }
    }
}

impl Layer for Pack {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "PACK"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        PACK_FIELDS
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => self.enqueue(PackKey::Cast, msg, ctx),
            Down::Send { dests, msg } => self.enqueue(PackKey::Send(dests), msg, ctx),
            other => {
                // Control traffic never overtakes queued data.
                self.flush(ctx);
                ctx.down(other);
            }
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, msg } => self.receive(src, true, msg, ctx),
            Up::Send { src, msg } => self.receive(src, false, msg, ctx),
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == self.epoch && !self.queue.is_empty() {
            self.flushes_timer += 1;
            self.flush(ctx);
        }
    }

    fn dump(&self) -> String {
        format!(
            "max_msgs={} max_bytes={} carriers={} singles={} packed={} \
             flushes(count/size/timer)={}/{}/{} unpacked={} malformed={} queued={}",
            self.max_msgs,
            self.max_bytes,
            self.carriers,
            self.singles,
            self.packed_msgs,
            self.flushes_count,
            self.flushes_size,
            self.flushes_timer,
            self.unpacked,
            self.malformed,
            self.queue.len()
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::nak::Nak;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn pack_world(n: u64, pack: impl Fn() -> Pack, cfg: NetConfig, seed: u64) -> SimWorld {
        let mut w = SimWorld::new(seed, cfg);
        for i in 1..=n {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(pack()))
                .push(Box::new(Nak::default()))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    #[test]
    fn burst_of_casts_shares_carrier_frames() {
        let mut w = pack_world(2, Pack::default, NetConfig::reliable(), 1);
        for i in 0..12u8 {
            w.cast_bytes(ep(1), vec![i; 32]);
        }
        w.run_for(Duration::from_millis(50));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 12);
        for (i, (_, body, _)) in got.iter().enumerate() {
            assert_eq!(&body[..], &vec![i as u8; 32][..], "FIFO order preserved");
        }
        let pack: &Pack = w.stack(ep(1)).unwrap().focus_as("PACK").unwrap();
        assert!(pack.carriers >= 1, "burst must produce at least one carrier");
        assert!(pack.packed_msgs >= 8, "most of the burst should pack");
        let stats = w.stack(ep(1)).unwrap().stats();
        assert!(stats.frames_packed >= 1);
        assert!(stats.msgs_packed >= 8);
        assert!(stats.bytes_saved_packing > 0);
    }

    #[test]
    fn flush_timer_bounds_latency_of_a_lone_cast() {
        let delay = Duration::from_millis(2);
        let mut w = pack_world(2, move || Pack::new(64, 1200, delay), NetConfig::reliable(), 2);
        w.cast_bytes(ep(1), b"solo".to_vec());
        // Nothing else arrives; only the delay timer can flush.  The
        // message must be out within the configured bound plus transit.
        w.run_for(delay + Duration::from_millis(2));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"solo");
        let pack: &Pack = w.stack(ep(1)).unwrap().focus_as("PACK").unwrap();
        assert_eq!(pack.flushes_timer, 1);
        assert_eq!(pack.singles, 1);
    }

    #[test]
    fn oversized_message_passes_through_unpacked() {
        let mut w = pack_world(2, Pack::default, NetConfig::reliable(), 3);
        // Bigger than max_bytes (so it can never share a carrier) but
        // still under the network MTU — PACK leaves the MTU to FRAG.
        w.cast_bytes(ep(1), vec![0xEE; 1400]);
        w.run_for(Duration::from_millis(50));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.len(), 1400);
        let pack: &Pack = w.stack(ep(1)).unwrap().focus_as("PACK").unwrap();
        assert_eq!(pack.carriers, 0);
        assert_eq!(pack.singles, 1);
    }

    #[test]
    fn interleaved_casts_and_sends_keep_order_within_streams() {
        let mut w = pack_world(3, Pack::default, NetConfig::reliable(), 4);
        for round in 0..4u8 {
            w.cast_bytes(ep(1), vec![round; 16]);
            let msg = w.stack(ep(1)).unwrap().new_message(vec![0x40 | round; 16]);
            w.down(ep(1), Down::Send { dests: vec![ep(2)], msg });
        }
        w.run_for(Duration::from_millis(50));
        for i in 2..=3 {
            let casts = w.delivered_casts(ep(i));
            assert_eq!(casts.len(), 4, "endpoint {i}");
            for (r, (_, body, _)) in casts.iter().enumerate() {
                assert_eq!(body[0], r as u8, "endpoint {i} cast order");
            }
        }
        let sends: Vec<u8> = w
            .upcalls(ep(2))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Send { msg, .. } => Some(msg.body()[0]),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![0x40, 0x41, 0x42, 0x43], "send order");
        assert!(w.upcalls(ep(3)).iter().all(|(_, up)| !matches!(up, Up::Send { .. })));
    }

    #[test]
    fn count_threshold_flushes_without_waiting_for_timer() {
        // Huge delay: only the count threshold can flush.
        let mut w = pack_world(
            2,
            || Pack::new(4, 100_000, Duration::from_secs(60)),
            NetConfig::reliable(),
            5,
        );
        for i in 0..8u8 {
            w.cast_bytes(ep(1), vec![i; 8]);
        }
        w.run_for(Duration::from_millis(50));
        assert_eq!(w.delivered_casts(ep(2)).len(), 8);
        let pack: &Pack = w.stack(ep(1)).unwrap().focus_as("PACK").unwrap();
        assert_eq!(pack.flushes_count, 2);
        assert_eq!(pack.carriers, 2);
        assert_eq!(pack.packed_msgs, 8);
    }

    #[test]
    fn packing_survives_loss_with_nak_below() {
        for seed in 1..=3 {
            let mut w = pack_world(2, Pack::default, NetConfig::lossy(0.1), seed);
            for i in 0..20u8 {
                w.cast_bytes(ep(1), vec![i; 24]);
            }
            w.run_for(Duration::from_secs(3));
            let got = w.delivered_casts(ep(2));
            assert_eq!(got.len(), 20, "seed {seed}");
            for (i, (_, body, _)) in got.iter().enumerate() {
                assert_eq!(body[0], i as u8, "seed {seed}: FIFO under loss");
            }
        }
    }

    #[test]
    fn other_downcalls_flush_queued_messages_first() {
        let mut w = pack_world(
            2,
            || Pack::new(64, 100_000, Duration::from_secs(60)),
            NetConfig::reliable(),
            6,
        );
        w.cast_bytes(ep(1), b"queued".to_vec());
        // A Leave would race past the queue if PACK did not flush first.
        w.down(ep(1), Down::Leave);
        w.run_for(Duration::from_millis(50));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"queued");
    }
}
