//! NNAK — prioritized reliable FIFO point-to-point channels (Table 3).
//!
//! Table 3 lists NNAK beside NAK with the same requirements (best-effort
//! delivery with source addresses) but providing *prioritized* effort
//! (P2) and FIFO unicast (P3) rather than multicast FIFO: it is the
//! point-to-point sibling used under request/response-style protocol
//! stacks.  Outgoing `send`s queue per destination and leave in priority
//! order (within the same priority, FIFO); delivery uses positive
//! acknowledgements with timer-driven retransmission.
//!
//! Note the subtlety: priority affects the order in which messages are
//! *accepted into* the sequence space (urgent traffic overtakes bulk
//! traffic while queued), but once sequenced, delivery is FIFO — the
//! receiver cannot tell priorities apart, which is what keeps the layer
//! composable below FIFO-dependent layers.

use horus_core::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 1), FieldSpec::new("seq", 32)];

const KIND_DATA: u64 = 0;
const KIND_ACK: u64 = 1;

const TIMER_TICK: u64 = 0;

#[derive(Debug, Default, Clone)]
struct Chan {
    /// Next sequence to assign.
    next: u32,
    /// Waiting for a free slot, ordered by (reverse priority, arrival).
    queue: Vec<(u8, u64, Message)>,
    arrivals: u64,
    /// Sent but unacked: seq -> (message, last transmission).
    out: BTreeMap<u32, (Message, SimTime)>,
    /// Receiving side.
    expected: u32,
    ooo: BTreeMap<u32, Message>,
}

/// The prioritized unicast reliability layer.
#[derive(Debug, Clone)]
pub struct Nnak {
    /// Maximum unacked messages per destination before queueing.
    window: u32,
    rto: Duration,
    chans: BTreeMap<EndpointAddr, Chan>,
    retransmissions: u64,
}

impl Nnak {
    /// Creates an NNAK layer with the given per-destination window and
    /// retransmission timeout.
    pub fn new(window: u32, rto: Duration) -> Self {
        Nnak { window: window.max(1), rto, chans: BTreeMap::new(), retransmissions: 0 }
    }
}

impl Default for Nnak {
    fn default() -> Self {
        Nnak::new(8, Duration::from_millis(30))
    }
}

impl Nnak {
    fn pump(&mut self, dest: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        let window = self.window;
        let to_send = {
            let chan = self.chans.entry(dest).or_default();
            let mut out = Vec::new();
            while (chan.out.len() as u32) < window && !chan.queue.is_empty() {
                // Highest priority first; FIFO within a priority class.
                let best = chan
                    .queue
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (p, arrival, _))| (*p, std::cmp::Reverse(*arrival)))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (_, _, mut msg) = chan.queue.remove(best);
                chan.next += 1;
                let seq = chan.next;
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, KIND_DATA);
                ctx.set(&mut msg, 1, seq as u64);
                chan.out.insert(seq, (msg.clone(), ctx.now()));
                out.push(msg);
            }
            out
        };
        for msg in to_send {
            ctx.down(Down::Send { dests: vec![dest], msg });
        }
    }
}

impl Layer for Nnak {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NNAK"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        ctx.set_timer(self.rto, TIMER_TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Send { dests, msg } => {
                for dest in dests {
                    let prio = msg.meta.priority;
                    {
                        let chan = self.chans.entry(dest).or_default();
                        chan.arrivals += 1;
                        let arrival = chan.arrivals;
                        chan.queue.push((prio, arrival, msg.clone()));
                    }
                    self.pump(dest, ctx);
                }
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let kind = ctx.get(&msg, 0);
                let seq = ctx.get(&msg, 1) as u32;
                match kind {
                    KIND_DATA => {
                        let deliveries = {
                            let chan = self.chans.entry(src).or_default();
                            let expected = chan.expected.max(1);
                            let mut out = Vec::new();
                            if seq >= expected {
                                chan.ooo.insert(seq, msg);
                                while let Some(m) = chan.ooo.remove(&chan.expected.max(1)) {
                                    chan.expected = chan.expected.max(1) + 1;
                                    out.push(m);
                                }
                            }
                            out
                        };
                        for m in deliveries {
                            ctx.up(Up::Send { src, msg: m });
                        }
                        // Cumulative ack.
                        let cum =
                            self.chans.get(&src).map(|c| c.expected.saturating_sub(1)).unwrap_or(0);
                        let mut ack = ctx.new_message(bytes::Bytes::new());
                        ctx.stamp(&mut ack);
                        ctx.set(&mut ack, 0, KIND_ACK);
                        ctx.set(&mut ack, 1, cum as u64);
                        ctx.down(Down::Send { dests: vec![src], msg: ack });
                    }
                    KIND_ACK => {
                        if let Some(chan) = self.chans.get_mut(&src) {
                            chan.out.retain(|&s, _| s > seq);
                        }
                        self.pump(src, ctx);
                    }
                    _ => {}
                }
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token != TIMER_TICK {
            return;
        }
        let now = ctx.now();
        let rto = self.rto;
        let mut resend: Vec<(EndpointAddr, Message)> = Vec::new();
        for (&dest, chan) in &mut self.chans {
            for (msg, sent) in chan.out.values_mut() {
                if now.saturating_since(*sent) > rto {
                    *sent = now;
                    resend.push((dest, msg.clone()));
                }
            }
        }
        for (dest, msg) in resend {
            self.retransmissions += 1;
            ctx.down(Down::Send { dests: vec![dest], msg });
        }
        ctx.set_timer(self.rto, TIMER_TICK);
    }

    fn dump(&self) -> String {
        let queued: usize = self.chans.values().map(|c| c.queue.len()).sum();
        let unacked: usize = self.chans.values().map(|c| c.out.len()).sum();
        format!(
            "chans={} queued={} unacked={} retrans={}",
            self.chans.len(),
            queued,
            unacked,
            self.retransmissions
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn world(seed: u64, net: NetConfig, window: u32) -> SimWorld {
        let mut w = SimWorld::new(seed, net);
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(Nnak::new(window, Duration::from_millis(30))))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    fn sends_of(w: &SimWorld, e: EndpointAddr) -> Vec<Vec<u8>> {
        w.upcalls(e)
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Send { msg, .. } => Some(msg.body().to_vec()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn reliable_fifo_under_loss() {
        for seed in 1..=4 {
            let mut w = world(seed, NetConfig::lossy(0.3), 4);
            for k in 0..10u8 {
                let msg = w.stack(ep(1)).unwrap().new_message(vec![k]);
                w.down(ep(1), Down::Send { dests: vec![ep(2)], msg });
            }
            w.run_for(Duration::from_secs(3));
            assert_eq!(
                sends_of(&w, ep(2)),
                (0..10).map(|k| vec![k]).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn priorities_overtake_in_the_queue() {
        // Window of 1: the first message occupies the window; of the
        // queued remainder, the high-priority one must be sequenced next.
        let mut w = world(9, NetConfig::reliable(), 1);
        let bulk1 = w.stack(ep(1)).unwrap().new_message(&b"bulk1"[..]);
        let bulk2 = w.stack(ep(1)).unwrap().new_message(&b"bulk2"[..]);
        let mut urgent = w.stack(ep(1)).unwrap().new_message(&b"urgent"[..]);
        urgent.meta.priority = 9;
        w.down(ep(1), Down::Send { dests: vec![ep(2)], msg: bulk1 });
        w.down(ep(1), Down::Send { dests: vec![ep(2)], msg: bulk2 });
        w.down(ep(1), Down::Send { dests: vec![ep(2)], msg: urgent });
        w.run_for(Duration::from_secs(1));
        assert_eq!(
            sends_of(&w, ep(2)),
            vec![b"bulk1".to_vec(), b"urgent".to_vec(), b"bulk2".to_vec()]
        );
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut w = world(10, NetConfig::reliable(), 1);
        for k in 0..5u8 {
            let msg = w.stack(ep(1)).unwrap().new_message(vec![k]);
            w.down(ep(1), Down::Send { dests: vec![ep(2)], msg });
        }
        w.run_for(Duration::from_secs(1));
        assert_eq!(sends_of(&w, ep(2)), (0..5).map(|k| vec![k]).collect::<Vec<_>>());
    }
}
