//! Run-time protocol composition: the layer registry and the stack-string
//! parser.
//!
//! "When creating an endpoint, a process describes, **at run-time**, what
//! stack of protocols it needs" (§4) — unlike the x-kernel, where
//! "configuration is done at compile-time, not at run-time" (§12).  A
//! stack description is a colon-separated list of layer names, top first,
//! optionally parameterized:
//!
//! ```text
//! TOTAL:MBRSHIP:FRAG(size=512):NAK(window=64):COM
//! ```
//!
//! The registry holds "a library of about thirty different protocols, each
//! providing a particular communication feature" (§1) — 37 layer
//! types in this reproduction; [`layer_names`] enumerates them.

use crate::causal::{Causal, Ts};
use crate::com::Com;
use crate::fd::{Fd, FdConfig};
use crate::frag::{Frag, NFrag};
use crate::mbrship::{Mbrship, MbrshipConfig};
use crate::membership_parts::{Bms, FlushLayer, Vss};
use crate::merge::Merge;
use crate::nak::{Nak, NakConfig};
use crate::nnak::Nnak;
use crate::pack::Pack;
use crate::pinwheel::Pinwheel;
use crate::reference::{NakRef, TotalRef};
use crate::safe::Safe;
use crate::services::{ClockSync, Mux, Rpc, Secure};
use crate::stable::Stable;
use crate::total::Total;
use crate::util::{
    Acct, Chksum, Compress, DropEvery, Encrypt, Flow, Logger, Nop, NopOpaque, Prio, Seqno, Sign,
    Trace,
};
use horus_core::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// Parsed layer parameters: `key=value` pairs from the stack string.
#[derive(Debug, Clone, Default)]
pub struct Params(BTreeMap<String, String>);

impl Params {
    /// Looks up and parses a parameter.
    ///
    /// # Errors
    ///
    /// Fails if the value does not parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, HorusError> {
        match self.0.get(key) {
            None => Ok(None),
            Some(v) => v.parse::<T>().map(Some).map_err(|_| {
                HorusError::BadParam(format!("parameter {key}={v} is not a valid value"))
            }),
        }
    }

    /// Like [`Params::get`] with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, HorusError> {
        Ok(self.get(key)?.unwrap_or(default))
    }

    /// A `Duration` parameter expressed in milliseconds.
    pub fn millis_or(&self, key: &str, default: Duration) -> Result<Duration, HorusError> {
        Ok(self.get::<u64>(key)?.map(Duration::from_millis).unwrap_or(default))
    }

    /// Sets a parameter (used by composition-aware defaults).
    pub fn set(&mut self, key: &str, value: &str) {
        self.0.insert(key.to_string(), value.to_string());
    }
}

/// One parsed element of a stack description.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Upper-cased layer name.
    pub name: String,
    /// Its parameters.
    pub params: Params,
}

/// Parses `"TOTAL:MBRSHIP:FRAG(size=512):NAK:COM"` into layer specs,
/// top first.
///
/// # Errors
///
/// Fails on empty input, unbalanced parentheses, or malformed `key=value`
/// pairs.
pub fn parse_stack(desc: &str) -> Result<Vec<LayerSpec>, HorusError> {
    let desc = desc.trim();
    if desc.is_empty() {
        return Err(HorusError::BadStack("empty stack description".into()));
    }
    // Split on ':' outside parentheses.
    let mut specs = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let bytes = desc.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| HorusError::BadStack(format!("unbalanced ')' in {desc:?}")))?;
            }
            b':' if depth == 0 => {
                specs.push(parse_one(&desc[start..i])?);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(HorusError::BadStack(format!("unbalanced '(' in {desc:?}")));
    }
    specs.push(parse_one(&desc[start..])?);
    Ok(specs)
}

fn parse_one(part: &str) -> Result<LayerSpec, HorusError> {
    let part = part.trim();
    if part.is_empty() {
        return Err(HorusError::BadStack("empty layer name in stack description".into()));
    }
    let (name, args) = match part.find('(') {
        None => (part, ""),
        Some(i) => {
            let rest = &part[i + 1..];
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| HorusError::BadStack(format!("missing ')' after {part:?}")))?;
            (&part[..i], inner)
        }
    };
    let mut params = BTreeMap::new();
    for pair in args.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| HorusError::BadParam(format!("expected key=value, got {pair:?}")))?;
        params.insert(k.trim().to_string(), v.trim().to_string());
    }
    Ok(LayerSpec { name: name.trim().to_uppercase(), params: Params(params) })
}

/// Instantiates a single layer from its spec.
///
/// # Errors
///
/// Fails on unknown names or unparseable parameters.
pub fn build_layer(spec: &LayerSpec) -> Result<Box<dyn Layer>, HorusError> {
    let p = &spec.params;
    Ok(match spec.name.as_str() {
        "COM" => {
            let promiscuous = p.get_or("promiscuous", false)?;
            let push_src = p.get_or("push_src", false)?;
            Box::new(match (promiscuous, push_src) {
                (true, _) => Com::promiscuous(),
                (false, true) => Com::with_pushed_src(),
                (false, false) => Com::new(),
            })
        }
        "NAK" => Box::new(Nak::new(NakConfig {
            status_period: p.millis_or("period", Duration::from_millis(20))?,
            fail_timeout: p.millis_or("fail_timeout", Duration::from_millis(200))?,
            window: p.get_or("window", 4096)?,
            buffer_cap: p.get_or("buffer", 16384)?,
            rto: p.millis_or("rto", Duration::from_millis(40))?,
            rto_max: p.millis_or("rto_max", Duration::from_millis(320))?,
            uni_gc: p.millis_or("uni_gc", Duration::from_millis(1600))?,
            retransmit: p.get_or("retransmit", true)?,
        })),
        "FD" => Box::new(Fd::new(FdConfig {
            period: p.millis_or("period", Duration::from_millis(25))?,
            min_timeout: p.millis_or("min_timeout", Duration::from_millis(75))?,
            margin: p.get_or("margin", 3.0)?,
            jitter: p.millis_or("jitter", Duration::from_millis(10))?,
        })),
        "NNAK" => Box::new(Nnak::new(
            p.get_or("window", 8)?,
            p.millis_or("rto", Duration::from_millis(30))?,
        )),
        "NAK_REF" => Box::new(NakRef::new(
            p.millis_or("period", Duration::from_millis(20))?,
            p.millis_or("fail_timeout", Duration::from_millis(200))?,
        )),
        "FRAG" => Box::new(Frag::new(p.get_or("size", 1024)?)),
        "PACK" => Box::new(Pack::new(
            p.get_or("msgs", 16)?,
            p.get_or("bytes", 1200)?,
            p.millis_or("delay", Duration::from_millis(1))?,
        )),
        "NFRAG" => Box::new(NFrag::new(
            p.get_or("size", 1024)?,
            p.millis_or("timeout", Duration::from_secs(2))?,
        )),
        "MBRSHIP" => Box::new(Mbrship::new(MbrshipConfig {
            auto_merge: p.get_or("auto_merge", true)?,
            primary_partition: p.get_or("primary", false)?,
            tick: p.millis_or("tick", Duration::from_millis(25))?,
            flush_timeout: p.millis_or("flush_timeout", Duration::from_millis(400))?,
            merge_retries: p.get_or("merge_retries", 8)?,
        })),
        "BMS" => Box::new(Bms::new(
            p.millis_or("tick", Duration::from_millis(25))?,
            p.millis_or("timeout", Duration::from_millis(400))?,
            p.get_or("auto_ok", false)?,
        )),
        "VSS" => Box::new(Vss::new(p.get_or("auto_ok", true)?)),
        "FLUSH" => Box::new(FlushLayer::new()),
        "TOTAL" => Box::new(Total::new()),
        "TOTAL_REF" => Box::new(TotalRef::new()),
        "CAUSAL" => Box::new(Causal::new()),
        "TS" => Box::new(Ts::new()),
        "SAFE" => Box::new(Safe::new()),
        "STABLE" => Box::new(Stable::new(
            p.get_or("auto_ack", true)?,
            p.millis_or("period", Duration::from_millis(20))?,
        )),
        "PINWHEEL" => Box::new(Pinwheel::new(
            p.get_or("auto_ack", true)?,
            p.millis_or("slot", Duration::from_millis(20))?,
        )),
        "MERGE" => {
            let contacts: Vec<EndpointAddr> = match p.get::<String>("contacts")? {
                Some(list) => list
                    .split('+')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map(EndpointAddr::new)
                            .map_err(|_| HorusError::BadParam(format!("bad contact id {s:?}")))
                    })
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            };
            Box::new(Merge::new(contacts, p.millis_or("period", Duration::from_millis(50))?))
        }
        "CHKSUM" => Box::new(Chksum::default()),
        "SIGN" => Box::new(Sign::new(p.get_or("key", 0)?)),
        "ENCRYPT" => Box::new(Encrypt::new(p.get_or("key", 0)?)),
        "COMPRESS" => Box::new(Compress::default()),
        "FLOW" => Box::new(Flow::new(
            p.get_or("rate", 100)?,
            p.millis_or("period", Duration::from_millis(10))?,
        )),
        "PRIO" => Box::new(Prio::new(p.millis_or("window", Duration::from_millis(1))?)),
        "TRACE" => Box::new(Trace::new(p.get_or("verbose", false)?)),
        "ACCT" => Box::new(Acct::new()),
        "LOGGER" => Box::new(Logger::new()),
        "DROP" => Box::new(DropEvery::new(p.get_or("nth", 2)?)),
        "SEQNO" => Box::new(Seqno::default()),
        "RPC" => Box::new(Rpc::new(
            p.millis_or("timeout", Duration::from_millis(100))?,
            p.get_or("retries", 3)?,
        )),
        "CLOCKSYNC" => Box::new(ClockSync::new(
            p.get_or("skew_us", 0)?,
            p.millis_or("period", Duration::from_millis(50))?,
        )),
        "SECURE" => Box::new(Secure::new(p.get_or("master", 0)?)),
        "MUX" => Box::new(Mux::new()),
        "NOP" => Box::new(Nop),
        "NOP_OPAQUE" => Box::new(NopOpaque),
        other => return Err(HorusError::UnknownLayer(other.to_string())),
    })
}

/// Every layer name the registry can instantiate — the protocol library
/// of §1's "about thirty different protocols".
pub fn layer_names() -> Vec<&'static str> {
    vec![
        "COM",
        "NAK",
        "NNAK",
        "NAK_REF",
        "FD",
        "FRAG",
        "NFRAG",
        "PACK",
        "MBRSHIP",
        "BMS",
        "VSS",
        "FLUSH",
        "TOTAL",
        "TOTAL_REF",
        "CAUSAL",
        "TS",
        "SAFE",
        "STABLE",
        "PINWHEEL",
        "MERGE",
        "CHKSUM",
        "SIGN",
        "ENCRYPT",
        "COMPRESS",
        "FLOW",
        "PRIO",
        "TRACE",
        "ACCT",
        "LOGGER",
        "DROP",
        "SEQNO",
        "NOP",
        "NOP_OPAQUE",
        "RPC",
        "CLOCKSYNC",
        "SECURE",
        "MUX",
    ]
}

/// Builds a full stack for `local` from a stack description string.
///
/// # Errors
///
/// Fails on parse errors, unknown layers, or invalid compositions.
///
/// ```
/// use horus_layers::registry::build_stack;
/// use horus_core::prelude::*;
/// let s = build_stack(EndpointAddr::new(9), "CHKSUM:NAK:COM", StackConfig::default())?;
/// assert_eq!(s.layer_names(), vec!["CHKSUM", "NAK", "COM"]);
/// # Ok::<(), HorusError>(())
/// ```
pub fn build_stack(
    local: EndpointAddr,
    desc: &str,
    config: StackConfig,
) -> Result<Stack, HorusError> {
    let mut specs = parse_stack(desc)?;
    // Composition-aware flush_ok defaults (Table 1's `flush`/`flush_ok`
    // contract): the *topmost* flush participant answers.  A FLUSH layer
    // does real recovery; otherwise VSS answers immediately; a bare BMS
    // answers itself.  Explicit `auto_ok=...` parameters always win.
    let mut flush_above = false;
    let mut responder_above = false;
    for spec in specs.iter_mut() {
        if spec.name == "FLUSH" {
            flush_above = true;
            responder_above = true;
        }
        if spec.name == "VSS" {
            if spec.params.get::<bool>("auto_ok")?.is_none() {
                spec.params.set("auto_ok", if flush_above { "false" } else { "true" });
            }
            responder_above = true;
        }
        if spec.name == "BMS" && spec.params.get::<bool>("auto_ok")?.is_none() {
            spec.params.set("auto_ok", if responder_above { "false" } else { "true" });
        }
    }
    let mut b = StackBuilder::new(local).config(config);
    for spec in &specs {
        b = b.push(build_layer(spec)?);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_names_and_params() {
        let specs = parse_stack("total:MBRSHIP:FRAG(size=512):NAK(window=64, rto=10):COM").unwrap();
        let names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"]);
        assert_eq!(specs[2].params.get::<usize>("size").unwrap(), Some(512));
        assert_eq!(specs[3].params.get::<u32>("window").unwrap(), Some(64));
    }

    #[test]
    fn rejects_malformed_descriptions() {
        assert!(parse_stack("").is_err());
        assert!(parse_stack("NAK:").is_err());
        assert!(parse_stack("FRAG(size=512").is_err());
        assert!(parse_stack("FRAG size=512)").is_err());
        assert!(parse_stack("FRAG(size)").is_err());
        assert!(parse_stack("NO_SUCH").map(|s| build_layer(&s[0])).unwrap().is_err());
    }

    #[test]
    fn every_registered_layer_instantiates() {
        for name in layer_names() {
            let spec = parse_stack(name).unwrap().remove(0);
            let layer = build_layer(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(layer.name(), name, "constructed layer reports its own name");
        }
        assert!(layer_names().len() >= 30, "the paper's ~thirty protocols");
    }

    #[test]
    fn canonical_stack_builds() {
        let s = build_stack(
            EndpointAddr::new(1),
            "TOTAL:MBRSHIP:FRAG:NAK:COM(promiscuous=true)",
            StackConfig::default(),
        )
        .unwrap();
        assert_eq!(s.layer_names(), vec!["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"]);
    }

    #[test]
    fn bad_param_value_is_reported() {
        let e = build_stack(EndpointAddr::new(1), "FRAG(size=many)", StackConfig::default());
        assert!(matches!(e, Err(HorusError::BadParam(_))));
    }

    #[test]
    fn run_time_composition_two_apps_one_process() {
        // §1: "Horus can support many applications concurrently, each of
        // which can be configured individually."  Two endpoints with
        // different stacks run in one world (one "process").
        use horus_net::NetConfig;
        use horus_sim::SimWorld;
        let mut w = SimWorld::new(1, NetConfig::reliable());
        let a =
            build_stack(EndpointAddr::new(1), "CHKSUM:NAK:COM", StackConfig::default()).unwrap();
        let b = build_stack(EndpointAddr::new(2), "COMPRESS:SEQNO:COM", StackConfig::default())
            .unwrap();
        w.add_endpoint(a);
        w.add_endpoint(b);
        w.join(EndpointAddr::new(1), GroupAddr::new(1));
        w.join(EndpointAddr::new(2), GroupAddr::new(2));
        w.cast_bytes(EndpointAddr::new(1), &b"x"[..]);
        w.cast_bytes(EndpointAddr::new(2), &b"y"[..]);
        w.run_for(std::time::Duration::from_millis(50));
        // Each talks only to its own group and stack.
        assert_eq!(w.delivered_casts(EndpointAddr::new(1)).len(), 1);
        assert_eq!(w.delivered_casts(EndpointAddr::new(2)).len(), 1);
    }
}
