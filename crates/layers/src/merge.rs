//! MERGE — automatic view merging (Table 3, property P16).
//!
//! §5 notes that "when communication is restored, views may be merged
//! using the *merge* downcall"; the MERGE layer automates the downcall.
//! It is configured with a set of *rendezvous contacts* (the moral
//! equivalent of gossip seeds).  Whenever this endpoint coordinates its
//! own view and a contact is missing from it, MERGE periodically issues
//! `merge(contact)` to the membership layer below, which runs the §5 merge
//! flush.  Once every contact is a fellow member the layer goes quiet.
//!
//! Requires P1, P3, P4, P8–P12, P15 beneath (i.e. a full membership
//! stack); provides P16.

use horus_core::prelude::*;
use std::time::Duration;

const TIMER_PROBE: u64 = 0;

/// The automatic-merge layer.
#[derive(Debug, Clone)]
pub struct Merge {
    /// Endpoints this group should coalesce around.
    contacts: Vec<EndpointAddr>,
    period: Duration,
    view: Option<View>,
    me: Option<EndpointAddr>,
    /// Merge attempts issued.
    pub probes: u64,
}

impl Merge {
    /// Creates a MERGE layer that pulls the given contacts into the view.
    pub fn new(contacts: Vec<EndpointAddr>, period: Duration) -> Self {
        Merge { contacts, period, view: None, me: None, probes: 0 }
    }

    fn missing_contact(&self) -> Option<EndpointAddr> {
        let view = self.view.as_ref()?;
        let me = self.me?;
        // Only the coordinator initiates merges (MBRSHIP's rule), and it
        // defers to senior contacts: the junior side merges into the
        // senior side so two probing groups do not chase each other.
        if view.coordinator_among(view.members()) != Some(me) {
            return None;
        }
        // Merge strictly toward smaller addresses: if both sides probed
        // each other simultaneously, two Merging coordinators could chase
        // one another forever.
        self.contacts.iter().copied().find(|c| !view.contains(*c) && *c < me)
    }
}

impl Layer for Merge {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "MERGE"
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        ctx.set_timer(self.period, TIMER_PROBE);
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        if let Up::View(v) = &ev {
            self.view = Some(v.clone());
        }
        ctx.up(ev);
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == TIMER_PROBE {
            if let Some(contact) = self.missing_contact() {
                self.probes += 1;
                ctx.down(Down::Merge { contact });
            }
            ctx.set_timer(self.period, TIMER_PROBE);
        }
    }

    fn dump(&self) -> String {
        format!("contacts={:?} probes={}", self.contacts, self.probes)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::{Nak, NakConfig};
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn stack(i: u64, contacts: Vec<EndpointAddr>) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Merge::new(contacts, Duration::from_millis(50))))
            .push(Box::new(Mbrship::new(MbrshipConfig::default())))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::new(NakConfig {
                fail_timeout: Duration::from_millis(120),
                ..NakConfig::default()
            })))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    #[test]
    fn group_forms_automatically_without_manual_merges() {
        let mut w = SimWorld::new(1, NetConfig::reliable());
        let contacts = vec![ep(1)];
        for i in 1..=4 {
            w.add_endpoint(stack(i, contacts.clone()));
            w.join(ep(i), GroupAddr::new(1));
        }
        w.run_for(Duration::from_secs(3));
        for i in 1..=4 {
            assert_eq!(
                w.installed_views(ep(i)).last().unwrap().len(),
                4,
                "endpoint {i} auto-joined the group"
            );
        }
    }

    #[test]
    fn partitions_heal_automatically() {
        let mut w = SimWorld::new(2, NetConfig::reliable());
        for i in 1..=4 {
            w.add_endpoint(stack(i, vec![ep(1)]));
            w.join(ep(i), GroupAddr::new(1));
        }
        w.run_for(Duration::from_secs(3));
        let t = w.now();
        w.partition_at(t, &[&[ep(1), ep(2)], &[ep(3), ep(4)]]);
        w.run_for(Duration::from_secs(2));
        assert_eq!(w.installed_views(ep(3)).last().unwrap().len(), 2);
        // Heal: MERGE re-probes ep(1) and the group coalesces by itself.
        let t = w.now();
        w.heal_at(t);
        w.run_for(Duration::from_secs(4));
        for i in 1..=4 {
            assert_eq!(
                w.installed_views(ep(i)).last().unwrap().len(),
                4,
                "endpoint {i} re-merged automatically"
            );
        }
    }
}
