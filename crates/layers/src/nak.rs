//! NAK — reliable FIFO delivery via sequence numbers and negative
//! acknowledgements (§7).
//!
//! "The NAK layer provides FIFO ordering of messages.  For this it pushes a
//! sequence number on each outgoing message, that the receiver can check.
//! If the receiver detects message loss, it sends back a negative
//! acknowledgement (NAK).  The NAK layer buffers some messages for
//! retransmission, and will retransmit if the message is still buffered.
//! If not, it will send a place holder that will result in a LOST_MESSAGE
//! event when received.  Each endpoint will occasionally multicast its
//! protocol status, so buffered messages may be flushed, and window-based
//! flow control may be implemented.  It also allows the detection of
//! failures or disconnections (in case a status update is not received in
//! time)."
//!
//! All five mechanisms above are implemented: per-sender multicast sequence
//! numbers with out-of-order buffering and NAK-triggered retransmission;
//! LOST placeholders; periodic status multicasts carrying cumulative
//! acknowledgement vectors (pruning the retransmission buffer and closing
//! the flow-control window); and status-silence failure suspicion reported
//! through PROBLEM upcalls.  Point-to-point `send`s get their own reliable
//! FIFO channels with positive acknowledgements — the membership layer's
//! flush protocol depends on them.
//!
//! Provides properties P3 (FIFO unicast) and P4 (FIFO multicast) of
//! Table 4; requires only best-effort delivery with source addresses
//! underneath.

use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

const FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 3), FieldSpec::new("seq", 32)];

const KIND_DATA: u64 = 0;
const KIND_STATUS: u64 = 1;
const KIND_NAK: u64 = 2;
const KIND_LOST: u64 = 3;
const KIND_UNI_DATA: u64 = 4;
const KIND_UNI_ACK: u64 = 5;
const KIND_UNI_SKIP: u64 = 6;

const TIMER_TICK: u64 = 0;

/// Longest seq range one NAK message may request.
const MAX_NAK_RANGE: u32 = 64;

/// Tuning knobs for the NAK layer.
#[derive(Debug, Clone)]
pub struct NakConfig {
    /// Period of the status multicast (acks, liveness, flow control).
    pub status_period: Duration,
    /// Suspect a view member after this much status silence.
    pub fail_timeout: Duration,
    /// Maximum unacknowledged multicasts in flight before new casts queue.
    pub window: u32,
    /// Retransmission buffer capacity per endpoint; overflow discards the
    /// oldest (turning future NAKs for them into LOST placeholders).
    pub buffer_cap: usize,
    /// Initial retransmission timeout for unacked point-to-point messages.
    /// Each further retransmission of the same message doubles the wait
    /// (exponential backoff) up to `rto_max`.
    pub rto: Duration,
    /// Backoff ceiling: the per-message retransmission interval never
    /// exceeds this, so a long outage cannot push recovery arbitrarily far
    /// out once the peer returns.
    pub rto_max: Duration,
    /// Give up on a point-to-point channel to a peer **outside the
    /// installed view** after this much incoming silence: unacked messages
    /// are abandoned (retransmission stops, pending work drains) and a SKIP
    /// control heals the receiver-side sequence gap if the peer ever
    /// reconnects.  Channels to current view members never expire — the
    /// membership flush depends on them.  Without this, a single unacked
    /// message to a departed member is retransmitted forever (the
    /// liveness wedge the chaos soak surfaced).
    pub uni_gc: Duration,
    /// Disables every retransmission path (NAK-triggered multicast
    /// recovery and point-to-point timer retransmits) when `false`.
    /// **Deliberately breaks liveness** — this is the planted-bug knob the
    /// soak's liveness monitors are validated against in CI; never disable
    /// it in a real stack.
    pub retransmit: bool,
}

impl Default for NakConfig {
    fn default() -> Self {
        NakConfig {
            status_period: Duration::from_millis(20),
            fail_timeout: Duration::from_millis(200),
            window: 4096,
            buffer_cap: 16384,
            rto: Duration::from_millis(40),
            rto_max: Duration::from_millis(320),
            uni_gc: Duration::from_millis(1600),
            retransmit: true,
        }
    }
}

/// One unacked outgoing point-to-point message awaiting (re)transmission.
#[derive(Debug, Clone)]
struct UniOut {
    msg: Message,
    /// Time of the most recent transmission.
    sent_at: SimTime,
    /// Transmissions so far beyond the first (drives the backoff).
    attempts: u32,
}

/// Per-source multicast receive state.
#[derive(Debug, Default, Clone)]
struct PeerRx {
    /// Next expected sequence number (seqs start at 1; 0 = nothing yet).
    expected: u32,
    /// Out-of-order buffer.
    ooo: BTreeMap<u32, Message>,
    /// Sequence numbers declared lost by the sender.
    lost: BTreeSet<u32>,
    /// Last time we heard anything from this peer.
    last_heard: SimTime,
    /// Highest seq this peer claims to have sent (from its status).
    claimed_sent: u32,
}

/// Per-peer point-to-point channel state.
#[derive(Debug, Default, Clone)]
struct UniChan {
    /// Next seq to assign for sends to this peer.
    next: u32,
    /// Unacked outgoing messages with retransmission state.
    out: BTreeMap<u32, UniOut>,
    /// Next expected incoming seq from this peer.
    expected: u32,
    /// Out-of-order incoming buffer.
    ooo: BTreeMap<u32, Message>,
    /// Highest cumulative ack we sent (to re-ack duplicates).
    acked: u32,
    /// Last time anything (data or ack) arrived from this peer; the
    /// channel-GC idle clock.  Initialised to the channel's creation time
    /// so a fresh channel gets a full `uni_gc` grace period.
    last_in: SimTime,
    /// Highest seq the channel GC abandoned unacked.  While the peer's
    /// cumulative ack trails this, every ack triggers a SKIP control that
    /// jumps the receiver past the abandoned range.
    abandoned: u32,
}

/// The production NAK layer.
#[derive(Debug, Clone)]
pub struct Nak {
    cfg: NakConfig,
    /// Next multicast seq to assign (first message gets 1).
    next_seq: u32,
    /// Retransmission buffer of own multicasts.
    sendbuf: BTreeMap<u32, Message>,
    /// Flow-control queue of not-yet-sent casts.
    pending: VecDeque<Message>,
    /// Per-source receive state.
    peers: BTreeMap<EndpointAddr, PeerRx>,
    /// Cumulative ack of *my* multicasts, per peer (from their statuses).
    acks: BTreeMap<EndpointAddr, u32>,
    /// Point-to-point channels.
    uni: BTreeMap<EndpointAddr, UniChan>,
    /// Installed destination view (None until a membership layer installs
    /// one).
    dests: Option<Vec<EndpointAddr>>,
    /// Members already reported through PROBLEM (until the next view).
    suspected: BTreeSet<EndpointAddr>,
    /// Our own address (known after init).
    me: Option<EndpointAddr>,
    /// Statistics.
    naks_sent: u64,
    retransmissions: u64,
    lost_markers: u64,
    duplicates: u64,
    channels_gcd: u64,
}

impl Default for Nak {
    fn default() -> Self {
        Nak::new(NakConfig::default())
    }
}

impl Nak {
    /// Creates a NAK layer with the given tuning.
    pub fn new(cfg: NakConfig) -> Self {
        Nak {
            cfg,
            next_seq: 1,
            sendbuf: BTreeMap::new(),
            pending: VecDeque::new(),
            peers: BTreeMap::new(),
            acks: BTreeMap::new(),
            uni: BTreeMap::new(),
            dests: None,
            suspected: BTreeSet::new(),
            me: None,
            naks_sent: 0,
            retransmissions: 0,
            lost_markers: 0,
            duplicates: 0,
            channels_gcd: 0,
        }
    }

    /// In-flight window: own casts not yet acked by every destination.
    fn in_flight(&self) -> u32 {
        (self.next_seq - 1).saturating_sub(self.min_ack())
    }

    /// The lowest cumulative ack over all (non-suspected) destinations.
    /// Without an installed view the destination set is unknown, so every
    /// peer we have ever heard from counts.
    fn min_ack(&self) -> u32 {
        let me = self.me;
        let relevant: Vec<EndpointAddr> = match &self.dests {
            Some(dests) => dests
                .iter()
                .copied()
                .filter(|d| !self.suspected.contains(d) && Some(*d) != me)
                .collect(),
            None => self
                .peers
                .keys()
                .copied()
                .filter(|p| Some(*p) != me && !self.suspected.contains(p))
                .collect(),
        };
        relevant
            .iter()
            .map(|d| self.acks.get(d).copied().unwrap_or(0))
            .min()
            .unwrap_or(self.next_seq - 1)
    }

    fn send_cast(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_DATA);
        ctx.set(&mut msg, 1, seq as u64);
        self.sendbuf.insert(seq, msg.clone());
        while self.sendbuf.len() > self.cfg.buffer_cap {
            let (&oldest, _) = self.sendbuf.iter().next().expect("non-empty");
            self.sendbuf.remove(&oldest);
        }
        ctx.down(Down::Cast(msg));
    }

    fn control(&self, ctx: &mut LayerCtx<'_>, kind: u64, seq: u32, body: bytes::Bytes) -> Message {
        let mut msg = ctx.new_message(body);
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, kind);
        ctx.set(&mut msg, 1, seq as u64);
        msg
    }

    fn send_nak(&mut self, src: EndpointAddr, from: u32, to: u32, ctx: &mut LayerCtx<'_>) {
        let to = to.min(from + MAX_NAK_RANGE - 1);
        let mut w = WireWriter::with_capacity(8);
        w.put_u32(from);
        w.put_u32(to);
        let msg = self.control(ctx, KIND_NAK, 0, w.finish());
        self.naks_sent += 1;
        ctx.down(Down::Send { dests: vec![src], msg });
    }

    fn send_status(&mut self, ctx: &mut LayerCtx<'_>) {
        let entries: Vec<(EndpointAddr, u32)> =
            self.peers.iter().map(|(&p, rx)| (p, rx.expected.saturating_sub(1))).collect();
        let mut w = WireWriter::with_capacity(8 + 12 * entries.len());
        w.put_u32(self.next_seq - 1);
        w.put_u32(entries.len() as u32);
        for (p, cum) in entries {
            w.put_addr(p);
            w.put_u32(cum);
        }
        let msg = self.control(ctx, KIND_STATUS, 0, w.finish());
        ctx.down(Down::Cast(msg));
    }

    /// Delivers contiguous buffered messages (and lost placeholders).
    fn drain(&mut self, src: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        #[allow(clippy::large_enum_variant)] // short-lived scratch value
        enum Step {
            Lost,
            Deliver(Message),
            Done,
        }
        loop {
            let step = {
                let rx = self.peers.entry(src).or_default();
                let next = rx.expected.max(1);
                if let Some(msg) = rx.ooo.remove(&next) {
                    // A LOST placeholder and a late retransmission of the
                    // same seq can race; if the real data made it here,
                    // deliver it and discard the marker.  (Checking `lost`
                    // first orphaned the ooo entry *below* `expected`
                    // forever — a permanent phantom unit of pending work
                    // the chaos soak's progress watchdog caught.)
                    rx.lost.remove(&next);
                    rx.expected = next + 1;
                    Step::Deliver(msg)
                } else if rx.lost.remove(&next) {
                    rx.expected = next + 1;
                    Step::Lost
                } else {
                    Step::Done
                }
            };
            match step {
                Step::Lost => {
                    self.lost_markers += 1;
                    ctx.up(Up::LostMessage { src });
                }
                Step::Deliver(msg) => ctx.up(Up::Cast { src, msg }),
                Step::Done => break,
            }
        }
    }

    fn handle_data(&mut self, src: EndpointAddr, seq: u32, msg: Message, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let (expected, gap_is_new) = {
            let rx = self.peers.entry(src).or_default();
            rx.last_heard = now;
            let expected = rx.expected.max(1);
            if seq < expected {
                (expected, None)
            } else if seq == expected {
                rx.expected = seq + 1;
                (expected, Some(false))
            } else {
                let fresh = rx.ooo.insert(seq, msg.clone()).is_none();
                (expected, if fresh { Some(true) } else { None })
            }
        };
        match (seq.cmp(&expected), gap_is_new) {
            (std::cmp::Ordering::Less, _) => self.duplicates += 1,
            (std::cmp::Ordering::Equal, _) => {
                ctx.up(Up::Cast { src, msg });
                self.drain(src, ctx);
            }
            (std::cmp::Ordering::Greater, Some(true)) => {
                // Gap: request the missing range.
                self.send_nak(src, expected, seq - 1, ctx);
            }
            (std::cmp::Ordering::Greater, _) => self.duplicates += 1,
        }
    }

    fn handle_status(&mut self, src: EndpointAddr, body: &[u8], ctx: &mut LayerCtx<'_>) {
        let me = ctx.local_addr();
        let mut r = WireReader::new(body);
        let Ok(claimed_sent) = r.get_u32() else { return };
        let Ok(n) = r.get_u32() else { return };
        let mut their_recv_of_me = None;
        for _ in 0..n {
            let (Ok(addr), Ok(cum)) = (r.get_addr(), r.get_u32()) else { return };
            if addr == me {
                their_recv_of_me = Some(cum);
            }
        }
        if src == me {
            return; // own loopback status carries no new information
        }
        let now = ctx.now();
        let (expected, claimed) = {
            let rx = self.peers.entry(src).or_default();
            rx.last_heard = now;
            rx.claimed_sent = rx.claimed_sent.max(claimed_sent);
            (rx.expected.max(1), rx.claimed_sent)
        };
        // Detect wholesale loss: the peer sent messages we never saw.
        if claimed >= expected {
            self.send_nak(src, expected, claimed, ctx);
        }
        if let Some(cum) = their_recv_of_me {
            let e = self.acks.entry(src).or_insert(0);
            *e = (*e).max(cum);
        }
        // Pruning: drop buffered casts everyone has — but only once a view
        // pins down who "everyone" is; without one, an unheard-from member
        // could still be missing everything, so only the capacity cap
        // bounds the buffer.
        if self.dests.is_some() {
            let min = self.min_ack();
            self.sendbuf.retain(|&s, _| s > min);
        }
        // Window may have opened.
        self.pump_pending(ctx);
    }

    fn pump_pending(&mut self, ctx: &mut LayerCtx<'_>) {
        while !self.pending.is_empty() && self.in_flight() < self.cfg.window {
            let msg = self.pending.pop_front().expect("checked non-empty");
            self.send_cast(msg, ctx);
        }
    }

    fn handle_nak(&mut self, src: EndpointAddr, body: &[u8], ctx: &mut LayerCtx<'_>) {
        let mut r = WireReader::new(body);
        let (Ok(from), Ok(to)) = (r.get_u32(), r.get_u32()) else { return };
        if from == 0 || to < from || to >= self.next_seq {
            return; // malformed or out of range
        }
        if !self.cfg.retransmit {
            return; // planted-bug mode: losses stay lost
        }
        for seq in from..=to.min(from + MAX_NAK_RANGE - 1) {
            if let Some(buffered) = self.sendbuf.get(&seq) {
                self.retransmissions += 1;
                ctx.down(Down::Send { dests: vec![src], msg: buffered.clone() });
            } else {
                // Pruned or overflowed: placeholder (§7's LOST_MESSAGE).
                let msg = self.control(ctx, KIND_LOST, seq, bytes::Bytes::new());
                ctx.down(Down::Send { dests: vec![src], msg });
            }
        }
    }

    fn handle_lost(&mut self, src: EndpointAddr, seq: u32, ctx: &mut LayerCtx<'_>) {
        let rx = self.peers.entry(src).or_default();
        if seq >= rx.expected.max(1) {
            rx.lost.insert(seq);
            self.drain(src, ctx);
        }
    }

    /// The point-to-point channel to `peer`, created (with its GC idle
    /// clock started at `now`) on first use.
    fn chan(&mut self, peer: EndpointAddr, now: SimTime) -> &mut UniChan {
        self.uni.entry(peer).or_insert_with(|| UniChan { last_in: now, ..UniChan::default() })
    }

    fn send_uni_ack(&mut self, peer: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let cum = {
            let chan = self.chan(peer, now);
            chan.acked = chan.expected.saturating_sub(1).max(chan.acked);
            chan.acked
        };
        let msg = self.control(ctx, KIND_UNI_ACK, cum, bytes::Bytes::new());
        ctx.down(Down::Send { dests: vec![peer], msg });
    }

    fn handle_uni_data(
        &mut self,
        src: EndpointAddr,
        seq: u32,
        msg: Message,
        ctx: &mut LayerCtx<'_>,
    ) {
        let now = ctx.now();
        let (deliveries, dup) = {
            let chan = self.chan(src, now);
            chan.last_in = now;
            let expected = chan.expected.max(1);
            if seq >= expected {
                chan.ooo.insert(seq, msg);
                // Collect the contiguous prefix.
                let mut out = Vec::new();
                while let Some(m) = chan.ooo.remove(&chan.expected.max(1)) {
                    chan.expected = chan.expected.max(1) + 1;
                    out.push(m);
                }
                (out, false)
            } else {
                (Vec::new(), true)
            }
        };
        if dup {
            self.duplicates += 1;
        }
        for m in deliveries {
            ctx.up(Up::Send { src, msg: m });
        }
        if let Some(rx) = self.peers.get_mut(&src) {
            rx.last_heard = ctx.now();
        }
        self.send_uni_ack(src, ctx);
    }

    fn handle_uni_ack(&mut self, src: EndpointAddr, cum: u32, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let skip_to = {
            let Some(chan) = self.uni.get_mut(&src) else { return };
            chan.last_in = now;
            chan.out.retain(|&s, _| s > cum);
            (chan.abandoned > cum).then_some(chan.abandoned)
        };
        // The peer is stuck waiting for a seq the channel GC abandoned:
        // jump it past the abandoned range (the uni cousin of the
        // multicast LOST placeholder).
        if let Some(seq) = skip_to {
            let msg = self.control(ctx, KIND_UNI_SKIP, seq, bytes::Bytes::new());
            ctx.down(Down::Send { dests: vec![src], msg });
        }
    }

    fn handle_uni_skip(&mut self, src: EndpointAddr, seq: u32, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let deliveries = {
            let chan = self.chan(src, now);
            chan.last_in = now;
            let mut out = Vec::new();
            if seq >= chan.expected.max(1) {
                chan.expected = seq + 1;
                while let Some(m) = chan.ooo.remove(&chan.expected) {
                    chan.expected += 1;
                    out.push(m);
                }
                chan.ooo.retain(|&s, _| s > seq);
            }
            out
        };
        for m in deliveries {
            ctx.up(Up::Send { src, msg: m });
        }
        self.send_uni_ack(src, ctx);
    }

    fn check_failures(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(dests) = self.dests.clone() else { return };
        let me = ctx.local_addr();
        let now = ctx.now();
        for d in dests {
            if d == me || self.suspected.contains(&d) {
                continue;
            }
            let silent = match self.peers.get(&d) {
                Some(rx) => now.saturating_since(rx.last_heard) > self.cfg.fail_timeout,
                // Never heard at all: grace period started at view install,
                // which also initialised last_heard.
                None => false,
            };
            if silent {
                self.suspected.insert(d);
                ctx.up(Up::Problem { member: d });
            }
        }
    }
}

impl Layer for Nak {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NAK"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        ctx.set_timer(self.cfg.status_period, TIMER_TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.in_flight() >= self.cfg.window {
                    self.pending.push_back(msg);
                } else {
                    self.send_cast(msg, ctx);
                }
            }
            Down::Send { dests, msg } => {
                // One reliable FIFO channel per destination.
                let now = ctx.now();
                for dest in dests {
                    let mut m = msg.clone();
                    let seq = {
                        let chan = self.chan(dest, now);
                        chan.next += 1;
                        chan.next
                    };
                    ctx.stamp(&mut m);
                    ctx.set(&mut m, 0, KIND_UNI_DATA);
                    ctx.set(&mut m, 1, seq as u64);
                    self.uni
                        .get_mut(&dest)
                        .expect("channel just created")
                        .out
                        .insert(seq, UniOut { msg: m.clone(), sent_at: ctx.now(), attempts: 0 });
                    ctx.down(Down::Send { dests: vec![dest], msg: m });
                }
            }
            Down::InstallView(view) => {
                let now = ctx.now();
                for &m in view.members() {
                    // Grace period for newcomers.
                    self.peers.entry(m).or_default().last_heard = now;
                }
                self.dests = Some(view.members().to_vec());
                self.suspected.clear();
                ctx.down(Down::InstallView(view));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } | Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return; // not ours / garbled: drop
                }
                let kind = ctx.get(&msg, 0);
                let seq = ctx.get(&msg, 1) as u32;
                match kind {
                    KIND_DATA => self.handle_data(src, seq, msg, ctx),
                    KIND_STATUS => self.handle_status(src, &msg.body().clone(), ctx),
                    KIND_NAK => self.handle_nak(src, &msg.body().clone(), ctx),
                    KIND_LOST => self.handle_lost(src, seq, ctx),
                    KIND_UNI_DATA => self.handle_uni_data(src, seq, msg, ctx),
                    KIND_UNI_ACK => self.handle_uni_ack(src, seq, ctx),
                    KIND_UNI_SKIP => self.handle_uni_skip(src, seq, ctx),
                    _ => {}
                }
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token != TIMER_TICK {
            return;
        }
        self.send_status(ctx);
        self.check_failures(ctx);
        // Retransmit stale unacked point-to-point messages with
        // exponential backoff: the k-th retransmission waits 2^k × rto,
        // capped at rto_max.  A dead or partitioned peer costs O(log)
        // retransmissions per message instead of a fixed-period stream,
        // while the cap keeps recovery prompt once the peer returns.
        let now = ctx.now();
        // Channel GC: a peer outside the installed view that has been
        // incoming-silent for `uni_gc` is gone (crashed, excluded, or
        // behind a long partition the view change already resolved).
        // Abandon its unacked messages — retransmitting to it forever is
        // the wedge the progress watchdog flags — and remember the
        // high-water mark so `handle_uni_ack` can SKIP the peer past the
        // gap if it ever reconnects.  In-view channels never expire: the
        // membership flush relies on their reliability.
        if let Some(dests) = self.dests.clone() {
            let gc = self.cfg.uni_gc;
            for (peer, chan) in self.uni.iter_mut() {
                if dests.contains(peer) || (chan.out.is_empty() && chan.ooo.is_empty()) {
                    continue;
                }
                if now.saturating_since(chan.last_in) > gc {
                    chan.abandoned = chan.abandoned.max(chan.next);
                    chan.out.clear();
                    chan.ooo.clear();
                    self.channels_gcd += 1;
                }
            }
        }
        if self.cfg.retransmit {
            let rto = self.cfg.rto;
            let rto_max = self.cfg.rto_max.max(rto);
            let mut to_resend: Vec<(EndpointAddr, u32)> = Vec::new();
            for (&peer, chan) in &self.uni {
                for (&seq, out) in &chan.out {
                    let backoff = rto
                        .checked_mul(1u32 << out.attempts.min(16))
                        .map_or(rto_max, |b| b.min(rto_max));
                    if now.saturating_since(out.sent_at) > backoff {
                        to_resend.push((peer, seq));
                    }
                }
            }
            for (peer, seq) in to_resend {
                if let Some(chan) = self.uni.get_mut(&peer) {
                    if let Some(out) = chan.out.get_mut(&seq) {
                        out.sent_at = now;
                        out.attempts = out.attempts.saturating_add(1);
                        let m = out.msg.clone();
                        self.retransmissions += 1;
                        ctx.down(Down::Send { dests: vec![peer], msg: m });
                    }
                }
            }
        }
        self.pump_pending(ctx);
        ctx.set_timer(self.cfg.status_period, TIMER_TICK);
    }

    fn dump(&self) -> String {
        let uni_out: usize = self.uni.values().map(|c| c.out.len()).sum();
        let uni_ooo: usize = self.uni.values().map(|c| c.ooo.len()).sum();
        let rx_ooo: usize = self.peers.values().map(|r| r.ooo.len()).sum();
        let rx_lost: usize = self.peers.values().map(|r| r.lost.len()).sum();
        format!(
            "sent={} buffered={} pending={} naks={} retrans={} lost={} dups={} gcd={} \
             uni={}/{} rx={}/{} suspected={:?}",
            self.next_seq - 1,
            self.sendbuf.len(),
            self.pending.len(),
            self.naks_sent,
            self.retransmissions,
            self.lost_markers,
            self.duplicates,
            self.channels_gcd,
            uni_out,
            uni_ooo,
            rx_ooo,
            rx_lost,
            self.suspected
        )
    }

    fn pending_work(&self) -> u64 {
        // Work this layer still owes: flow-control-queued casts, unacked
        // (or gap-buffered) point-to-point traffic, and multicast receive
        // gaps — in both cases only for live in-view peers.  Gaps from
        // excluded or suspected senders are *not* owed (virtual synchrony
        // resolved their messages at the view change; the remnant buffer
        // is inert), and uni traffic to out-of-view peers is the
        // GC-managed merge-contact flow, background maintenance that may
        // legitimately probe a dead contact forever.
        let in_view = |p: &EndpointAddr| match &self.dests {
            Some(d) => d.contains(p),
            None => true,
        };
        let mut n = self.pending.len() as u64;
        for (p, chan) in &self.uni {
            if in_view(p) && !self.suspected.contains(p) {
                n += (chan.out.len() + chan.ooo.len()) as u64;
            }
        }
        for (p, rx) in &self.peers {
            if in_view(p) && !self.suspected.contains(p) {
                n += (rx.ooo.len() + rx.lost.len()) as u64;
            }
        }
        n
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use horus_net::NetConfig;
    use horus_sim::{check_fifo, DeliveryLog, SimWorld, Workload};
    use std::time::Duration;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn nak_stack(i: u64) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Nak::default()))
            .push(Box::new(Com::new()))
            .build()
            .unwrap()
    }

    fn world(n: u64, config: NetConfig, seed: u64) -> SimWorld {
        let mut w = SimWorld::new(seed, config);
        for i in 1..=n {
            w.add_endpoint(nak_stack(i));
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    #[test]
    fn reliable_network_delivers_in_order() {
        let mut w = world(3, NetConfig::reliable(), 1);
        let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 30);
        wl.schedule(&mut w, SimTime::from_millis(1));
        w.run_for(Duration::from_millis(200));
        for i in 1..=3 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 30, "endpoint {i}");
        }
        let logs: Vec<DeliveryLog> =
            (1..=3).map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i)))).collect();
        assert!(check_fifo(&logs, Workload::parse).is_empty());
    }

    #[test]
    fn recovers_from_heavy_loss() {
        for seed in 1..=5 {
            let mut w = world(3, NetConfig::lossy(0.25), seed);
            let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 60);
            wl.schedule(&mut w, SimTime::from_millis(1));
            w.run_for(Duration::from_secs(5));
            for i in 1..=3 {
                assert_eq!(
                    w.delivered_casts(ep(i)).len(),
                    60,
                    "seed {seed}, endpoint {i}: {:?}",
                    w.stack(ep(i)).unwrap().focus("NAK")
                );
            }
            let logs: Vec<DeliveryLog> =
                (1..=3).map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i)))).collect();
            assert!(check_fifo(&logs, Workload::parse).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut cfg = NetConfig::reliable();
        cfg.duplicate = 0.5;
        let mut w = world(2, cfg, 3);
        let wl = Workload::round_robin(vec![ep(1), ep(2)], 40);
        wl.schedule(&mut w, SimTime::from_millis(1));
        w.run_for(Duration::from_secs(1));
        for i in 1..=2 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 40);
        }
    }

    #[test]
    fn status_silence_raises_problem() {
        use horus_core::view::View;
        let mut w = world(2, NetConfig::reliable(), 4);
        // Install a view so NAK knows its destinations.
        let view = View::initial(GroupAddr::new(1), ep(1)).with_joined(&[ep(2)]);
        for i in 1..=2 {
            w.down(ep(i), Down::InstallView(view.clone()));
        }
        w.crash_at(SimTime::from_millis(10), ep(2));
        w.run_for(Duration::from_secs(1));
        let problems: Vec<_> = w
            .upcalls(ep(1))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Problem { member } => Some(*member),
                _ => None,
            })
            .collect();
        assert_eq!(problems, vec![ep(2)]);
    }

    #[test]
    fn unicast_send_is_reliable_under_loss() {
        for seed in 1..=5 {
            let mut w = world(2, NetConfig::lossy(0.3), 100 + seed);
            for k in 0..10u8 {
                let msg = w.stack(ep(1)).unwrap().new_message(vec![k]);
                w.down(ep(1), Down::Send { dests: vec![ep(2)], msg });
            }
            w.run_for(Duration::from_secs(3));
            let sends: Vec<u8> = w
                .upcalls(ep(2))
                .iter()
                .filter_map(|(_, up)| match up {
                    Up::Send { msg, .. } => Some(msg.body()[0]),
                    _ => None,
                })
                .collect();
            assert_eq!(sends, (0..10).collect::<Vec<u8>>(), "seed {seed}");
        }
    }

    #[test]
    fn flow_control_window_queues_excess() {
        use horus_core::view::View;
        let mut w = SimWorld::new(9, NetConfig::reliable());
        for i in 1..=2 {
            let stack = StackBuilder::new(ep(i))
                .push(Box::new(Nak::new(NakConfig { window: 4, ..NakConfig::default() })))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(stack);
            w.join(ep(i), GroupAddr::new(1));
        }
        // Flow control needs a known destination set: install a view.
        let view = View::initial(GroupAddr::new(1), ep(1)).with_joined(&[ep(2)]);
        for i in 1..=2 {
            w.down(ep(i), Down::InstallView(view.clone()));
        }
        for k in 0..20u8 {
            w.cast_bytes(ep(1), Workload::body(ep(1), k as u64 + 1, 16));
        }
        // Immediately, at most `window` casts may be in flight...
        w.run_for(Duration::from_millis(1));
        assert!(w.delivered_casts(ep(2)).len() <= 4);
        // ...but statuses open the window and everything eventually flows.
        w.run_for(Duration::from_secs(2));
        assert_eq!(w.delivered_casts(ep(2)).len(), 20);
        let logs = vec![DeliveryLog::from_upcalls(ep(2), w.upcalls(ep(2)))];
        assert!(check_fifo(&logs, Workload::parse).is_empty());
    }

    #[test]
    fn buffer_overflow_produces_lost_message() {
        // Tiny retransmission buffer + a partition that forces a gap: the
        // pruned messages come back as LOST placeholders.
        let mut w = SimWorld::new(5, NetConfig::reliable());
        for i in 1..=2 {
            let stack = StackBuilder::new(ep(i))
                .push(Box::new(Nak::new(NakConfig { buffer_cap: 2, ..NakConfig::default() })))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(stack);
            w.join(ep(i), GroupAddr::new(1));
        }
        w.partition_at(SimTime::from_millis(1), &[&[ep(1)], &[ep(2)]]);
        for k in 0..10u64 {
            w.cast_bytes_at(SimTime::from_millis(2 + k), ep(1), Workload::body(ep(1), k + 1, 16));
        }
        w.heal_at(SimTime::from_millis(100));
        w.run_for(Duration::from_secs(3));
        let lost =
            w.upcalls(ep(2)).iter().filter(|(_, up)| matches!(up, Up::LostMessage { .. })).count();
        let delivered = w.delivered_casts(ep(2)).len();
        assert!(lost >= 1, "expected LOST placeholders, got {delivered} deliveries, {lost} lost");
        assert_eq!(lost + delivered, 10, "every seq accounted for");
        // FIFO still holds on what was delivered.
        let logs = vec![DeliveryLog::from_upcalls(ep(2), w.upcalls(ep(2)))];
        assert!(check_fifo(&logs, Workload::parse).is_empty());
    }

    #[test]
    fn own_casts_loop_back_in_order() {
        let mut w = world(1, NetConfig::reliable(), 6);
        for k in 1..=5u64 {
            w.cast_bytes(ep(1), Workload::body(ep(1), k, 16));
        }
        w.run_for(Duration::from_millis(50));
        let got = w.delivered_casts(ep(1));
        assert_eq!(got.len(), 5);
        let logs = vec![DeliveryLog::from_upcalls(ep(1), w.upcalls(ep(1)))];
        assert!(check_fifo(&logs, Workload::parse).is_empty());
    }

    fn nak_retransmissions(w: &SimWorld, i: u64) -> u64 {
        let dump = w.stack(ep(i)).unwrap().focus("NAK").unwrap();
        dump.split_whitespace().find_map(|f| f.strip_prefix("retrans=")).unwrap().parse().unwrap()
    }

    #[test]
    fn unicast_retransmission_backs_off_exponentially() {
        // A message to an unreachable peer: with a fixed 40 ms rto, 3 s of
        // outage would cost ~75 retransmissions; the exponential backoff
        // (40, 80, 160, then capped at 320 ms) keeps it near a dozen —
        // and the cap still recovers the message promptly after the heal.
        let mut w = world(2, NetConfig::reliable(), 7);
        w.partition_at(SimTime::from_millis(1), &[&[ep(1)], &[ep(2)]]);
        let msg = w.stack(ep(1)).unwrap().new_message(vec![42u8]);
        w.down_at(SimTime::from_millis(2), ep(1), Down::Send { dests: vec![ep(2)], msg });
        w.run_for(Duration::from_secs(3));
        let retrans = nak_retransmissions(&w, 1);
        assert!(
            (4..=20).contains(&retrans),
            "expected O(log) + capped-interval retransmissions in 3 s, got {retrans}"
        );
        w.heal_at(w.now());
        w.run_for(Duration::from_secs(1));
        let sends: Vec<u8> = w
            .upcalls(ep(2))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Send { msg, .. } => Some(msg.body()[0]),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![42], "the message arrives once the partition heals");
    }

    #[test]
    fn view_install_clears_suspicions_for_fresh_detection() {
        // Regression: `Down::InstallView` must clear the `suspected` set.
        // If a stale suspicion survived a view change, the second silence
        // below would never raise a second PROBLEM (suspected members are
        // skipped by the silence check) and the peer would be stuck
        // half-muted in the new view.
        use horus_core::view::View;
        let mut w = world(2, NetConfig::reliable(), 8);
        let view = View::initial(GroupAddr::new(1), ep(1)).with_joined(&[ep(2)]);
        for i in 1..=2 {
            w.down(ep(i), Down::InstallView(view.clone()));
        }
        let problems = |w: &SimWorld| {
            w.upcalls(ep(1))
                .iter()
                .filter(|(_, up)| matches!(up, Up::Problem { member } if *member == ep(2)))
                .count()
        };
        // First silence: suspicion raised once.
        w.partition_at(SimTime::from_millis(10), &[&[ep(1)], &[ep(2)]]);
        w.run_for(Duration::from_secs(1));
        assert_eq!(problems(&w), 1, "first silence suspected");
        // The view change resolves the episode; the silence clock restarts.
        w.heal_at(w.now());
        for i in 1..=2 {
            w.down(ep(i), Down::InstallView(view.clone()));
        }
        w.run_for(Duration::from_millis(100));
        // Second silence: detection must fire again in the new view.
        w.partition_at(w.now(), &[&[ep(1)], &[ep(2)]]);
        w.run_for(Duration::from_secs(1));
        assert_eq!(problems(&w), 2, "cleared suspicion re-arms the detector");
    }
}
