//! # horus-layers
//!
//! The Horus protocol-layer library: every layer named in the paper's
//! Table 3, the §5 membership protocol, the §7 example stack, reference
//! implementations (§8), and a catalogue of utility layers from Figure 1.
//!
//! All layers implement [`horus_core::Layer`] and speak only the HCPI, so
//! they can be stacked in any order at run time (subject to the property
//! requirements checked by `horus-props`).  The canonical composition from
//! §7 of the paper is
//!
//! ```text
//! TOTAL : MBRSHIP : FRAG : NAK : COM          (over a best-effort network)
//! ```
//!
//! built either programmatically or from that very string via
//! [`registry::build_stack`]:
//!
//! ```
//! use horus_layers::registry;
//! use horus_core::prelude::*;
//!
//! let stack = registry::build_stack(
//!     EndpointAddr::new(1),
//!     "TOTAL:MBRSHIP:FRAG:NAK:COM",
//!     StackConfig::default(),
//! )?;
//! assert_eq!(stack.layer_names(), vec!["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"]);
//! # Ok::<(), HorusError>(())
//! ```
//!
//! ## Layer inventory
//!
//! | module | layers | paper |
//! |---|---|---|
//! | [`com`] | COM | §7 bottom adapter |
//! | [`nak`] | NAK | §7 FIFO via negative acks |
//! | [`fd`] | FD | §5 adaptive heartbeat failure detector |
//! | [`nnak`] | NNAK | Table 3, prioritized unicast FIFO |
//! | [`frag`] | FRAG, NFRAG | §7 fragmentation |
//! | [`pack`] | PACK | §10 message packing |
//! | [`mbrship`] | MBRSHIP | §5 membership/flush |
//! | [`membership_parts`] | BMS, VSS, FLUSH | §6/§8 reference decomposition |
//! | [`total`] | TOTAL | §7 token total order |
//! | [`causal`] | TS, CAUSAL | Table 3 causal order |
//! | [`safe`] | SAFE | Table 3 safe (stable) delivery |
//! | [`stable`] | STABLE | §9 stability matrix |
//! | [`pinwheel`] | PINWHEEL | §10 rotating stability token |
//! | [`merge`] | MERGE | §5/§9 automatic view merging |
//! | [`mod@reference`] | NAK_REF, TOTAL_REF | §8 reference implementations |
//! | [`util`] | CHKSUM, SIGN, ENCRYPT, COMPRESS, FLOW, TRACE, ACCT, LOGGER, RATE, PRIO, DROP, NOP, SEQNO | Figure 1 catalogue |

pub mod causal;
pub mod com;
pub mod fd;
pub mod frag;
pub mod mbrship;
pub mod membership_parts;
pub mod merge;
pub mod nak;
pub mod nnak;
pub mod pack;
pub mod pinwheel;
pub mod reference;
pub mod registry;
pub mod safe;
pub mod services;
pub mod stable;
pub mod total;
pub mod util;

pub use com::Com;
pub use fd::{Fd, FdConfig};
pub use frag::{Frag, NFrag};
pub use mbrship::{Mbrship, MbrshipConfig};
pub use nak::{Nak, NakConfig};
pub use pack::Pack;
pub use registry::{build_stack, parse_stack};
pub use total::Total;
