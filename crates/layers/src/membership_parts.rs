//! BMS / VSS / FLUSH — the layered decomposition of membership (Table 3,
//! §6, §8).
//!
//! The production [`crate::mbrship::Mbrship`] layer "combines the
//! functions of several reference layers into a single high performance
//! production version" (§1).  This module provides those constituent
//! reference layers, composable as `FLUSH : VSS : BMS`:
//!
//! * [`Bms`] — the *basic membership service*: coordinator-driven
//!   PREPARE/READY/COMMIT view agreement.  It provides **consistent
//!   views** (P15) and nothing else — data casts pass through untouched.
//!   Crucially, it exposes the HCPI's `flush`/`flush_ok` contract from
//!   Table 1: a PREPARE surfaces as a FLUSH upcall, and BMS sends READY
//!   only after the layer above (or the application) answers with the
//!   `flush_ok` downcall.  This is how upper layers get to finish their
//!   business before the view changes.
//! * [`Vss`] — *virtually semi-synchronous* delivery (P8): casts are
//!   tagged with the view they were sent in and delivered only in that
//!   view (early arrivals buffer, stale ones drop).  View boundaries
//!   become clean cuts, but nothing guarantees completeness yet.
//! * [`FlushLayer`] — full virtual synchrony (P9): on a FLUSH upcall it
//!   runs an all-to-all exchange of acknowledgement vectors plus copies of
//!   failed members' unstable messages, delivers what it was missing,
//!   waits for the common cut, and only then issues `flush_ok` downward,
//!   releasing BMS's view agreement.
//!
//! The split is exactly the three-tier story of §9 and the "composition
//! leads to simplicity" challenge of §11: each piece is small and
//! verifiable, and their stack equals the production MBRSHIP in
//! guarantees (the integration tests replay Figure 2 against both).
//!
//! Scope note (documented simplification): the decomposed stack supports
//! joins through BMS's JOIN_REQ and crash exclusion, but not the
//! cross-view *merge* of two multi-member partitions — that remains the
//! production layer's exclusive feature, as in the 1995 system where "a
//! new membership layer ... can easily be added".

use bytes::Bytes;
use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

// =====================================================================
// BMS
// =====================================================================

const BMS_FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 3), FieldSpec::new("epoch", 16)];

const B_DATA: u64 = 0;
const B_PREPARE: u64 = 1;
const B_READY: u64 = 2;
const B_COMMIT: u64 = 3;
const B_SUSPECT: u64 = 4;
const B_JOIN: u64 = 5;

const BMS_TICK: u64 = 0;

#[derive(Debug, Clone)]
enum BmsPhase {
    Idle,
    Normal,
    /// READY sent; waiting for COMMIT.
    Ready {
        coordinator: EndpointAddr,
    },
    /// Coordinator: collecting READYs.  The prepare body is kept for
    /// rebroadcast: the FIFO layer prunes casts once *view* members ack
    /// them, so a joiner outside the view can miss the original PREPARE
    /// for good.
    Collecting {
        epoch: u16,
        proposal: View,
        readies: BTreeSet<EndpointAddr>,
        prepare: Bytes,
    },
}

/// The basic membership service: consistent views, nothing more.
#[derive(Clone)]
pub struct Bms {
    tick: Duration,
    timeout: Duration,
    /// Answer our own FLUSH upcalls immediately (no layer above or
    /// application participates in the flush).  The registry derives this
    /// from the composition: `false` when VSS or FLUSH sit above.
    auto_ok: bool,
    me: Option<EndpointAddr>,
    group: Option<GroupAddr>,
    view: Option<View>,
    phase: BmsPhase,
    suspects: BTreeSet<EndpointAddr>,
    joiners: BTreeSet<EndpointAddr>,
    /// A FLUSH upcall is outstanding: `(epoch, coordinator)` to READY once
    /// the layer above answers `flush_ok`.  Orthogonal to `phase` so the
    /// coordinator keeps collecting READYs while it waits for its own.
    awaiting_ok: Option<(u16, EndpointAddr)>,
    cur_epoch: u16,
    last_progress: SimTime,
    views_installed: u64,
}

impl Bms {
    /// Creates a BMS layer; see the `auto_ok` field for the flush_ok
    /// contract.
    pub fn new(tick: Duration, timeout: Duration, auto_ok: bool) -> Self {
        Bms {
            tick,
            timeout,
            auto_ok,
            me: None,
            group: None,
            view: None,
            phase: BmsPhase::Idle,
            suspects: BTreeSet::new(),
            joiners: BTreeSet::new(),
            awaiting_ok: None,
            cur_epoch: 0,
            last_progress: SimTime::ZERO,
            views_installed: 0,
        }
    }

    fn me(&self) -> EndpointAddr {
        self.me.expect("initialised")
    }

    fn control(&self, ctx: &mut LayerCtx<'_>, kind: u64, epoch: u16, body: Bytes) -> Message {
        let mut m = ctx.new_message(body);
        ctx.stamp(&mut m);
        ctx.set(&mut m, 0, kind);
        ctx.set(&mut m, 1, epoch as u64);
        m
    }

    fn install(&mut self, v: View, ctx: &mut LayerCtx<'_>) {
        self.suspects.clear();
        self.joiners.retain(|j| !v.contains(*j));
        self.cur_epoch = 0;
        self.last_progress = ctx.now();
        self.views_installed += 1;
        self.phase = BmsPhase::Normal;
        self.awaiting_ok = None;
        self.view = Some(v.clone());
        ctx.down(Down::InstallView(v.clone()));
        ctx.up(Up::View(v));
        // Joins or suspicions that arrived during the round start the next
        // one immediately.
        if !self.joiners.is_empty() || !self.suspects.is_empty() {
            self.propose(ctx, false);
        }
    }

    /// Coordinator path: propose the next view.  `force` re-proposes even
    /// while a round is active (the stall-recovery path); otherwise a new
    /// trigger waits for the current round to finish.
    fn propose(&mut self, ctx: &mut LayerCtx<'_>, force: bool) {
        if !force && !matches!(self.phase, BmsPhase::Normal | BmsPhase::Idle) {
            return; // a round is in flight; install() will chase the rest
        }
        let Some(view) = self.view.clone() else { return };
        let me = self.me();
        let failed: Vec<EndpointAddr> =
            self.suspects.iter().copied().filter(|s| view.contains(*s)).collect();
        let alive: Vec<EndpointAddr> =
            view.members().iter().copied().filter(|m| !failed.contains(m)).collect();
        if view.coordinator_among(&alive) != Some(me) {
            // Not our job: report suspicions to the rightful coordinator.
            if let Some(c) = view.coordinator_among(&alive) {
                let mut w = WireWriter::with_capacity(4 + 8 * failed.len());
                w.put_addrs(&failed);
                let m = self.control(ctx, B_SUSPECT, self.cur_epoch, w.finish());
                ctx.down(Down::Send { dests: vec![c], msg: m });
            }
            return;
        }
        let joiners: Vec<EndpointAddr> = self.joiners.iter().copied().collect();
        if failed.is_empty() && joiners.is_empty() {
            return;
        }
        self.cur_epoch += 1;
        let proposal = view.successor(me, &failed, &joiners);
        let mut w = WireWriter::with_capacity(44 + 16 * proposal.len() + 8 * failed.len());
        w.put_view(&proposal);
        w.put_addrs(&failed);
        let body = w.finish();
        let m = self.control(ctx, B_PREPARE, self.cur_epoch, body.clone());
        ctx.down(Down::Cast(m));
        self.phase = BmsPhase::Collecting {
            epoch: self.cur_epoch,
            proposal,
            readies: BTreeSet::new(),
            prepare: body,
        };
        self.last_progress = ctx.now();
        // Our own PREPARE loops back and drives our own FLUSH/flush_ok.
    }

    fn handle_prepare(
        &mut self,
        src: EndpointAddr,
        epoch: u16,
        body: &[u8],
        ctx: &mut LayerCtx<'_>,
    ) {
        let mut r = WireReader::new(body);
        let Ok(proposal) = r.get_view() else { return };
        let Ok(failed) = r.get_addrs() else { return };
        let me = self.me();
        if !proposal.contains(me) {
            return; // excluded or foreign
        }
        let current_counter = self.view.as_ref().map(|v| v.id().counter).unwrap_or(0);
        if proposal.id().counter <= current_counter {
            return; // stale
        }
        let _ = (me, proposal);
        self.last_progress = ctx.now();
        self.awaiting_ok = Some((epoch, src));
        ctx.up(Up::Flush { failed });
        // `flush_ok` (Down) resumes the protocol; without a participant
        // above, we answer ourselves.
        if self.auto_ok {
            self.handle_flush_ok_down(ctx);
        }
    }

    fn handle_flush_ok_down(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some((epoch, coordinator)) = self.awaiting_ok.take() else { return };
        let m = self.control(ctx, B_READY, epoch, Bytes::new());
        ctx.down(Down::Send { dests: vec![coordinator], msg: m });
        if coordinator != self.me() {
            self.phase = BmsPhase::Ready { coordinator };
        }
    }

    fn handle_ready(&mut self, src: EndpointAddr, epoch: u16, ctx: &mut LayerCtx<'_>) {
        let done = {
            let BmsPhase::Collecting { epoch: e, proposal, readies, .. } = &mut self.phase else {
                return;
            };
            if *e != epoch {
                return;
            }
            readies.insert(src);
            proposal.members().iter().all(|m| readies.contains(m))
        };
        self.last_progress = ctx.now();
        if done {
            let BmsPhase::Collecting { proposal, .. } = &self.phase else { unreachable!() };
            // Name the excluded members explicitly so that bystanders from
            // other view lineages do not mistake this commit for their own
            // exclusion.
            let excluded: Vec<EndpointAddr> = self
                .view
                .as_ref()
                .map(|v| v.members().iter().copied().filter(|m| !proposal.contains(*m)).collect())
                .unwrap_or_default();
            let mut w = WireWriter::with_capacity(44 + 16 * proposal.len() + 8 * excluded.len());
            w.put_view(proposal);
            w.put_addrs(&excluded);
            let m = self.control(ctx, B_COMMIT, epoch, w.finish());
            ctx.down(Down::Cast(m));
        }
    }

    fn handle_commit(&mut self, body: &[u8], ctx: &mut LayerCtx<'_>) {
        let mut r = WireReader::new(body);
        let Ok(v) = r.get_view() else { return };
        let Ok(excluded) = r.get_addrs() else { return };
        let me = self.me();
        let current = self.view.as_ref().map(|v| v.id().counter).unwrap_or(0);
        if v.id().counter <= current {
            return;
        }
        if v.contains(me) {
            self.install(v, ctx);
        } else if excluded.contains(&me) {
            // Excluded: fresh singleton, like the production layer.
            ctx.up(Up::SystemError { reason: "excluded from BMS view".to_string() });
            let group = self.group.expect("joined");
            let single = View::from_parts(
                group,
                horus_core::view::ViewId { counter: v.id().counter + 1, coordinator: me },
                vec![me],
                vec![v.id().counter + 1],
            );
            self.install(single, ctx);
        }
    }
}

impl Layer for Bms {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "BMS"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        BMS_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        self.last_progress = ctx.now();
        ctx.set_timer(self.tick, BMS_TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Join { group } => {
                ctx.down(Down::Join { group });
                self.group = Some(group);
                let v = View::initial(group, self.me());
                self.install(v, ctx);
            }
            Down::FlushOk => self.handle_flush_ok_down(ctx),
            Down::Suspect { member } => {
                if self.suspects.insert(member) {
                    self.propose(ctx, false);
                }
            }
            Down::Flush { failed } => {
                for f in failed {
                    self.suspects.insert(f);
                }
                self.propose(ctx, false);
            }
            Down::Merge { contact } => {
                // BMS joins are singleton endpoints contacting the group.
                let m = self.control(ctx, B_JOIN, 0, Bytes::new());
                ctx.down(Down::Send { dests: vec![contact], msg: m });
            }
            Down::Cast(mut msg) => {
                // Stamp data casts so the receive path can tell them from
                // BMS control frames (in compact header mode every layer's
                // fields are always present).
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, B_DATA);
                ctx.set(&mut msg, 1, 0);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } | Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let kind = ctx.get(&msg, 0);
                let epoch = ctx.get(&msg, 1) as u16;
                match kind {
                    B_DATA => {
                        // Application traffic: BMS neither numbers nor
                        // gates it.
                        ctx.up(Up::Cast { src, msg });
                    }
                    B_PREPARE => self.handle_prepare(src, epoch, &msg.body().clone(), ctx),
                    B_READY => self.handle_ready(src, epoch, ctx),
                    B_COMMIT => self.handle_commit(&msg.body().clone(), ctx),
                    B_SUSPECT => {
                        let mut r = WireReader::new(msg.body());
                        if let Ok(list) = r.get_addrs() {
                            for m in list {
                                self.suspects.insert(m);
                            }
                            self.propose(ctx, false);
                        }
                    }
                    B_JOIN => {
                        self.joiners.insert(src);
                        self.propose(ctx, false);
                    }
                    _ => {}
                }
            }
            Up::Problem { member } => {
                if self.suspects.insert(member) {
                    self.propose(ctx, false);
                }
                ctx.up(Up::Problem { member });
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token != BMS_TICK {
            return;
        }
        let now = ctx.now();
        let waited = now.saturating_since(self.last_progress);
        match &self.phase {
            BmsPhase::Collecting { epoch, prepare, .. } => {
                if waited > self.timeout {
                    self.last_progress = now;
                    self.propose(ctx, true); // re-propose with a higher epoch
                } else if waited > self.timeout / 4 {
                    // Rebroadcast the PREPARE: joiners outside the view may
                    // have missed the (pruned) original.
                    let (epoch, prepare) = (*epoch, prepare.clone());
                    let m = self.control(ctx, B_PREPARE, epoch, prepare);
                    ctx.down(Down::Cast(m));
                }
            }
            // A member gives the coordinator twice its own retry budget
            // before mutiny — simultaneous stall suspicion on both sides
            // splits the group.
            BmsPhase::Ready { coordinator } if waited > self.timeout * 2 => {
                let c = *coordinator;
                self.last_progress = now;
                if c != self.me() {
                    self.suspects.insert(c);
                }
                self.phase = BmsPhase::Normal;
                self.propose(ctx, true);
            }
            // Unserved joins/suspicions are retried here.
            BmsPhase::Normal
                if waited > self.timeout
                    && (!self.joiners.is_empty() || !self.suspects.is_empty()) =>
            {
                self.last_progress = now;
                self.propose(ctx, false);
            }
            _ => {}
        }
        ctx.set_timer(self.tick, BMS_TICK);
    }

    fn dump(&self) -> String {
        format!(
            "phase={} view={} views={} suspects={:?} joiners={:?}",
            match self.phase {
                BmsPhase::Idle => "idle",
                BmsPhase::Normal => "normal",
                BmsPhase::Ready { .. } => "ready",
                BmsPhase::Collecting { .. } => "collecting",
            },
            self.view.as_ref().map(|v| v.to_string()).unwrap_or_else(|| "-".into()),
            self.views_installed,
            self.suspects,
            self.joiners,
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// =====================================================================
// VSS
// =====================================================================

const VSS_FIELDS: &[FieldSpec] = &[FieldSpec::new("vc", 32)];

/// Virtually semi-synchronous delivery: view-boundary gating (P8).
///
/// `auto_ok` answers BMS's FLUSH upcalls with an immediate `flush_ok`
/// when no FLUSH layer sits above to do real recovery first.  The
/// registry sets it automatically from the composition; when building by
/// hand, pass `false` iff a [`FlushLayer`] is stacked above.
#[derive(Debug, Clone)]
pub struct Vss {
    auto_ok: bool,
    view_counter: u32,
    future: Vec<(u32, EndpointAddr, Message)>,
    /// Stale-view casts discarded.
    pub dropped_stale: u64,
}

impl Vss {
    /// Creates a VSS layer; `auto_ok` should be `false` when a FLUSH layer
    /// sits above.
    pub fn new(auto_ok: bool) -> Self {
        Vss { auto_ok, view_counter: 0, future: Vec::new(), dropped_stale: 0 }
    }

    fn stamp_and_send(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, self.view_counter as u64);
        ctx.down(Down::Cast(msg));
    }
}

impl Layer for Vss {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "VSS"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        VSS_FIELDS
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            // NOTE: no flush-hold here.  App casts are already held above
            // VSS by the FLUSH layer while a flush runs, and the recovery
            // casts FLUSH emits *must* flow through VSS mid-flush.  A bare
            // VSS stack is only semi-synchronous (P8): a cast racing a
            // view change may be dropped at members that switched first,
            // which is exactly the completeness gap FLUSH exists to close.
            Down::Cast(msg) => self.stamp_and_send(msg, ctx),
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let vc = ctx.get(&msg, 0) as u32;
                match vc.cmp(&self.view_counter) {
                    std::cmp::Ordering::Equal => ctx.up(Up::Cast { src, msg }),
                    std::cmp::Ordering::Greater => self.future.push((vc, src, msg)),
                    std::cmp::Ordering::Less => self.dropped_stale += 1,
                }
            }
            Up::View(view) => {
                self.view_counter = view.id().counter as u32;
                ctx.up(Up::View(view));
                let vc = self.view_counter;
                let (ready, rest): (Vec<_>, Vec<_>) =
                    std::mem::take(&mut self.future).into_iter().partition(|(c, _, _)| *c == vc);
                self.future = rest;
                self.future.retain(|(c, _, _)| *c > vc);
                for (_, src, msg) in ready {
                    ctx.up(Up::Cast { src, msg });
                }
            }
            Up::Flush { failed } => {
                ctx.up(Up::Flush { failed });
                if self.auto_ok {
                    ctx.down(Down::FlushOk);
                }
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "vc={} future={} dropped_stale={}",
            self.view_counter,
            self.future.len(),
            self.dropped_stale
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// =====================================================================
// FLUSH
// =====================================================================

const FLUSH_FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 1), FieldSpec::new("fseq", 32)];

const F_DATA: u64 = 0;
const F_ANNOUNCE: u64 = 1;

/// Full virtual synchrony on top of VSS/BMS: all-to-all flush recovery.
#[derive(Debug, Default, Clone)]
pub struct FlushLayer {
    me: Option<EndpointAddr>,
    view: Option<View>,
    my_seq: u32,
    recv: BTreeMap<EndpointAddr, u32>,
    log: BTreeMap<(EndpointAddr, u32), Bytes>,
    /// In-progress flush: failed members, cuts learned so far, announced
    /// members.
    active: Option<FlushWork>,
    pending: VecDeque<Message>,
    /// Messages recovered from peers' announcements.
    pub recovered: u64,
}

#[derive(Debug, Clone)]
struct FlushWork {
    failed: BTreeSet<EndpointAddr>,
    cuts: BTreeMap<EndpointAddr, u32>,
    announced: BTreeSet<EndpointAddr>,
    ok_sent: bool,
}

impl FlushLayer {
    /// Creates a FLUSH layer.
    pub fn new() -> Self {
        FlushLayer::default()
    }

    fn me(&self) -> EndpointAddr {
        self.me.expect("initialised")
    }

    fn announce(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(work) = &self.active else { return };
        let Some(view) = &self.view else { return };
        let me = self.me();
        let entries: Vec<(EndpointAddr, u32)> = view
            .members()
            .iter()
            .map(|&m| {
                let mut v = self.recv.get(&m).copied().unwrap_or(0);
                if m == me {
                    v = v.max(self.my_seq);
                }
                (m, v)
            })
            .collect();
        let mut w = WireWriter::with_capacity(8 + 12 * entries.len());
        w.put_u32(entries.len() as u32);
        for (m, v) in &entries {
            w.put_addr(*m);
            w.put_u32(*v);
        }
        let msgs: Vec<(&(EndpointAddr, u32), &Bytes)> =
            self.log.iter().filter(|((o, _), _)| work.failed.contains(o)).collect();
        w.put_u32(msgs.len() as u32);
        for ((o, s), inner) in msgs {
            w.put_addr(*o);
            w.put_u32(*s);
            w.put_bytes(inner);
        }
        let mut m = ctx.new_message(w.finish());
        ctx.stamp(&mut m);
        ctx.set(&mut m, 0, F_ANNOUNCE);
        ctx.set(&mut m, 1, 0);
        ctx.down(Down::Cast(m));
    }

    fn maybe_ok(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(view) = self.view.clone() else { return };
        let ready = {
            let Some(work) = &self.active else { return };
            if work.ok_sent {
                return;
            }
            let survivors: Vec<EndpointAddr> =
                view.members().iter().copied().filter(|m| !work.failed.contains(m)).collect();
            survivors.iter().all(|s| work.announced.contains(s))
                && view.members().iter().all(|m| {
                    self.recv.get(m).copied().unwrap_or(0) >= work.cuts.get(m).copied().unwrap_or(0)
                })
        };
        if ready {
            if let Some(work) = &mut self.active {
                work.ok_sent = true;
            }
            ctx.down(Down::FlushOk);
        }
    }
}

impl Layer for FlushLayer {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "FLUSH"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FLUSH_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.active.is_some() {
                    self.pending.push_back(msg);
                    return;
                }
                self.my_seq += 1;
                let seq = self.my_seq;
                self.log.insert((self.me(), seq), msg.encode_inner());
                let mut m = msg;
                ctx.stamp(&mut m);
                ctx.set(&mut m, 0, F_DATA);
                ctx.set(&mut m, 1, seq as u64);
                ctx.down(Down::Cast(m));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                match ctx.get(&msg, 0) {
                    F_DATA => {
                        let seq = ctx.get(&msg, 1) as u32;
                        let cum = self.recv.entry(src).or_insert(0);
                        if seq <= *cum {
                            return; // duplicate (recovered earlier)
                        }
                        *cum = seq;
                        self.log.insert((src, seq), msg.encode_inner());
                        ctx.up(Up::Cast { src, msg });
                        self.maybe_ok(ctx);
                    }
                    F_ANNOUNCE => {
                        let body = msg.body().clone();
                        let mut r = WireReader::new(&body);
                        let Ok(n) = r.get_u32() else { return };
                        let mut deliveries: Vec<(EndpointAddr, u32, Bytes)> = Vec::new();
                        {
                            let Some(work) = &mut self.active else { return };
                            for _ in 0..n {
                                let (Ok(m), Ok(v)) = (r.get_addr(), r.get_u32()) else {
                                    return;
                                };
                                let e = work.cuts.entry(m).or_insert(0);
                                *e = (*e).max(v);
                            }
                            let Ok(k) = r.get_u32() else { return };
                            for _ in 0..k {
                                let (Ok(o), Ok(s)) = (r.get_addr(), r.get_u32()) else {
                                    return;
                                };
                                let Ok(inner) = r.get_bytes() else { return };
                                deliveries.push((o, s, Bytes::copy_from_slice(inner)));
                            }
                            work.announced.insert(src);
                        }
                        deliveries.sort_by_key(|&(o, s, _)| (o, s));
                        for (o, s, inner) in deliveries {
                            let cum = self.recv.entry(o).or_insert(0);
                            if s <= *cum {
                                continue;
                            }
                            *cum = s;
                            self.log.insert((o, s), inner.clone());
                            if let Ok(mut m) = Message::decode_inner(
                                ctx.new_message(Bytes::new()).layout().clone(),
                                &inner,
                            ) {
                                m.meta.src = Some(o);
                                m.meta.flush_recovered = true;
                                self.recovered += 1;
                                ctx.up(Up::Cast { src: o, msg: m });
                            }
                        }
                        self.maybe_ok(ctx);
                    }
                    _ => {}
                }
            }
            Up::Flush { failed } => {
                self.active = Some(FlushWork {
                    failed: failed.iter().copied().collect(),
                    cuts: BTreeMap::new(),
                    announced: BTreeSet::new(),
                    ok_sent: false,
                });
                ctx.up(Up::Flush { failed });
                self.announce(ctx);
            }
            Up::View(view) => {
                self.view = Some(view.clone());
                self.my_seq = 0;
                self.recv = view.members().iter().map(|&m| (m, 0)).collect();
                self.log.clear();
                self.active = None;
                ctx.up(Up::View(view));
                while let Some(m) = self.pending.pop_front() {
                    self.on_down(Down::Cast(m), ctx);
                }
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "seq={} logged={} active={} recovered={}",
            self.my_seq,
            self.log.len(),
            self.active.is_some(),
            self.recovered
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::nak::{Nak, NakConfig};
    use horus_net::NetConfig;
    use horus_sim::{check_virtual_synchrony, DeliveryLog, SimWorld, Workload};

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn decomposed_stack(i: u64) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(FlushLayer::new()))
            .push(Box::new(Vss::new(false)))
            .push(Box::new(Bms::new(Duration::from_millis(25), Duration::from_millis(400), false)))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::new(NakConfig {
                fail_timeout: Duration::from_millis(120),
                ..NakConfig::default()
            })))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn bms_only_stack(i: u64) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Vss::new(true)))
            .push(Box::new(Bms::new(Duration::from_millis(25), Duration::from_millis(400), false)))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::new(NakConfig {
                fail_timeout: Duration::from_millis(120),
                ..NakConfig::default()
            })))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn joined(n: u64, seed: u64, mk: impl Fn(u64) -> Stack) -> SimWorld {
        let mut w = SimWorld::new(seed, NetConfig::reliable());
        for i in 1..=n {
            w.add_endpoint(mk(i));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=n {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(2));
        for i in 1..=n {
            assert_eq!(
                w.installed_views(ep(i)).last().expect("view").len(),
                n as usize,
                "endpoint {i} joined via BMS"
            );
        }
        w
    }

    #[test]
    fn bms_alone_agrees_on_views() {
        let mut w = joined(3, 1, bms_only_stack);
        let t = w.now();
        w.crash_at(t + Duration::from_millis(10), ep(3));
        w.run_for(Duration::from_secs(2));
        let v1 = w.installed_views(ep(1)).last().unwrap().clone();
        let v2 = w.installed_views(ep(2)).last().unwrap().clone();
        assert_eq!(v1, v2);
        assert_eq!(v1.members(), &[ep(1), ep(2)]);
    }

    #[test]
    fn decomposed_stack_is_virtually_synchronous() {
        for seed in 1..=3 {
            let mut w = joined(3, 10 + seed, decomposed_stack);
            let t = w.now();
            let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 24);
            wl.schedule(&mut w, t + Duration::from_millis(1));
            w.crash_at(t + Duration::from_millis(15), ep(2));
            w.run_for(Duration::from_secs(3));
            let logs: Vec<DeliveryLog> = (1..=3)
                .filter(|&i| w.is_alive(ep(i)))
                .map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i))))
                .collect();
            let violations = check_virtual_synchrony(&logs);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn figure_2_replays_on_the_decomposed_stack() {
        let mut w = joined(4, 5, decomposed_stack);
        let (a, b, _c, d) = (ep(1), ep(2), ep(3), ep(4));
        let t = w.now();
        w.partition_at(t + Duration::from_millis(1), &[&[ep(1), ep(2)], &[ep(3), ep(4)]]);
        w.cast_bytes_at(t + Duration::from_millis(2), d, Workload::body(d, 1, 32));
        w.crash_at(t + Duration::from_millis(5), d);
        w.heal_at(t + Duration::from_millis(8));
        w.run_for(Duration::from_secs(3));
        for &m in &[a, b] {
            let from_d = w.delivered_casts(m).iter().filter(|(s, _, _)| *s == d).count();
            assert_eq!(from_d, 1, "{m} must deliver M exactly once");
        }
        assert_eq!(w.installed_views(a).last().unwrap().members(), &[ep(1), ep(2), ep(3)]);
    }

    #[test]
    fn vss_gates_cross_view_traffic() {
        let mut w = joined(2, 6, bms_only_stack);
        w.cast_bytes(ep(1), &b"in view"[..]);
        w.run_for(Duration::from_millis(300));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
        let v: &Vss = w.stack(ep(2)).unwrap().focus_as("VSS").unwrap();
        assert_eq!(v.dropped_stale, 0);
    }
}
