//! Service layers from the Figure 1 catalogue: RPC, clock
//! synchronization, the §11 security architecture, and cactus-stack
//! multiplexing.
//!
//! * [`Rpc`] — "rpc: client/server interactions".  Correlates subset
//!   sends with replies, retries, and reports timeouts; the application
//!   drives it entirely through message metadata, never touching wire
//!   formats.
//! * [`ClockSync`] — "synchronization, e.g. of clocks".  Cristian's
//!   algorithm against the view's senior member; each endpoint simulates
//!   local clock skew so there is something real to estimate.
//! * [`Secure`] — §11's "security architecture for Horus providing
//!   authentication and encryption of messages, using a novel approach
//!   that combines security features with fault-tolerance": the group key
//!   is rotated on every view change by the view coordinator and
//!   distributed under per-member pairwise keys, so membership *is* the
//!   key-management trigger.  Toy cryptography throughout (see DESIGN.md)
//!   — composition and key-lifecycle behaviour is the point.
//! * [`Mux`] — §4's "tree or cactus stack": several logical applications
//!   share one stack, distinguished by a channel tag in the header and
//!   surfaced through `msg.meta.channel`.

use bytes::Bytes;
use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::collections::BTreeMap;
use std::time::Duration;

fn fnv(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// =====================================================================
// RPC
// =====================================================================

const RPC_FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 2), FieldSpec::new("id", 32)];

const R_PLAIN: u64 = 0;
const R_REQUEST: u64 = 1;
const R_REPLY: u64 = 2;

const RPC_TICK: u64 = 0;

#[derive(Debug, Clone)]
struct PendingCall {
    dest: EndpointAddr,
    msg: Message,
    sent_at: SimTime,
    retries: u32,
}

/// Request/reply correlation over subset sends.
///
/// A client marks an outgoing `send` as a request by setting
/// `msg.meta.rpc = Some((0, false))`; the layer assigns the id, retries,
/// and times out.  The server's delivery carries `rpc = Some((id, false))`;
/// replying with `rpc = Some((id, true))` routes the response back, and
/// the client's delivery carries `rpc = Some((id, true))`.
#[derive(Debug, Clone)]
pub struct Rpc {
    timeout: Duration,
    max_retries: u32,
    next_id: u64,
    pending: BTreeMap<u64, PendingCall>,
    /// Completed calls (for dump/statistics).
    pub completed: u64,
    /// Calls that exhausted their retries.
    pub timed_out: u64,
}

impl Rpc {
    /// Creates an RPC layer with the given per-try timeout and retry
    /// budget.
    pub fn new(timeout: Duration, max_retries: u32) -> Self {
        Rpc {
            timeout,
            max_retries,
            next_id: 1,
            pending: BTreeMap::new(),
            completed: 0,
            timed_out: 0,
        }
    }
}

impl Default for Rpc {
    fn default() -> Self {
        Rpc::new(Duration::from_millis(100), 3)
    }
}

impl Layer for Rpc {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "RPC"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        RPC_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        ctx.set_timer(self.timeout, RPC_TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Send { dests, mut msg } => {
                let (kind, id) = match msg.meta.rpc {
                    Some((_, false)) => {
                        let id = self.next_id;
                        self.next_id += 1;
                        (R_REQUEST, id)
                    }
                    Some((id, true)) => (R_REPLY, id),
                    None => (R_PLAIN, 0),
                };
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, kind);
                ctx.set(&mut msg, 1, id);
                if kind == R_REQUEST {
                    let dest = dests.first().copied().unwrap_or(EndpointAddr::NULL);
                    self.pending.insert(
                        id,
                        PendingCall { dest, msg: msg.clone(), sent_at: ctx.now(), retries: 0 },
                    );
                }
                ctx.down(Down::Send { dests, msg });
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let kind = ctx.get(&msg, 0);
                let id = ctx.get(&msg, 1);
                match kind {
                    R_REQUEST => {
                        msg.meta.rpc = Some((id, false));
                        ctx.up(Up::Send { src, msg });
                    }
                    R_REPLY => {
                        // Duplicate replies (after retries) complete once.
                        if self.pending.remove(&id).is_some() {
                            self.completed += 1;
                            msg.meta.rpc = Some((id, true));
                            ctx.up(Up::Send { src, msg });
                        }
                    }
                    _ => {
                        msg.meta.rpc = None;
                        ctx.up(Up::Send { src, msg });
                    }
                }
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token != RPC_TICK {
            return;
        }
        let now = ctx.now();
        let timeout = self.timeout;
        let max = self.max_retries;
        let mut resend = Vec::new();
        let mut dead = Vec::new();
        for (&id, call) in &mut self.pending {
            if now.saturating_since(call.sent_at) >= timeout {
                if call.retries >= max {
                    dead.push(id);
                } else {
                    call.retries += 1;
                    call.sent_at = now;
                    resend.push((call.dest, call.msg.clone()));
                }
            }
        }
        for (dest, msg) in resend {
            ctx.down(Down::Send { dests: vec![dest], msg });
        }
        for id in dead {
            self.pending.remove(&id);
            self.timed_out += 1;
            ctx.up(Up::SystemError { reason: format!("rpc call {id} timed out") });
        }
        ctx.set_timer(self.timeout, RPC_TICK);
    }

    fn dump(&self) -> String {
        format!(
            "pending={} completed={} timed_out={}",
            self.pending.len(),
            self.completed,
            self.timed_out
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// =====================================================================
// CLOCKSYNC
// =====================================================================

const CS_FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 2)];

const CS_PLAIN: u64 = 0;
const CS_REQ: u64 = 1;
const CS_RSP: u64 = 2;

const CS_TICK: u64 = 0;

/// Cristian-style clock synchronization against the view's senior member.
///
/// Each endpoint simulates a skewed local clock (`skew` may be negative);
/// the layer estimates its offset *to the master* from request/response
/// timestamps and exposes the corrected clock.
#[derive(Debug, Clone)]
pub struct ClockSync {
    /// Simulated local clock skew relative to true (virtual) time, in
    /// microseconds (signed).
    skew_us: i64,
    period: Duration,
    view: Option<View>,
    me: Option<EndpointAddr>,
    /// Estimated offset of the master's clock minus ours, µs.
    estimate_us: Option<i64>,
    rounds: u64,
}

impl ClockSync {
    /// Creates a CLOCKSYNC layer whose simulated local clock runs
    /// `skew_us` microseconds away from true time.
    pub fn new(skew_us: i64, period: Duration) -> Self {
        ClockSync { skew_us, period, view: None, me: None, estimate_us: None, rounds: 0 }
    }

    /// The simulated local clock, µs.
    fn local_clock_us(&self, now: SimTime) -> i64 {
        now.as_micros() as i64 + self.skew_us
    }

    /// The estimated master-relative offset, if a round completed.
    pub fn estimated_offset_us(&self) -> Option<i64> {
        self.estimate_us
    }

    /// The corrected clock (local + estimated offset), µs.
    pub fn corrected_clock_us(&self, now: SimTime) -> i64 {
        self.local_clock_us(now) + self.estimate_us.unwrap_or(0)
    }

    fn master(&self) -> Option<EndpointAddr> {
        self.view.as_ref().and_then(|v| v.members().first().copied())
    }
}

impl Default for ClockSync {
    fn default() -> Self {
        ClockSync::new(0, Duration::from_millis(50))
    }
}

impl Layer for ClockSync {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "CLOCKSYNC"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        CS_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        ctx.set_timer(self.period, CS_TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Send { dests, mut msg } => {
                // Tag pass-through sends so the receive side can tell them
                // from our own protocol frames (compact headers mean every
                // layer's fields are always present).
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, CS_PLAIN);
                ctx.down(Down::Send { dests, msg });
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                match ctx.get(&msg, 0) {
                    CS_PLAIN => ctx.up(Up::Send { src, msg }),
                    CS_REQ => {
                        // Master: echo t1 plus our local receive time t2.
                        let mut r = WireReader::new(msg.body());
                        let Ok(t1) = r.get_u64() else { return };
                        let t2 = self.local_clock_us(ctx.now());
                        let mut w = WireWriter::with_capacity(16);
                        w.put_u64(t1);
                        w.put_u64(t2 as u64);
                        let mut rsp = ctx.new_message(w.finish());
                        ctx.stamp(&mut rsp);
                        ctx.set(&mut rsp, 0, CS_RSP);
                        ctx.down(Down::Send { dests: vec![src], msg: rsp });
                    }
                    CS_RSP => {
                        let mut r = WireReader::new(msg.body());
                        let (Ok(t1), Ok(t2)) = (r.get_u64(), r.get_u64()) else { return };
                        let t3 = self.local_clock_us(ctx.now());
                        // Cristian: master clock ≈ t2 + rtt/2 at local t3.
                        let midpoint = (t1 as i64 + t3) / 2;
                        self.estimate_us = Some(t2 as i64 - midpoint);
                        self.rounds += 1;
                    }
                    _ => {}
                }
            }
            Up::View(v) => {
                self.view = Some(v.clone());
                ctx.up(Up::View(v));
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token != CS_TICK {
            return;
        }
        if let (Some(master), Some(me)) = (self.master(), self.me) {
            if master != me {
                let mut w = WireWriter::with_capacity(8);
                w.put_u64(self.local_clock_us(ctx.now()) as u64);
                let mut req = ctx.new_message(w.finish());
                ctx.stamp(&mut req);
                ctx.set(&mut req, 0, CS_REQ);
                ctx.down(Down::Send { dests: vec![master], msg: req });
            } else {
                self.estimate_us = Some(0); // the master is its own truth
            }
        }
        ctx.set_timer(self.period, CS_TICK);
    }

    fn dump(&self) -> String {
        format!("skew={}us estimate={:?}us rounds={}", self.skew_us, self.estimate_us, self.rounds)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// =====================================================================
// SECURE
// =====================================================================

const SEC_FIELDS: &[FieldSpec] = &[
    FieldSpec::new("kind", 2),
    FieldSpec::new("epoch", 32),
    FieldSpec::new("nonce", 32),
    FieldSpec::new("mac", 32),
];

const S_DATA: u64 = 0;
const S_KEY: u64 = 1;
/// Subset sends pass through *unencrypted* (SECURE protects group casts;
/// point-to-point secrecy would use pairwise keys — out of scope).
const S_PLAIN: u64 = 2;

/// Group encryption with membership-driven key rotation (§11).
///
/// Sits above the membership layer.  On every VIEW upcall the view's
/// senior member mints a fresh group key and unicasts it to each member,
/// wrapped under a pairwise key derived from the pre-shared `master`
/// secret.  Data is encrypted and MACed under the current group key; data
/// for an epoch whose key has not yet arrived buffers.  Members excluded
/// from the view never see the new key — forward secrecy at view
/// granularity, the "combines security features with fault-tolerance"
/// idea.  **Toy cryptography** (FNV MAC, XOR keystream).
#[derive(Debug, Clone)]
pub struct Secure {
    master: u64,
    me: Option<EndpointAddr>,
    view: Option<View>,
    /// Keys by epoch (view counter).
    keys: BTreeMap<u32, u64>,
    /// Data waiting for its epoch key.
    held: Vec<(EndpointAddr, u32, Message)>,
    nonce: u32,
    /// Flush in progress: hold casts so they are encrypted under the key
    /// of the view they are actually sent in.
    flushing: bool,
    held_out: Vec<Message>,
    /// Deliveries rejected for a bad MAC.
    pub rejected: u64,
    /// Keys minted (as coordinator).
    pub keys_minted: u64,
}

impl Secure {
    /// Creates a SECURE layer from the pre-shared master secret.
    pub fn new(master: u64) -> Self {
        Secure {
            master,
            me: None,
            view: None,
            keys: BTreeMap::new(),
            held: Vec::new(),
            nonce: 0,
            flushing: false,
            held_out: Vec::new(),
            rejected: 0,
            keys_minted: 0,
        }
    }

    /// Symmetric pairwise key: both sides derive the same secret for the
    /// pair, whichever direction the key travels.
    fn pairwise(&self, peer: EndpointAddr) -> u64 {
        let me = self.me.expect("init");
        let (lo, hi) = if me < peer { (me, peer) } else { (peer, me) };
        let mut data = lo.raw().to_le_bytes().to_vec();
        data.extend_from_slice(&hi.raw().to_le_bytes());
        fnv(&data, self.master)
    }

    fn keystream(key: u64, nonce: u32, body: &[u8]) -> Bytes {
        let mut out = Vec::with_capacity(body.len());
        let mut state = fnv(&nonce.to_le_bytes(), key);
        for (i, &b) in body.iter().enumerate() {
            if i.is_multiple_of(8) {
                state = state.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
            }
            out.push(b ^ (state >> ((i % 8) * 8)) as u8);
        }
        Bytes::from(out)
    }

    fn mac(key: u64, nonce: u32, body: &[u8]) -> u64 {
        fnv(body, key ^ nonce as u64) & 0xffff_ffff
    }

    fn epoch(&self) -> u32 {
        self.view.as_ref().map(|v| v.id().counter as u32).unwrap_or(0)
    }

    fn deliver_if_key(
        &mut self,
        src: EndpointAddr,
        epoch: u32,
        mut msg: Message,
        ctx: &mut LayerCtx<'_>,
    ) {
        let Some(&key) = self.keys.get(&epoch) else {
            self.held.push((src, epoch, msg));
            return;
        };
        let nonce = msg.field(ctx.layer_index(), 2) as u32;
        let mac = msg.field(ctx.layer_index(), 3);
        if Self::mac(key, nonce, msg.body()) != mac {
            self.rejected += 1;
            return;
        }
        let plain = Self::keystream(key, nonce, msg.body());
        msg.set_body(plain);
        ctx.up(Up::Cast { src, msg });
    }

    fn rotate_key(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(view) = self.view.clone() else { return };
        let me = self.me.expect("init");
        if view.members().first() != Some(&me) {
            return; // only the senior member mints keys
        }
        let epoch = self.epoch();
        let group_key = ctx.random_u64() | 1;
        self.keys.insert(epoch, group_key);
        self.keys_minted += 1;
        for &m in view.members() {
            if m == me {
                continue;
            }
            // Wrap the group key under the pairwise key; MAC it.
            let wrap = self.pairwise(m);
            let mut w = WireWriter::with_capacity(20);
            w.put_u32(epoch);
            w.put_u64(group_key ^ wrap);
            w.put_u64(fnv(&group_key.to_le_bytes(), wrap));
            let mut k = ctx.new_message(w.finish());
            ctx.stamp(&mut k);
            ctx.set(&mut k, 0, S_KEY);
            ctx.set(&mut k, 1, epoch as u64);
            ctx.set(&mut k, 2, 0);
            ctx.set(&mut k, 3, 0);
            ctx.down(Down::Send { dests: vec![m], msg: k });
        }
    }

    /// Sends casts held during a flush once the new view's key exists.
    fn release_held_out(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.flushing || !self.keys.contains_key(&self.epoch()) {
            return;
        }
        let held: Vec<Message> = std::mem::take(&mut self.held_out);
        for msg in held {
            self.send_encrypted(msg, ctx);
        }
    }

    fn send_encrypted(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        let epoch = self.epoch();
        let Some(&key) = self.keys.get(&epoch) else {
            ctx.up(Up::SystemError {
                reason: "SECURE: no group key for the current view yet".to_string(),
            });
            return;
        };
        self.nonce = self.nonce.wrapping_add(1);
        let cipher = Self::keystream(key, self.nonce, msg.body());
        let mac = Self::mac(key, self.nonce, &cipher);
        msg.set_body(cipher);
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, S_DATA);
        ctx.set(&mut msg, 1, epoch as u64);
        ctx.set(&mut msg, 2, self.nonce as u64);
        ctx.set(&mut msg, 3, mac);
        ctx.down(Down::Cast(msg));
    }
}

impl Layer for Secure {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "SECURE"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        SEC_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.flushing {
                    // Hold: the message must be encrypted under the key of
                    // the view it is sent in, which a flush is about to
                    // replace.
                    self.held_out.push(msg);
                } else {
                    self.send_encrypted(msg, ctx);
                }
            }
            Down::Send { dests, mut msg } => {
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, S_PLAIN);
                ctx.set(&mut msg, 1, 0);
                ctx.set(&mut msg, 2, 0);
                ctx.set(&mut msg, 3, 0);
                ctx.down(Down::Send { dests, msg });
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let epoch = ctx.get(&msg, 1) as u32;
                self.deliver_if_key(src, epoch, msg, ctx);
            }
            Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                if ctx.get(&msg, 0) == S_KEY {
                    let body = msg.body().clone();
                    let mut r = WireReader::new(&body);
                    let (Ok(epoch), Ok(wrapped), Ok(check)) =
                        (r.get_u32(), r.get_u64(), r.get_u64())
                    else {
                        return;
                    };
                    let wrap = self.pairwise(src);
                    let key = wrapped ^ wrap;
                    if fnv(&key.to_le_bytes(), wrap) != check {
                        self.rejected += 1;
                        return; // wrong master secret somewhere
                    }
                    self.keys.insert(epoch, key);
                    // Release any data that was waiting for this key.
                    let held = std::mem::take(&mut self.held);
                    for (s, e, m) in held {
                        self.deliver_if_key(s, e, m, ctx);
                    }
                    self.release_held_out(ctx);
                } else {
                    ctx.up(Up::Send { src, msg });
                }
            }
            Up::View(v) => {
                self.view = Some(v.clone());
                self.flushing = false;
                // Old epochs' keys stay for late deliveries; data of future
                // epochs buffers until that epoch's key arrives.
                ctx.up(Up::View(v));
                self.rotate_key(ctx);
                self.release_held_out(ctx);
            }
            Up::Flush { failed } => {
                self.flushing = true;
                ctx.up(Up::Flush { failed });
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "epoch={} keys={} held={} minted={} rejected={}",
            self.epoch(),
            self.keys.len(),
            self.held.len(),
            self.keys_minted,
            self.rejected
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// =====================================================================
// MUX
// =====================================================================

const MUX_FIELDS: &[FieldSpec] = &[FieldSpec::new("chan", 6)];

/// Cactus-stack multiplexing (§4): several logical applications share one
/// protocol stack, distinguished by `msg.meta.channel`.
#[derive(Debug, Default, Clone)]
pub struct Mux {
    per_channel: BTreeMap<u8, u64>,
}

impl Mux {
    /// Creates a MUX layer.
    pub fn new() -> Self {
        Mux::default()
    }

    /// Messages seen per channel.
    pub fn traffic(&self) -> &BTreeMap<u8, u64> {
        &self.per_channel
    }
}

impl Layer for Mux {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "MUX"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        MUX_FIELDS
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                let chan = msg.meta.channel.min(63);
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, chan as u64);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let chan = ctx.get(&msg, 0) as u8;
                msg.meta.channel = chan;
                *self.per_channel.entry(chan).or_insert(0) += 1;
                ctx.up(Up::Cast { src, msg });
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!("channels={:?}", self.per_channel)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::Nak;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn pair(seed: u64, net: NetConfig, mk: impl Fn() -> Vec<Box<dyn Layer>>) -> SimWorld {
        let mut w = SimWorld::new(seed, net);
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i)).extend(mk()).build().unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    type SendRecord = (EndpointAddr, Vec<u8>, Option<(u64, bool)>);

    fn sends_of(w: &SimWorld, e: EndpointAddr) -> Vec<SendRecord> {
        w.upcalls(e)
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Send { src, msg } => Some((*src, msg.body().to_vec(), msg.meta.rpc)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn rpc_request_reply_roundtrip() {
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Rpc::default()), Box::new(Nak::default()), Box::new(Com::new())]
        };
        let mut w = pair(1, NetConfig::reliable(), mk);
        // Client request.
        let mut req = w.stack(ep(1)).unwrap().new_message(&b"what time is it"[..]);
        req.meta.rpc = Some((0, false));
        w.down(ep(1), Down::Send { dests: vec![ep(2)], msg: req });
        w.run_for(Duration::from_millis(50));
        // Server sees the request with an id and replies.
        let got = sends_of(&w, ep(2));
        assert_eq!(got.len(), 1);
        let (src, body, rpc) = &got[0];
        assert_eq!(*src, ep(1));
        assert_eq!(&body[..], b"what time is it");
        let (id, is_reply) = rpc.expect("request id attached");
        assert!(!is_reply);
        let mut rsp = w.stack(ep(2)).unwrap().new_message(&b"simulated oclock"[..]);
        rsp.meta.rpc = Some((id, true));
        w.down(ep(2), Down::Send { dests: vec![ep(1)], msg: rsp });
        w.run_for(Duration::from_millis(50));
        let got = sends_of(&w, ep(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].2, Some((id, true)));
        let rpc_layer: &Rpc = w.stack(ep(1)).unwrap().focus_as("RPC").unwrap();
        assert_eq!(rpc_layer.completed, 1);
    }

    #[test]
    fn rpc_times_out_when_server_is_gone() {
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![
                Box::new(Rpc::new(Duration::from_millis(30), 2)),
                Box::new(Nak::default()),
                Box::new(Com::new()),
            ]
        };
        let mut w = pair(2, NetConfig::reliable(), mk);
        w.crash_at(SimTime::from_millis(1), ep(2));
        let mut req = w.stack(ep(1)).unwrap().new_message(&b"anyone?"[..]);
        req.meta.rpc = Some((0, false));
        w.down_at(SimTime::from_millis(2), ep(1), Down::Send { dests: vec![ep(2)], msg: req });
        w.run_for(Duration::from_secs(1));
        assert!(w.upcalls(ep(1)).iter().any(
            |(_, up)| matches!(up, Up::SystemError { reason } if reason.contains("timed out"))
        ));
        let rpc_layer: &Rpc = w.stack(ep(1)).unwrap().focus_as("RPC").unwrap();
        assert_eq!(rpc_layer.timed_out, 1);
    }

    #[test]
    fn rpc_retries_through_loss() {
        // RPC over a bare lossy COM (no NAK): its own retries do the work.
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Rpc::new(Duration::from_millis(20), 10)), Box::new(Com::new())]
        };
        let mut w = pair(3, NetConfig::lossy(0.4), mk);
        let mut req = w.stack(ep(1)).unwrap().new_message(&b"ping"[..]);
        req.meta.rpc = Some((0, false));
        w.down(ep(1), Down::Send { dests: vec![ep(2)], msg: req });
        w.run_for(Duration::from_millis(200));
        // Server saw at least one copy; reply (also lossy, so echo several
        // times through the app layer is cheating — a single reply may be
        // lost, but the request retry keeps re-delivering at the server,
        // which replies each time in this test driver).
        for (_, _, rpc) in sends_of(&w, ep(2)) {
            let (id, _) = rpc.unwrap();
            let mut rsp = w.stack(ep(2)).unwrap().new_message(&b"pong"[..]);
            rsp.meta.rpc = Some((id, true));
            w.down(ep(2), Down::Send { dests: vec![ep(1)], msg: rsp });
        }
        w.run_for(Duration::from_secs(1));
        // With 40% loss and 10 retries the call almost surely completed;
        // at minimum the layer never double-delivers one id.
        let replies = sends_of(&w, ep(1));
        assert!(replies.len() <= 1, "duplicate suppression");
    }

    #[test]
    fn clocksync_estimates_skew() {
        let mut w = SimWorld::new(4, NetConfig::reliable());
        let skews: [i64; 3] = [0, 5_000, -3_000];
        for i in 1..=3u64 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(ClockSync::new(skews[(i - 1) as usize], Duration::from_millis(20))))
                .push(Box::new(Mbrship::new(MbrshipConfig::default())))
                .push(Box::new(Frag::default()))
                .push(Box::new(Nak::default()))
                .push(Box::new(Com::promiscuous()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=3 {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(2));
        // ep1 (skew 0) is the senior member = master.  The others should
        // estimate their offsets to within the network RTT (~400 µs).
        for i in 2..=3u64 {
            let cs: &ClockSync = w.stack(ep(i)).unwrap().focus_as("CLOCKSYNC").unwrap();
            let est = cs.estimated_offset_us().expect("a sync round completed");
            let truth = -skews[(i - 1) as usize];
            assert!((est - truth).abs() < 500, "ep{i}: estimated {est}us vs true {truth}us");
            // Corrected clocks agree with true virtual time to the same
            // tolerance.
            let corrected = cs.corrected_clock_us(w.now());
            assert!((corrected - w.now().as_micros() as i64).abs() < 500);
        }
    }

    #[test]
    fn secure_rotates_keys_with_views_and_delivers() {
        let mk_stack = |i: u64, master: u64| -> Stack {
            StackBuilder::new(ep(i))
                .push(Box::new(Secure::new(master)))
                .push(Box::new(Mbrship::new(MbrshipConfig::default())))
                .push(Box::new(Frag::default()))
                .push(Box::new(Nak::default()))
                .push(Box::new(Com::promiscuous()))
                .build()
                .unwrap()
        };
        let mut w = SimWorld::new(5, NetConfig::reliable());
        for i in 1..=3 {
            w.add_endpoint(mk_stack(i, 0xfeed));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=3 {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(2));
        w.cast_bytes(ep(2), &b"secret plans"[..]);
        w.run_for(Duration::from_millis(500));
        for i in 1..=3 {
            let got = w.delivered_casts(ep(i));
            assert_eq!(got.len(), 1, "ep{i}");
            assert_eq!(&got[0].1[..], b"secret plans");
        }
        // Key rotation happened per view (singletons + merges).
        let s1: &Secure = w.stack(ep(1)).unwrap().focus_as("SECURE").unwrap();
        assert!(s1.keys_minted >= 2, "minted={}", s1.keys_minted);
        // A crash rotates again and traffic still flows.
        let t = w.now();
        w.crash_at(t, ep(3));
        w.run_for(Duration::from_secs(2));
        w.cast_bytes(ep(1), &b"post-rotation"[..]);
        w.run_for(Duration::from_millis(500));
        assert!(w.delivered_casts(ep(2)).iter().any(|(_, b, _)| &b[..] == b"post-rotation"));
    }

    #[test]
    fn secure_wire_is_ciphertext() {
        let key = 0xbeef;
        let cipher = Secure::keystream(key, 7, b"attack at dawn!!");
        assert_ne!(&cipher[..], b"attack at dawn!!");
        assert_eq!(&Secure::keystream(key, 7, &cipher)[..], b"attack at dawn!!");
        assert_ne!(Secure::keystream(key, 8, b"attack at dawn!!"), cipher);
    }

    #[test]
    fn mux_separates_channels() {
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Mux::new()), Box::new(Nak::default()), Box::new(Com::new())]
        };
        let mut w = pair(6, NetConfig::reliable(), mk);
        for (chan, text) in [(0u8, "control"), (5, "bulk"), (5, "bulk2"), (9, "telemetry")] {
            let mut m = w.stack(ep(1)).unwrap().new_message(text.as_bytes().to_vec());
            m.meta.channel = chan;
            w.down(ep(1), Down::Cast(m));
        }
        w.run_for(Duration::from_millis(100));
        let by_chan: Vec<(u8, Vec<u8>)> = w
            .upcalls(ep(2))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Cast { msg, .. } => Some((msg.meta.channel, msg.body().to_vec())),
                _ => None,
            })
            .collect();
        assert_eq!(by_chan.len(), 4);
        assert_eq!(by_chan[0], (0, b"control".to_vec()));
        assert_eq!(by_chan[1], (5, b"bulk".to_vec()));
        assert_eq!(by_chan[3], (9, b"telemetry".to_vec()));
        let mux: &Mux = w.stack(ep(2)).unwrap().focus_as("MUX").unwrap();
        assert_eq!(mux.traffic()[&5], 2);
    }
}
