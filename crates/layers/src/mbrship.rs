//! MBRSHIP — the virtually synchronous membership layer (§5, Figure 2).
//!
//! "The MBRSHIP layer simulates an environment for the members of a group
//! in which members can only fail (they cannot be slow or get disconnected)
//! and messages do not get lost. [...] Each member in the current view is
//! guaranteed either to accept that same view, or to be removed from that
//! view.  Messages sent in the current view are delivered to the surviving
//! members of the current view. [...] This is called *virtual synchrony*."
//!
//! ## The flush protocol
//!
//! At the heart of the layer is the flush protocol, run when a crash is
//! suspected, a member leaves, or views merge:
//!
//! 1. The **coordinator** — "usually the oldest surviving member of the
//!    oldest view", elected without any message exchange — multicasts
//!    `FLUSH(epoch, failed, leaving, joiners)`.
//! 2. Every participant stops initiating casts (queueing them), reports the
//!    flush to its application, and unicasts a **contribution** to the
//!    coordinator: its cumulative-receive vector plus copies of every
//!    logged message from *failed* senders (the unstable messages of
//!    Figure 2 — "it is necessary that all members log all unstable
//!    messages").
//! 3. With all contributions in hand the coordinator computes the **cut**
//!    (per sender, the highest message any survivor holds; for survivors
//!    this equals everything they sent, because they stopped) and
//!    multicasts `SYNC(cuts, retransmissions)` carrying every
//!    failed-sender message some survivor might lack.
//! 4. Each participant delivers retransmitted messages it misses, waits —
//!    still delivering — until its receive vector reaches the cut (the
//!    reliable FIFO layer below supplies survivors' in-flight messages),
//!    and then unicasts `FLUSH_OK`.
//! 5. On the last `FLUSH_OK` the coordinator multicasts the new **view**;
//!    everyone installs it, resets per-view state, and resumes.
//!
//! Failures *during* the flush restart it with a higher epoch under the
//! next coordinator, exactly as the paper describes ("a new round of the
//! flush protocol may start up immediately").
//!
//! ## Merging
//!
//! Partitions are handled in the extended-virtual-synchrony style (§9):
//! both sides make progress, and the `merge` downcall joins them back
//! together.  The merge is a cross-view flush: the joining view's members
//! participate in the coordinator's flush (contributing and waiting for
//! their own side's cut), so the same-view delivery guarantee holds on both
//! sides of the merge.  An Isis-style primary-partition mode
//! ([`MbrshipConfig::primary_partition`]) instead blocks any side that
//! loses a majority.
//!
//! ## Failure detection
//!
//! MBRSHIP consumes failure *suspicions* — PROBLEM upcalls from the NAK
//! layer's status-silence detector, LOST_MESSAGE events, and external
//! detector input via the `suspect` downcall (§5's "external failure
//! detection") — and converts them, via the flush, into the clean fail-stop
//! view changes the layers above rely on.
//!
//! Requires P3/P4 (reliable FIFO), P10–P12 beneath; provides P8, P9
//! (virtually (semi-)synchronous delivery) and P15 (consistent views).

use bytes::Bytes;
use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Duration;

const FIELDS: &[FieldSpec] = &[
    FieldSpec::new("kind", 4),
    FieldSpec::new("epoch", 16),
    FieldSpec::new("vc", 32),
    FieldSpec::new("seq", 32),
];

const KIND_DATA: u64 = 0;
const KIND_FLUSH: u64 = 1;
const KIND_CONTRIB: u64 = 2;
const KIND_SYNC: u64 = 3;
const KIND_FLUSH_OK: u64 = 4;
const KIND_VIEW: u64 = 5;
const KIND_MERGE_REQ: u64 = 6;
const KIND_MERGE_DENY: u64 = 7;
const KIND_SUSPECT: u64 = 8;
const KIND_LEAVE_REQ: u64 = 9;
/// An application-level subset send (Table 1 `send`): delivered within
/// the view it was sent in, not subject to flush recovery.
const KIND_USEND: u64 = 10;

const TIMER_TICK: u64 = 0;

/// Tuning and policy knobs for MBRSHIP.
#[derive(Debug, Clone)]
pub struct MbrshipConfig {
    /// Grant merge requests without consulting the application.
    pub auto_merge: bool,
    /// Isis-style primary partition: refuse to install a view that loses
    /// the majority of the previous one (§9's partitioning models).
    pub primary_partition: bool,
    /// Progress-check period.
    pub tick: Duration,
    /// Restart a stalled flush (or retry a merge) after this long.
    pub flush_timeout: Duration,
    /// Give up merging after this many MERGE_REQ retries.
    pub merge_retries: u32,
}

impl Default for MbrshipConfig {
    fn default() -> Self {
        MbrshipConfig {
            auto_merge: true,
            primary_partition: false,
            tick: Duration::from_millis(25),
            flush_timeout: Duration::from_millis(400),
            merge_retries: 8,
        }
    }
}

/// State of one flush round.
#[derive(Debug, Clone)]
struct FlushRound {
    epoch: u16,
    coordinator: EndpointAddr,
    failed: BTreeSet<EndpointAddr>,
    leaving: BTreeSet<EndpointAddr>,
    joiner_views: Vec<View>,
    /// Coordinator: contributions received (per contributor, ack vector).
    contribs: BTreeMap<EndpointAddr, BTreeMap<EndpointAddr, u32>>,
    /// Coordinator: failed-sender messages gathered from contributions.
    collected: BTreeMap<(EndpointAddr, u32), Bytes>,
    /// Coordinator: FLUSH_OKs received.
    flush_oks: BTreeSet<EndpointAddr>,
    sync_sent: bool,
    /// Member: the cut to reach before FLUSH_OK.
    cuts: Option<BTreeMap<EndpointAddr, u32>>,
    flush_ok_sent: bool,
}

impl FlushRound {
    fn new(
        epoch: u16,
        coordinator: EndpointAddr,
        failed: BTreeSet<EndpointAddr>,
        leaving: BTreeSet<EndpointAddr>,
        joiner_views: Vec<View>,
    ) -> Self {
        FlushRound {
            epoch,
            coordinator,
            failed,
            leaving,
            joiner_views,
            contribs: BTreeMap::new(),
            collected: BTreeMap::new(),
            flush_oks: BTreeSet::new(),
            sync_sent: false,
            cuts: None,
            flush_ok_sent: false,
        }
    }
}

#[derive(Debug, Clone)]
enum Phase {
    /// Before `join`.
    Idle,
    /// Steady state: casting and delivering.
    Normal,
    /// A flush round is in progress.
    Flushing(FlushRound),
    /// We sent MERGE_REQ and await the merged view.
    Merging { contact: EndpointAddr, attempts: u32, last_try: SimTime },
    /// Primary-partition mode: we lost the majority.
    Blocked,
    /// We left (or were destroyed).
    Exited,
}

/// The production membership layer.
#[derive(Clone)]
pub struct Mbrship {
    cfg: MbrshipConfig,
    me: Option<EndpointAddr>,
    group: Option<GroupAddr>,
    view: Option<View>,
    phase: Phase,
    /// Whether this endpoint asked to leave.
    leaving_self: bool,
    /// Per-view sequence of our own casts (first cast gets 1).
    my_seq: u32,
    /// Cumulative received per member, within the current view.
    recv: BTreeMap<EndpointAddr, u32>,
    /// Log of every data message received/sent in the current view
    /// (the unstable-message log of Figure 2), as post-open encodings.
    log: BTreeMap<(EndpointAddr, u32), Bytes>,
    /// Data that arrived for a view we have not installed yet.
    future: BTreeMap<(u32, EndpointAddr, u32), Message>,
    /// Subset sends that arrived for a view we have not installed yet
    /// (unicasts can outrun the VIEW multicast).
    future_sends: Vec<(u32, EndpointAddr, Message)>,
    /// Casts queued while flushing/merging.
    pending: VecDeque<Message>,
    /// Current failure suspicions.
    suspects: BTreeSet<EndpointAddr>,
    /// Members that asked to leave (coordinator-side bookkeeping).
    leave_reqs: BTreeSet<EndpointAddr>,
    /// Granted merges not yet folded into a view (coordinator side).
    pending_joiners: Vec<View>,
    /// Outstanding MERGE_REQUESTs shown to the application.
    merge_reqs: BTreeMap<u64, (EndpointAddr, View)>,
    next_merge_id: u64,
    /// Highest flush epoch seen in the current view.
    cur_epoch: u16,
    last_progress: SimTime,
    // Statistics.
    views_installed: u64,
    flushes_started: u64,
    delivered: u64,
    recovered: u64,
    dropped_stale: u64,
}

impl Mbrship {
    /// Creates a MBRSHIP layer with the given configuration.
    pub fn new(cfg: MbrshipConfig) -> Self {
        Mbrship {
            cfg,
            me: None,
            group: None,
            view: None,
            phase: Phase::Idle,
            leaving_self: false,
            my_seq: 0,
            recv: BTreeMap::new(),
            log: BTreeMap::new(),
            future: BTreeMap::new(),
            future_sends: Vec::new(),
            pending: VecDeque::new(),
            suspects: BTreeSet::new(),
            leave_reqs: BTreeSet::new(),
            pending_joiners: Vec::new(),
            merge_reqs: BTreeMap::new(),
            next_merge_id: 1,
            cur_epoch: 0,
            last_progress: SimTime::ZERO,
            views_installed: 0,
            flushes_started: 0,
            delivered: 0,
            recovered: 0,
            dropped_stale: 0,
        }
    }

    fn me(&self) -> EndpointAddr {
        self.me.expect("layer initialised")
    }

    fn vc(&self) -> u32 {
        self.view.as_ref().map(|v| v.id().counter as u32).unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Message construction helpers
    // ------------------------------------------------------------------

    fn control(&self, ctx: &mut LayerCtx<'_>, kind: u64, epoch: u16, body: Bytes) -> Message {
        let mut m = ctx.new_message(body);
        ctx.stamp(&mut m);
        ctx.set(&mut m, 0, kind);
        ctx.set(&mut m, 1, epoch as u64);
        ctx.set(&mut m, 2, self.vc() as u64);
        ctx.set(&mut m, 3, 0);
        m
    }

    fn control_cast(&self, ctx: &mut LayerCtx<'_>, kind: u64, epoch: u16, body: Bytes) {
        let m = self.control(ctx, kind, epoch, body);
        ctx.down(Down::Cast(m));
    }

    fn control_send(
        &self,
        ctx: &mut LayerCtx<'_>,
        dest: EndpointAddr,
        kind: u64,
        epoch: u16,
        body: Bytes,
    ) {
        let m = self.control(ctx, kind, epoch, body);
        ctx.down(Down::Send { dests: vec![dest], msg: m });
    }

    fn send_data(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        self.my_seq += 1;
        let seq = self.my_seq;
        // Log before stamping so the stored encoding matches what receivers
        // log after opening our header.
        self.log.insert((self.me(), seq), msg.encode_inner());
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_DATA);
        ctx.set(&mut msg, 1, 0);
        ctx.set(&mut msg, 2, self.vc() as u64);
        ctx.set(&mut msg, 3, seq as u64);
        ctx.down(Down::Cast(msg));
    }

    // ------------------------------------------------------------------
    // View installation
    // ------------------------------------------------------------------

    fn install_initial(&mut self, group: GroupAddr, ctx: &mut LayerCtx<'_>) {
        let v = View::initial(group, self.me());
        self.group = Some(group);
        self.adopt_view(v, ctx);
        self.phase = Phase::Normal;
    }

    /// Resets per-view state and announces `v` up and down the stack.
    fn adopt_view(&mut self, v: View, ctx: &mut LayerCtx<'_>) {
        self.my_seq = 0;
        self.recv = v.members().iter().map(|&m| (m, 0)).collect();
        self.log.clear();
        self.suspects.clear();
        self.leave_reqs.clear();
        self.pending_joiners.retain(|jv| !jv.members().iter().all(|m| v.contains(*m)));
        self.cur_epoch = 0;
        self.last_progress = ctx.now();
        self.views_installed += 1;
        self.view = Some(v.clone());
        ctx.down(Down::InstallView(v.clone()));
        ctx.up(Up::View(v.clone()));
        // Replay data that raced ahead of this installation.
        let vc = v.id().counter as u32;
        let ready: Vec<((u32, EndpointAddr, u32), Message)> = {
            let keys: Vec<_> = self
                .future
                .range((vc, EndpointAddr::new(1), 0)..=(vc, EndpointAddr::new(u64::MAX), u32::MAX))
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter().map(|k| (k, self.future.remove(&k).expect("present"))).collect()
        };
        for ((fvc, src, seq), msg) in ready {
            debug_assert_eq!(fvc, vc);
            self.handle_data(src, fvc, seq, msg, ctx);
        }
        // Drop data for views that can no longer happen.
        self.future.retain(|&(fvc, _, _), _| fvc > vc);
        // Release subset sends addressed to this view.
        let sends = std::mem::take(&mut self.future_sends);
        for (svc, src, msg) in sends {
            if svc == vc && v.contains(src) {
                ctx.up(Up::Send { src, msg });
            } else if svc > vc {
                self.future_sends.push((svc, src, msg));
            }
        }
        // Release queued casts into the new view.
        while let Some(m) = self.pending.pop_front() {
            self.send_data(m, ctx);
        }
    }

    /// Handles an incoming VIEW message (the final step of a flush).
    fn handle_view_msg(&mut self, src: EndpointAddr, body: &[u8], ctx: &mut LayerCtx<'_>) {
        let mut r = WireReader::new(body);
        let Ok(v_new) = r.get_view() else { return };
        let Ok(excluded) = r.get_addrs() else { return };
        let Ok(leaving) = r.get_addrs() else { return };
        let me = self.me();
        let cur_counter = self.view.as_ref().map(|v| v.id().counter).unwrap_or(0);
        if v_new.id().counter <= cur_counter {
            return; // stale
        }
        if v_new.contains(me) {
            if self.cfg.primary_partition {
                if let Some(old) = &self.view {
                    if old.len() > 1 {
                        let surviving =
                            old.members().iter().filter(|m| v_new.contains(**m)).count();
                        if surviving * 2 <= old.len() {
                            self.block(ctx);
                            return;
                        }
                    }
                }
            }
            for &l in &leaving {
                ctx.up(Up::Leave { member: l });
            }
            self.phase = Phase::Normal;
            self.adopt_view(v_new, ctx);
            return;
        }
        // Not a member: only meaningful if we were explicitly excluded.
        if leaving.contains(&me) && self.leaving_self {
            self.phase = Phase::Exited;
            ctx.down(Down::Leave);
            ctx.up(Up::Exit);
            return;
        }
        if excluded.contains(&me) {
            // We were suspected but are alive: fall back to a fresh
            // singleton view (the application may merge back later).
            ctx.up(Up::SystemError {
                reason: format!("excluded from view {} by {}", v_new.id(), src),
            });
            let group = self.group.expect("joined");
            let single = View::from_parts(
                group,
                horus_core::view::ViewId { counter: v_new.id().counter + 1, coordinator: me },
                vec![me],
                vec![v_new.id().counter + 1],
            );
            self.phase = Phase::Normal;
            self.adopt_view(single, ctx);
        }
        // Otherwise: somebody else's view lineage; ignore.
    }

    fn block(&mut self, ctx: &mut LayerCtx<'_>) {
        self.phase = Phase::Blocked;
        ctx.up(Up::SystemError { reason: "lost primary partition; progress blocked".to_string() });
    }

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    fn handle_data(
        &mut self,
        src: EndpointAddr,
        vc: u32,
        seq: u32,
        msg: Message,
        ctx: &mut LayerCtx<'_>,
    ) {
        let Some(view) = &self.view else { return };
        let my_vc = view.id().counter as u32;
        if matches!(self.phase, Phase::Blocked | Phase::Exited | Phase::Idle) {
            return;
        }
        if vc < my_vc {
            self.dropped_stale += 1;
            return;
        }
        if vc > my_vc {
            // Sender is ahead of us; hold until we install that view.
            self.future.insert((vc, src, seq), msg);
            return;
        }
        if !view.contains(src) {
            self.dropped_stale += 1;
            return;
        }
        // During a flush, messages from supposedly failed members are
        // ignored; their pre-cut messages return via SYNC retransmission.
        if let Phase::Flushing(f) = &self.phase {
            if f.failed.contains(&src) {
                return;
            }
        }
        let cum = self.recv.entry(src).or_insert(0);
        if seq <= *cum {
            self.dropped_stale += 1;
            return; // duplicate (e.g. already recovered through a flush)
        }
        *cum = seq;
        self.log.insert((src, seq), msg.encode_inner());
        self.delivered += 1;
        ctx.up(Up::Cast { src, msg });
        self.maybe_flush_ok(ctx);
    }

    // ------------------------------------------------------------------
    // Flush protocol
    // ------------------------------------------------------------------

    fn flush_body(
        failed: &BTreeSet<EndpointAddr>,
        leaving: &BTreeSet<EndpointAddr>,
        joiners: &[View],
    ) -> Bytes {
        let failed_list: Vec<EndpointAddr> = failed.iter().copied().collect();
        let leaving_list: Vec<EndpointAddr> = leaving.iter().copied().collect();
        let mut w = WireWriter::with_capacity(
            12 + 8 * (failed_list.len() + leaving_list.len())
                + joiners.iter().map(|v| 40 + 16 * v.len()).sum::<usize>(),
        );
        w.put_addrs(&failed_list);
        w.put_addrs(&leaving_list);
        w.put_u32(joiners.len() as u32);
        for jv in joiners {
            w.put_view(jv);
        }
        w.finish()
    }

    fn sync_body(
        cuts: &BTreeMap<EndpointAddr, u32>,
        retrans: &[(EndpointAddr, u32, Bytes)],
    ) -> Bytes {
        let mut w = WireWriter::with_capacity(
            8 + 12 * cuts.len() + retrans.iter().map(|(_, _, b)| 16 + b.len()).sum::<usize>(),
        );
        w.put_u32(cuts.len() as u32);
        for (&m, &c) in cuts {
            w.put_addr(m);
            w.put_u32(c);
        }
        w.put_u32(retrans.len() as u32);
        for (origin, seq, inner) in retrans {
            w.put_addr(*origin);
            w.put_u32(*seq);
            w.put_bytes(inner);
        }
        w.finish()
    }

    /// The coordinator re-broadcasts FLUSH (and SYNC) while waiting: the
    /// reliable-FIFO layer prunes casts once the *view* members ack them,
    /// so merge joiners outside the view can miss the originals for good.
    fn rebroadcast_round(&mut self, ctx: &mut LayerCtx<'_>) {
        let Phase::Flushing(round) = &self.phase else { return };
        let body = Self::flush_body(&round.failed, &round.leaving, &round.joiner_views);
        let epoch = round.epoch;
        let sync = if round.sync_sent {
            round.cuts.as_ref().map(|cuts| {
                let retrans: Vec<(EndpointAddr, u32, Bytes)> =
                    round.collected.iter().map(|(&(o, s), b)| (o, s, b.clone())).collect();
                Self::sync_body(cuts, &retrans)
            })
        } else {
            None
        };
        self.control_cast(ctx, KIND_FLUSH, epoch, body);
        if let Some(sync) = sync {
            self.control_cast(ctx, KIND_SYNC, epoch, sync);
        }
    }

    /// Starts (or restarts) a flush round, electing the coordinator
    /// deterministically.
    fn start_flush(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(view) = self.view.clone() else { return };
        if matches!(self.phase, Phase::Blocked | Phase::Exited | Phase::Idle) {
            return;
        }
        let me = self.me();
        let failed: BTreeSet<EndpointAddr> =
            self.suspects.iter().copied().filter(|s| view.contains(*s) && *s != me).collect();
        let participants: Vec<EndpointAddr> =
            view.members().iter().copied().filter(|m| !failed.contains(m)).collect();
        let Some(coordinator) = view.coordinator_among(&participants) else { return };
        if coordinator == me {
            self.cur_epoch += 1;
            self.flushes_started += 1;
            let joiners = self.pending_joiners.clone();
            let body = Self::flush_body(&failed, &self.leave_reqs.clone(), &joiners);
            self.control_cast(ctx, KIND_FLUSH, self.cur_epoch, body);
            // Our own FLUSH arrives via transport loopback and drives us
            // through the same handler as everyone else.
        } else {
            // Report suspicions to whoever should coordinate.
            let list: Vec<EndpointAddr> = failed.iter().copied().collect();
            let mut w = WireWriter::with_capacity(4 + 8 * list.len());
            w.put_addrs(&list);
            self.control_send(ctx, coordinator, KIND_SUSPECT, self.cur_epoch, w.finish());
        }
    }

    fn handle_flush(
        &mut self,
        src: EndpointAddr,
        epoch: u16,
        vc: u32,
        body: &[u8],
        ctx: &mut LayerCtx<'_>,
    ) {
        let mut r = WireReader::new(body);
        let Ok(failed_list) = r.get_addrs() else { return };
        let Ok(leaving_list) = r.get_addrs() else { return };
        let Ok(n_joiners) = r.get_u32() else { return };
        let mut joiner_views = Vec::with_capacity(n_joiners as usize);
        for _ in 0..n_joiners {
            match r.get_view() {
                Ok(v) => joiner_views.push(v),
                Err(_) => return,
            }
        }
        let me = self.me();
        let Some(view) = self.view.clone() else { return };
        let failed: BTreeSet<EndpointAddr> = failed_list.into_iter().collect();
        let leaving: BTreeSet<EndpointAddr> = leaving_list.into_iter().collect();

        // Which side of the flush are we on?
        let in_main = view.contains(src) && vc == view.id().counter as u32;
        let my_view_id = view.id();
        let in_joiner = joiner_views.iter().any(|jv| jv.id() == my_view_id && jv.contains(me));
        if !(in_main || in_joiner) {
            return; // someone else's flush
        }
        if in_main {
            if failed.contains(&me) {
                return; // we are being excluded; the VIEW message decides
            }
            // Validate the sender's right to coordinate this round.
            let participants: Vec<EndpointAddr> =
                view.members().iter().copied().filter(|m| !failed.contains(m)).collect();
            if view.coordinator_among(&participants) != Some(src) {
                return;
            }
            if let Phase::Flushing(round) = &self.phase {
                if epoch <= round.epoch {
                    return; // stale round
                }
            }
            self.cur_epoch = self.cur_epoch.max(epoch);
        } else if let Phase::Flushing(round) = &self.phase {
            // Joiner side: the coordinator rebroadcasts the round every
            // quarter-timeout for the benefit of members that missed it.
            // We did not miss it — re-entering the round here would
            // re-send our contribution and reset our (and, via that
            // contribution, the coordinator's) stall clock every
            // rebroadcast, so neither side's wedge recovery could ever
            // fire (a livelock the chaos soak caught).
            if round.coordinator == src && round.epoch >= epoch {
                return;
            }
        }
        self.last_progress = ctx.now();
        let round = FlushRound::new(epoch, src, failed.clone(), leaving, joiner_views);
        self.phase = Phase::Flushing(round);
        let failed_vec: Vec<EndpointAddr> = failed.iter().copied().collect();
        ctx.up(Up::Flush { failed: failed_vec });
        self.send_contrib(ctx);
    }

    /// Unicasts our contribution (ack vector + failed-sender messages) to
    /// the coordinator of the current round.
    fn send_contrib(&mut self, ctx: &mut LayerCtx<'_>) {
        let me = self.me();
        let Phase::Flushing(round) = &self.phase else { return };
        let coordinator = round.coordinator;
        let epoch = round.epoch;
        let failed = round.failed.clone();
        let Some(view) = &self.view else { return };
        let mut entries: Vec<(EndpointAddr, u32)> = Vec::new();
        for &m in view.members() {
            let mut acked = self.recv.get(&m).copied().unwrap_or(0);
            if m == me {
                // Our own casts count as received even if the loopback copy
                // is still in flight.
                acked = acked.max(self.my_seq);
            }
            entries.push((m, acked));
        }
        let mut w = WireWriter::with_capacity(8 + 12 * entries.len());
        w.put_u32(entries.len() as u32);
        for (m, acked) in &entries {
            w.put_addr(*m);
            w.put_u32(*acked);
        }
        let msgs: Vec<(&(EndpointAddr, u32), &Bytes)> =
            self.log.iter().filter(|((origin, _), _)| failed.contains(origin)).collect();
        w.put_u32(msgs.len() as u32);
        for ((origin, seq), inner) in msgs {
            w.put_addr(*origin);
            w.put_u32(*seq);
            w.put_bytes(inner);
        }
        self.control_send(ctx, coordinator, KIND_CONTRIB, epoch, w.finish());
    }

    fn handle_contrib(
        &mut self,
        src: EndpointAddr,
        epoch: u16,
        body: &[u8],
        ctx: &mut LayerCtx<'_>,
    ) {
        let me = self.me();
        {
            let Phase::Flushing(round) = &mut self.phase else { return };
            if round.coordinator != me || round.epoch != epoch {
                return;
            }
            let mut r = WireReader::new(body);
            let Ok(n) = r.get_u32() else { return };
            let mut vector = BTreeMap::new();
            for _ in 0..n {
                let (Ok(addr), Ok(acked)) = (r.get_addr(), r.get_u32()) else { return };
                vector.insert(addr, acked);
            }
            let Ok(n_msgs) = r.get_u32() else { return };
            for _ in 0..n_msgs {
                let (Ok(origin), Ok(seq)) = (r.get_addr(), r.get_u32()) else { return };
                let Ok(inner) = r.get_bytes() else { return };
                round.collected.insert((origin, seq), Bytes::copy_from_slice(inner));
            }
            // A re-delivered duplicate is not progress; letting it reset
            // the stall clock would postpone wedge recovery forever under
            // a steady drizzle of retransmissions.
            if round.contribs.insert(src, vector.clone()) == Some(vector) {
                return;
            }
        }
        self.last_progress = ctx.now();
        self.try_sync(ctx);
    }

    /// All participants of the current round, main view and joiners alike.
    /// Joiner-view members we already suspect are skipped: a crash
    /// discovered after the grant will never contribute, and awaiting it
    /// would wedge the whole round (main-view failures travel in
    /// `round.failed` instead, so the exclusion is part of the round).
    fn round_participants(
        view: &View,
        round: &FlushRound,
        suspects: &BTreeSet<EndpointAddr>,
    ) -> BTreeSet<EndpointAddr> {
        let mut set: BTreeSet<EndpointAddr> =
            view.members().iter().copied().filter(|m| !round.failed.contains(m)).collect();
        for jv in &round.joiner_views {
            set.extend(jv.members().iter().copied().filter(|m| !suspects.contains(m)));
        }
        set
    }

    fn try_sync(&mut self, ctx: &mut LayerCtx<'_>) {
        let me = self.me();
        let Some(view) = self.view.clone() else { return };
        let (epoch, cuts, retrans) = {
            let Phase::Flushing(round) = &mut self.phase else { return };
            if round.coordinator != me || round.sync_sent {
                return;
            }
            let participants = Self::round_participants(&view, round, &self.suspects);
            if !participants.iter().all(|p| round.contribs.contains_key(p)) {
                return;
            }
            // The cut: per sender, the highest message any participant
            // holds — computed within each epoch community.  Sequence
            // numbers are view-scoped, so a member that follows a
            // foreign joiner view (asymmetric partition: it is still
            // listed in our view but moved on) reports counts in *its*
            // epoch; folding those into our members' cut — or ours into
            // theirs — produces a bar nobody's receive vector can ever
            // reach (a flush wedge the chaos soak caught).
            let my_id = view.id();
            let mut community: BTreeMap<EndpointAddr, usize> = BTreeMap::new();
            for m in view.members() {
                community.insert(*m, 0);
            }
            for (i, jv) in round.joiner_views.iter().enumerate() {
                if jv.id() == my_id {
                    continue;
                }
                for m in jv.members() {
                    community.insert(*m, i + 1); // joiner epoch wins over ours
                }
            }
            let mut cuts: BTreeMap<EndpointAddr, u32> = BTreeMap::new();
            for (c, vector) in &round.contribs {
                let cc = community.get(c).copied();
                for (&m, &acked) in vector {
                    if community.get(&m).copied() != cc {
                        continue;
                    }
                    let e = cuts.entry(m).or_insert(0);
                    *e = (*e).max(acked);
                }
            }
            // Retransmissions: everything from failed senders up to their
            // cut (contributions supplied exactly these).
            let retrans: Vec<(EndpointAddr, u32, Bytes)> = round
                .collected
                .iter()
                .map(|(&(origin, seq), inner)| (origin, seq, inner.clone()))
                .collect();
            round.sync_sent = true;
            round.cuts = Some(cuts.clone());
            (round.epoch, cuts, retrans)
        };
        self.control_cast(ctx, KIND_SYNC, epoch, Self::sync_body(&cuts, &retrans));
    }

    fn handle_sync(&mut self, src: EndpointAddr, epoch: u16, body: &[u8], ctx: &mut LayerCtx<'_>) {
        let mut r = WireReader::new(body);
        let Ok(n) = r.get_u32() else { return };
        let mut cuts = BTreeMap::new();
        for _ in 0..n {
            let (Ok(addr), Ok(c)) = (r.get_addr(), r.get_u32()) else { return };
            cuts.insert(addr, c);
        }
        let Ok(n_msgs) = r.get_u32() else { return };
        let mut retrans: Vec<(EndpointAddr, u32, Bytes)> = Vec::with_capacity(n_msgs as usize);
        for _ in 0..n_msgs {
            let (Ok(origin), Ok(seq)) = (r.get_addr(), r.get_u32()) else { return };
            let Ok(inner) = r.get_bytes() else { return };
            retrans.push((origin, seq, Bytes::copy_from_slice(inner)));
        }
        {
            let Phase::Flushing(round) = &mut self.phase else { return };
            if round.coordinator != src || round.epoch != epoch {
                return;
            }
            round.cuts = Some(cuts);
        }
        self.last_progress = ctx.now();
        // Deliver recovered messages from failed senders, in order.
        retrans.sort_by_key(|&(origin, seq, _)| (origin, seq));
        let view = self.view.clone();
        for (origin, seq, inner) in retrans {
            let Some(view) = &view else { break };
            if !view.contains(origin) {
                continue; // other side's failed member
            }
            let cum = self.recv.entry(origin).or_insert(0);
            if seq <= *cum {
                continue; // already have it
            }
            *cum = seq;
            self.log.insert((origin, seq), inner.clone());
            match Message::decode_inner(ctx_layout(ctx), &inner) {
                Ok(mut m) => {
                    m.meta.src = Some(origin);
                    m.meta.flush_recovered = true;
                    self.delivered += 1;
                    self.recovered += 1;
                    ctx.up(Up::Cast { src: origin, msg: m });
                }
                Err(e) => ctx.trace(format!("MBRSHIP: recovered message undecodable: {e}")),
            }
        }
        self.maybe_flush_ok(ctx);
    }

    /// Sends FLUSH_OK once our receive vector reaches the cut.
    fn maybe_flush_ok(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(view) = self.view.clone() else { return };
        let (coordinator, epoch) = {
            let Phase::Flushing(round) = &mut self.phase else { return };
            let Some(cuts) = &round.cuts else { return };
            if round.flush_ok_sent {
                return;
            }
            // Members that also appear in a *foreign* joiner view stopped
            // following our epoch (asymmetric partition: they excluded us
            // and moved on) — their contributed cut is numbered in *their*
            // view and can never be met from ours.  Skip them: nobody who
            // still follows our view has a second log to disagree with,
            // and the merged view re-establishes synchrony from scratch.
            // Our own view showing up in `joiner_views` (we are the
            // joiner side of somebody else's round) does NOT make our
            // fellow members foreign — their cut is in our epoch and
            // must be honoured.
            let my_id = view.id();
            let foreign: BTreeSet<EndpointAddr> = round
                .joiner_views
                .iter()
                .filter(|jv| jv.id() != my_id)
                .flat_map(|jv| jv.members().iter().copied())
                .collect();
            let complete = view.members().iter().all(|m| {
                let have = self.recv.get(m).copied().unwrap_or(0);
                foreign.contains(m) || have >= cuts.get(m).copied().unwrap_or(0)
            });
            if !complete {
                return;
            }
            round.flush_ok_sent = true;
            (round.coordinator, round.epoch)
        };
        self.control_send(ctx, coordinator, KIND_FLUSH_OK, epoch, Bytes::new());
    }

    fn handle_flush_ok(&mut self, src: EndpointAddr, epoch: u16, ctx: &mut LayerCtx<'_>) {
        let me = self.me();
        {
            let Phase::Flushing(round) = &mut self.phase else { return };
            if round.coordinator != me || round.epoch != epoch {
                return;
            }
            round.flush_oks.insert(src);
        }
        self.last_progress = ctx.now();
        ctx.up(Up::FlushOk { from: src });
        self.try_install(ctx);
    }

    fn try_install(&mut self, ctx: &mut LayerCtx<'_>) {
        let me = self.me();
        let Some(view) = self.view.clone() else { return };
        let (epoch, failed, leaving, joiner_views) = {
            let Phase::Flushing(round) = &mut self.phase else { return };
            if round.coordinator != me || !round.sync_sent {
                return;
            }
            let participants = Self::round_participants(&view, round, &self.suspects);
            if !participants.iter().all(|p| round.flush_oks.contains(p)) {
                return;
            }
            (round.epoch, round.failed.clone(), round.leaving.clone(), round.joiner_views.clone())
        };
        let _ = epoch;
        // Build the successor view: drop failed & leaving, fold in joiners.
        let removed: Vec<EndpointAddr> = failed.union(&leaving).copied().collect();
        let survivors: Vec<EndpointAddr> =
            view.members().iter().copied().filter(|m| !removed.contains(m)).collect();
        if survivors.is_empty() && joiner_views.is_empty() {
            // Everyone (including us) is leaving: nothing to install.
            self.phase = Phase::Exited;
            ctx.down(Down::Leave);
            ctx.up(Up::Exit);
            return;
        }
        let mut v_new = view.successor(me, &removed, &[]);
        for jv in &joiner_views {
            v_new = v_new.merged(jv, me);
        }
        if self.cfg.primary_partition && view.len() > 1 {
            let surviving = view.members().iter().filter(|m| v_new.contains(**m)).count();
            if surviving * 2 <= view.len() {
                self.block(ctx);
                return;
            }
        }
        let failed_vec: Vec<EndpointAddr> = failed.iter().copied().collect();
        let leaving_vec: Vec<EndpointAddr> = leaving.iter().copied().collect();
        let mut w = WireWriter::with_capacity(
            48 + 16 * v_new.len() + 8 * (failed_vec.len() + leaving_vec.len()),
        );
        w.put_view(&v_new);
        w.put_addrs(&failed_vec);
        w.put_addrs(&leaving_vec);
        // The VIEW travels as a multicast (reaching main view and joiners
        // alike through the shared transport group); our own copy loops
        // back and installs it here too.
        self.control_cast(ctx, KIND_VIEW, self.cur_epoch, w.finish());
    }

    // ------------------------------------------------------------------
    // Suspicion and merge handling
    // ------------------------------------------------------------------

    fn suspect(&mut self, member: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        let Some(view) = &self.view else { return };
        if member == self.me() || !view.contains(member) {
            return;
        }
        if !self.suspects.insert(member) {
            return; // already known
        }
        match &self.phase {
            Phase::Normal => self.start_flush(ctx),
            Phase::Flushing(round)
                // A failure during the flush: restart under the (possibly
                // new) coordinator.
                if (round.coordinator == member || !round.failed.contains(&member)) => {
                    self.start_flush(ctx);
                }
            _ => {}
        }
    }

    /// Withdraws a suspicion: the detector below produced fresh evidence
    /// that `member` is alive (PROBLEM_CLEARED).  If we are coordinating a
    /// flush that would exclude the member and the cut has not been frozen
    /// yet (no SYNC sent), the flush restarts under the shrunk suspect set
    /// so a falsely accused live member is never ejected.
    fn rescind(&mut self, member: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        if !self.suspects.remove(&member) {
            return;
        }
        let me = self.me();
        let restart = matches!(
            &self.phase,
            Phase::Flushing(round)
                if round.coordinator == me
                    && !round.sync_sent
                    && round.failed.contains(&member)
        );
        if restart {
            self.start_flush(ctx);
        }
    }

    /// Suspicion is view-relative: a report generated in another view (for
    /// example one that crossed a partition and was delivered, reliably but
    /// late, after the merge) must not poison the current view.
    fn handle_suspect_report(&mut self, vc: u32, body: &[u8], ctx: &mut LayerCtx<'_>) {
        if vc != self.vc() {
            return;
        }
        let mut r = WireReader::new(body);
        let Ok(list) = r.get_addrs() else { return };
        for m in list {
            self.suspect(m, ctx);
        }
        // Even an empty report means somebody expects us to coordinate.
        if matches!(self.phase, Phase::Normal) && !self.suspects.is_empty() {
            self.start_flush(ctx);
        }
    }

    fn handle_merge_req(&mut self, src: EndpointAddr, body: &[u8], ctx: &mut LayerCtx<'_>) {
        let mut r = WireReader::new(body);
        let Ok(their_view) = r.get_view() else { return };
        let me = self.me();
        let Some(view) = self.view.clone() else { return };
        if their_view.id() == view.id() {
            // The requester is in our very view — nothing to merge.  Say
            // so explicitly: a silent drop parks the requester in
            // `Merging` for the full retry budget, and while its
            // coordinator waits there it will not start exclusion
            // flushes for members that crash in the meantime (the chaos
            // soak caught exactly that wedge).
            self.control_send(
                ctx,
                src,
                KIND_MERGE_DENY,
                0,
                Bytes::from_static(b"already in the same view"),
            );
            return;
        }
        // NOTE: membership containment is NOT a duplicate test.  After an
        // asymmetric partition (our failure detector rescinded its
        // suspicions post-heal, theirs did not) we can sit in a view that
        // still lists the requesters while they excluded us and moved on.
        // Their view id differs, so they are provably not following our
        // view — the merge must proceed or the divergence never heals
        // (the chaos soak's convergence monitor caught this deadlock).
        let coordinator = view.coordinator_among(view.members());
        if coordinator != Some(me) {
            // Forward to our coordinator.
            if let Some(c) = coordinator {
                let mut w = WireWriter::with_capacity(40 + 16 * their_view.len());
                w.put_view(&their_view);
                self.control_send(ctx, c, KIND_MERGE_REQ, 0, w.finish());
            }
            return;
        }
        if self.cfg.auto_merge {
            self.grant_merge(src, their_view, ctx);
        } else {
            let id = self.next_merge_id;
            self.next_merge_id += 1;
            self.merge_reqs.insert(id, (src, their_view));
            ctx.up(Up::MergeRequest { from: src, id: MergeId(id) });
        }
    }

    fn grant_merge(&mut self, _from: EndpointAddr, their_view: View, ctx: &mut LayerCtx<'_>) {
        if !self.pending_joiners.iter().any(|jv| jv.id() == their_view.id()) {
            self.pending_joiners.push(their_view.clone());
        }
        if let Phase::Merging { .. } = self.phase {
            // We were courting another view when this one proposed to
            // us.  Waiting out our own retry budget before flushing the
            // grant adds seconds of post-heal latency, so abandon the
            // outbound attempt and coordinate now — but only when we
            // outrank their coordinator, so two views merging toward
            // each other elect exactly one flush coordinator instead of
            // dueling.
            let me = self.me();
            let their_coord = their_view.coordinator_among(their_view.members());
            if their_coord.is_none_or(|c| me < c) {
                self.phase = Phase::Normal;
            }
        }
        if matches!(self.phase, Phase::Normal) {
            self.start_flush(ctx);
        }
    }

    fn handle_merge_deny(&mut self, body: &[u8], ctx: &mut LayerCtx<'_>) {
        if let Phase::Merging { .. } = self.phase {
            let why = String::from_utf8_lossy(body).to_string();
            self.phase = Phase::Normal;
            ctx.up(Up::MergeDenied { why });
        }
    }

    fn send_merge_req(&mut self, contact: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        let Some(view) = &self.view else { return };
        let mut w = WireWriter::with_capacity(40 + 16 * view.len());
        w.put_view(view);
        self.control_send(ctx, contact, KIND_MERGE_REQ, 0, w.finish());
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn on_tick(&mut self, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let stalled = now.saturating_since(self.last_progress) > self.cfg.flush_timeout;

        enum Action {
            None,
            RestartAsCoordinator { awaited: Vec<EndpointAddr> },
            SuspectCoordinator(EndpointAddr),
            RetryMerge(EndpointAddr),
            AbandonMerge,
            RetryLeave,
            Rebroadcast,
            SweepFlush,
        }

        let waited = now.saturating_since(self.last_progress);
        let action = match &mut self.phase {
            Phase::Flushing(round) => {
                let me = self.me.expect("layer initialised");
                if round.coordinator == me {
                    if stalled {
                        let view = self.view.clone().expect("flushing implies view");
                        // What a participant owes us depends on the round's
                        // stage: before SYNC only contributions exist —
                        // judging members by missing flush-oks then would
                        // condemn everyone, including live members whose
                        // contribution already arrived.
                        let awaited: Vec<EndpointAddr> =
                            Self::round_participants(&view, round, &self.suspects)
                                .into_iter()
                                .filter(|p| {
                                    if round.sync_sent {
                                        !round.flush_oks.contains(p)
                                    } else {
                                        !round.contribs.contains_key(p)
                                    }
                                })
                                .collect();
                        Action::RestartAsCoordinator { awaited }
                    } else if waited > self.cfg.flush_timeout / 4 {
                        Action::Rebroadcast
                    } else {
                        Action::None
                    }
                } else if waited > self.cfg.flush_timeout * 2 {
                    // The flush stopped making progress.  Aim the
                    // escalation at whoever should be coordinating *now*
                    // (senior live, unsuspected member): if the round's
                    // original coordinator is already suspected from an
                    // earlier escalation, re-suspecting it would no-op and
                    // this watchdog would unicast SUSPECT reports to a dead
                    // successor forever.
                    let view = self.view.clone().expect("flushing implies view");
                    let live: Vec<EndpointAddr> = view
                        .members()
                        .iter()
                        .copied()
                        .filter(|m| !self.suspects.contains(m))
                        .collect();
                    let awaited = view.coordinator_among(&live).unwrap_or(round.coordinator);
                    Action::SuspectCoordinator(awaited)
                } else {
                    Action::None
                }
            }
            Phase::Merging { contact, attempts, last_try } => {
                if now.saturating_since(*last_try) > self.cfg.flush_timeout {
                    if *attempts >= self.cfg.merge_retries {
                        Action::AbandonMerge
                    } else {
                        *attempts += 1;
                        *last_try = now;
                        Action::RetryMerge(*contact)
                    }
                } else {
                    Action::None
                }
            }
            Phase::Normal if self.leaving_self && stalled => {
                self.last_progress = now;
                Action::RetryLeave
            }
            // Suspicions or granted joiners recorded while we were busy
            // (Merging, or mid-flush for an unrelated round) have no
            // event left to trigger the flush that acts on them — sweep
            // them up here or the view never changes again.
            Phase::Normal
                if stalled && !(self.suspects.is_empty() && self.pending_joiners.is_empty()) =>
            {
                self.last_progress = now;
                Action::SweepFlush
            }
            _ => Action::None,
        };

        match action {
            Action::None => {}
            Action::RestartAsCoordinator { awaited } => {
                // Participants that never answered are gone: suspect them
                // individually.  Dropping a joiner *view* because one of
                // its members went silent would punish its live members —
                // they re-request the merge, we re-grant, the new round
                // wedges on the same corpse, and the cycle's flush traffic
                // keeps resetting everyone's stall clocks (a livelock the
                // chaos soak caught).  A joiner view is only abandoned
                // once every member of it is suspected.
                let me = self.me();
                for p in awaited {
                    if p == me {
                        continue;
                    }
                    self.suspects.insert(p);
                }
                let suspects = self.suspects.clone();
                self.pending_joiners
                    .retain(|jv| !jv.members().iter().all(|m| suspects.contains(m)));
                self.last_progress = now;
                self.start_flush(ctx);
            }
            Action::SuspectCoordinator(c) => {
                // The coordinator stopped making progress: suspect it and
                // try again under its successor.
                self.last_progress = now;
                self.suspect(c, ctx);
                self.start_flush(ctx);
            }
            Action::Rebroadcast => self.rebroadcast_round(ctx),
            Action::RetryMerge(contact) => self.send_merge_req(contact, ctx),
            Action::RetryLeave => {
                if let Some(view) = &self.view {
                    if view.len() > 1 {
                        let coordinator =
                            view.coordinator_among(view.members()).expect("non-empty view");
                        let me = self.me();
                        if coordinator == me {
                            self.leave_reqs.insert(me);
                            self.start_flush(ctx);
                        } else {
                            self.control_send(ctx, coordinator, KIND_LEAVE_REQ, 0, Bytes::new());
                        }
                    }
                }
            }
            Action::AbandonMerge => {
                self.phase = Phase::Normal;
                ctx.up(Up::MergeDenied { why: "merge timed out".to_string() });
            }
            Action::SweepFlush => self.start_flush(ctx),
        }
        ctx.set_timer(self.cfg.tick, TIMER_TICK);
    }
}

/// The layout handle of the current stack (for decoding recovered
/// messages).
fn ctx_layout(ctx: &LayerCtx<'_>) -> std::sync::Arc<horus_core::message::HeaderLayout> {
    // A zero-byte message shares the stack's layout Arc.
    ctx.new_message(Bytes::new()).layout().clone()
}

impl Default for Mbrship {
    fn default() -> Self {
        Mbrship::new(MbrshipConfig::default())
    }
}

impl Layer for Mbrship {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "MBRSHIP"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        self.last_progress = ctx.now();
        ctx.set_timer(self.cfg.tick, TIMER_TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Join { group } => {
                ctx.down(Down::Join { group });
                self.install_initial(group, ctx);
            }
            Down::Cast(msg) => match self.phase {
                // Casting while Merging is safe: a MERGE_REQ does not stop
                // the current view, and any messages sent before the merge
                // flush arrives are covered by its cut.
                Phase::Normal | Phase::Merging { .. } => self.send_data(msg, ctx),
                Phase::Flushing(_) => self.pending.push_back(msg),
                _ => ctx.up(Up::SystemError {
                    reason: "cast while not an active group member".to_string(),
                }),
            },
            Down::Send { dests, mut msg } => {
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, KIND_USEND);
                ctx.set(&mut msg, 1, 0);
                ctx.set(&mut msg, 2, self.vc() as u64);
                ctx.set(&mut msg, 3, 0);
                ctx.down(Down::Send { dests, msg });
            }
            Down::Suspect { member } => self.suspect(member, ctx),
            Down::Flush { failed } => {
                for m in failed {
                    self.suspects.insert(m);
                }
                if matches!(self.phase, Phase::Normal | Phase::Flushing(_)) {
                    self.start_flush(ctx);
                }
            }
            Down::FlushOk => {
                // The production layer tracks flush completion itself; the
                // downcall exists for app-driven membership (Table 1).
                self.maybe_flush_ok(ctx);
            }
            Down::Merge { contact } => {
                if !matches!(self.phase, Phase::Normal) {
                    ctx.up(Up::SystemError {
                        reason: "merge only possible from a stable view".to_string(),
                    });
                    return;
                }
                let me = self.me();
                let is_coord =
                    self.view.as_ref().and_then(|v| v.coordinator_among(v.members())) == Some(me);
                if !is_coord {
                    ctx.up(Up::SystemError {
                        reason: "merge must be issued at the view coordinator".to_string(),
                    });
                    return;
                }
                self.phase = Phase::Merging { contact, attempts: 1, last_try: ctx.now() };
                self.send_merge_req(contact, ctx);
            }
            Down::MergeGranted(MergeId(id)) => {
                if let Some((from, their_view)) = self.merge_reqs.remove(&id) {
                    self.grant_merge(from, their_view, ctx);
                }
            }
            Down::MergeDenied(MergeId(id)) => {
                if let Some((from, _)) = self.merge_reqs.remove(&id) {
                    self.control_send(
                        ctx,
                        from,
                        KIND_MERGE_DENY,
                        0,
                        Bytes::from_static(b"denied by application"),
                    );
                }
            }
            Down::Leave => {
                let me = self.me();
                self.leaving_self = true;
                match (&self.phase, self.view.as_ref()) {
                    (Phase::Normal | Phase::Flushing(_), Some(view)) if view.len() > 1 => {
                        let coordinator =
                            view.coordinator_among(view.members()).expect("non-empty view");
                        if coordinator == me {
                            self.leave_reqs.insert(me);
                            self.start_flush(ctx);
                        } else {
                            self.control_send(ctx, coordinator, KIND_LEAVE_REQ, 0, Bytes::new());
                        }
                    }
                    _ => {
                        self.phase = Phase::Exited;
                        ctx.down(Down::Leave);
                        ctx.up(Up::Exit);
                    }
                }
            }
            Down::Destroy => {
                self.phase = Phase::Exited;
                ctx.down(Down::Destroy);
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } | Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let kind = ctx.get(&msg, 0);
                let epoch = ctx.get(&msg, 1) as u16;
                let vc = ctx.get(&msg, 2) as u32;
                let seq = ctx.get(&msg, 3) as u32;
                match kind {
                    KIND_DATA => self.handle_data(src, vc, seq, msg, ctx),
                    KIND_FLUSH => self.handle_flush(src, epoch, vc, &msg.body().clone(), ctx),
                    KIND_CONTRIB => self.handle_contrib(src, epoch, &msg.body().clone(), ctx),
                    KIND_SYNC => self.handle_sync(src, epoch, &msg.body().clone(), ctx),
                    KIND_FLUSH_OK => self.handle_flush_ok(src, epoch, ctx),
                    KIND_VIEW => self.handle_view_msg(src, &msg.body().clone(), ctx),
                    KIND_MERGE_REQ => self.handle_merge_req(src, &msg.body().clone(), ctx),
                    KIND_MERGE_DENY => self.handle_merge_deny(&msg.body().clone(), ctx),
                    KIND_SUSPECT => self.handle_suspect_report(vc, &msg.body().clone(), ctx),
                    KIND_USEND => {
                        // Subset sends honour view boundaries like casts,
                        // but carry no sequence and are not flushed.  A
                        // send for a newer view than ours buffers until we
                        // install it (unicasts can beat the VIEW cast).
                        if vc > self.vc() {
                            self.future_sends.push((vc, src, msg));
                        } else if vc == self.vc()
                            && self.view.as_ref().map(|v| v.contains(src)).unwrap_or(false)
                        {
                            ctx.up(Up::Send { src, msg });
                        }
                    }
                    KIND_LEAVE_REQ if vc == self.vc() => {
                        self.leave_reqs.insert(src);
                        if matches!(self.phase, Phase::Normal) {
                            self.start_flush(ctx);
                        }
                    }
                    _ => {}
                }
            }
            Up::Problem { member } => {
                self.suspect(member, ctx);
                ctx.up(Up::Problem { member });
            }
            Up::ProblemCleared { member } => {
                self.rescind(member, ctx);
                ctx.up(Up::ProblemCleared { member });
            }
            Up::LostMessage { src } => {
                // A hole in src's transport-level FIFO stream.  This is
                // benign for virtual synchrony: the flush protocol prunes
                // nothing that a current-view member still needs (the NAK
                // layer only discards messages acknowledged by the whole
                // destination view), so LOST placeholders refer to messages
                // of *older* views, which the vc check would discard anyway
                // (a common artefact after partitions heal).  Report it to
                // the application but do not suspect the sender.
                ctx.up(Up::LostMessage { src });
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == TIMER_TICK {
            self.on_tick(ctx);
        }
    }

    fn dump(&self) -> String {
        let round = match &self.phase {
            Phase::Flushing(r) => format!(
                " round[e{} coord={} failed={:?} contribs={:?} oks={:?} sync={} cuts={} joiners={}]",
                r.epoch,
                r.coordinator,
                r.failed,
                r.contribs.keys().collect::<Vec<_>>(),
                r.flush_oks,
                r.sync_sent,
                r.cuts.is_some(),
                r.joiner_views.len(),
            ),
            _ => String::new(),
        };
        format!(
            "phase={}{round} view={} seq={} delivered={} recovered={} flushes={} views={} suspects={:?}",
            match &self.phase {
                Phase::Idle => "idle",
                Phase::Normal => "normal",
                Phase::Flushing(_) => "flushing",
                Phase::Merging { .. } => "merging",
                Phase::Blocked => "blocked",
                Phase::Exited => "exited",
            },
            self.view
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_string()),
            self.my_seq,
            self.delivered,
            self.recovered,
            self.flushes_started,
            self.views_installed,
            self.suspects,
        )
    }

    fn pending_work(&self) -> u64 {
        // An unfinished flush is owed work (the view change must
        // terminate), as are casts held back during it and data buffered
        // for views not yet installed.  Merging deliberately does NOT
        // count: merge probes toward a dead or partitioned contact may
        // legitimately retry forever (the contact could return), so the
        // phase is background maintenance; a merge that *should* complete
        // but doesn't is caught by the view-convergence liveness monitor
        // instead.
        let lifecycle = match self.phase {
            Phase::Flushing(_) => 1,
            _ => 0,
        };
        lifecycle
            + self.pending.len() as u64
            + self.future.len() as u64
            + self.future_sends.len() as u64
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::nak::{Nak, NakConfig};
    use horus_net::NetConfig;
    use horus_sim::{check_virtual_synchrony, DeliveryLog, SimWorld, Workload};

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn vs_stack(i: u64, cfg: MbrshipConfig) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Mbrship::new(cfg)))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::new(NakConfig {
                fail_timeout: Duration::from_millis(120),
                ..NakConfig::default()
            })))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    /// Builds a world where member 1 joins first and the others merge in,
    /// then runs until the full view is installed everywhere.
    fn joined_world(n: u64, seed: u64, cfg: MbrshipConfig, net: NetConfig) -> SimWorld {
        let mut w = SimWorld::new(seed, net);
        for i in 1..=n {
            w.add_endpoint(vs_stack(i, cfg.clone()));
            w.join(ep(i), GroupAddr::new(1));
        }
        // Everyone merges toward endpoint 1.
        for i in 2..=n {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(2));
        for i in 1..=n {
            let views = w.installed_views(ep(i));
            let last = views.last().unwrap_or_else(|| panic!("{i} has no view"));
            assert_eq!(last.len(), n as usize, "endpoint {i} should see all {n} members");
        }
        w
    }

    fn logs(w: &SimWorld, n: u64) -> Vec<DeliveryLog> {
        (1..=n)
            .filter(|&i| w.is_alive(ep(i)))
            .map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i))))
            .collect()
    }

    #[test]
    fn join_installs_singleton_view() {
        let mut w = SimWorld::new(1, NetConfig::reliable());
        w.add_endpoint(vs_stack(1, MbrshipConfig::default()));
        w.join(ep(1), GroupAddr::new(1));
        w.run_for(Duration::from_millis(10));
        let views = w.installed_views(ep(1));
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].members(), &[ep(1)]);
    }

    #[test]
    fn merge_builds_full_view() {
        let w = joined_world(4, 2, MbrshipConfig::default(), NetConfig::reliable());
        // All members agree on the final view.
        let v1 = w.installed_views(ep(1)).last().unwrap().clone();
        for i in 2..=4 {
            assert_eq!(w.installed_views(ep(i)).last().unwrap(), &v1);
        }
        assert!(check_virtual_synchrony(&logs(&w, 4)).is_empty());
    }

    #[test]
    fn casts_reach_all_members_of_view() {
        let mut w = joined_world(3, 3, MbrshipConfig::default(), NetConfig::reliable());
        let start = w.now();
        for k in 1..=10u64 {
            w.cast_bytes_at(start + Duration::from_millis(k), ep(1), Workload::body(ep(1), k, 32));
        }
        w.run_for(Duration::from_millis(500));
        for i in 1..=3 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 10, "endpoint {i}");
        }
        assert!(check_virtual_synchrony(&logs(&w, 3)).is_empty());
    }

    #[test]
    fn crash_triggers_flush_and_new_view() {
        let mut w = joined_world(3, 4, MbrshipConfig::default(), NetConfig::reliable());
        let t = w.now();
        w.crash_at(t + Duration::from_millis(10), ep(3));
        w.run_for(Duration::from_secs(2));
        for i in 1..=2 {
            let last = w.installed_views(ep(i)).last().unwrap().clone();
            assert_eq!(last.members(), &[ep(1), ep(2)], "endpoint {i} final view");
            // FLUSH upcall visible to the application.
            assert!(w
                .upcalls(ep(i))
                .iter()
                .any(|(_, up)| matches!(up, Up::Flush { failed } if failed.contains(&ep(3)))));
        }
        assert!(check_virtual_synchrony(&logs(&w, 3)).is_empty());
    }

    #[test]
    fn figure_2_scenario_message_survives_sender_crash() {
        // Figure 2: D crashes right after sending M; only C receives it.
        // The flush must deliver M at A and B before the new view.
        let mut w = joined_world(4, 5, MbrshipConfig::default(), NetConfig::reliable());
        let (a, b, _c, d) = (ep(1), ep(2), ep(3), ep(4));
        let t = w.now();
        // Cut D off from A and B (but not C), let it cast M, then crash it.
        w.partition_at(t + Duration::from_millis(1), &[&[ep(1), ep(2)], &[ep(3), ep(4)]]);
        w.cast_bytes_at(t + Duration::from_millis(2), d, Workload::body(d, 1, 32));
        w.crash_at(t + Duration::from_millis(5), d);
        w.heal_at(t + Duration::from_millis(8));
        w.run_for(Duration::from_secs(3));
        for &m in &[a, b] {
            let got = w.delivered_casts(m);
            let from_d: Vec<_> = got.iter().filter(|(s, _, _)| *s == d).collect();
            assert_eq!(from_d.len(), 1, "{m} must deliver M exactly once");
        }
        // And the survivors end in a 3-member view.
        let last = w.installed_views(a).last().unwrap().clone();
        assert_eq!(last.members(), &[ep(1), ep(2), ep(3)]);
        assert!(check_virtual_synchrony(&logs(&w, 4)).is_empty());
    }

    #[test]
    fn traffic_during_crash_stays_virtually_synchronous() {
        for seed in 1..=4 {
            let mut w =
                joined_world(4, 100 + seed, MbrshipConfig::default(), NetConfig::reliable());
            let t = w.now();
            let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3), ep(4)], 40);
            wl.schedule(&mut w, t + Duration::from_millis(1));
            w.crash_at(t + Duration::from_millis(20), ep(2));
            w.run_for(Duration::from_secs(3));
            let violations = check_virtual_synchrony(&logs(&w, 4));
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            // Survivors made it to a 3-member view.
            for i in [1u64, 3, 4] {
                assert_eq!(
                    w.installed_views(ep(i)).last().unwrap().len(),
                    3,
                    "seed {seed} endpoint {i}"
                );
            }
        }
    }

    #[test]
    fn leave_is_graceful() {
        let mut w = joined_world(3, 6, MbrshipConfig::default(), NetConfig::reliable());
        let t = w.now();
        w.down_at(t + Duration::from_millis(5), ep(2), Down::Leave);
        w.run_for(Duration::from_secs(2));
        // The leaver gets EXIT; the others see LEAVE and a 2-member view.
        assert!(w.upcalls(ep(2)).iter().any(|(_, up)| matches!(up, Up::Exit)));
        for i in [1u64, 3] {
            assert!(w
                .upcalls(ep(i))
                .iter()
                .any(|(_, up)| matches!(up, Up::Leave { member } if *member == ep(2))));
            assert_eq!(w.installed_views(ep(i)).last().unwrap().members(), &[ep(1), ep(3)]);
        }
    }

    #[test]
    fn partition_and_remerge_extended_vs() {
        let mut w = joined_world(4, 7, MbrshipConfig::default(), NetConfig::reliable());
        let t = w.now();
        w.partition_at(t + Duration::from_millis(5), &[&[ep(1), ep(2)], &[ep(3), ep(4)]]);
        w.run_for(Duration::from_secs(2));
        // Both sides made progress into 2-member views.
        assert_eq!(w.installed_views(ep(1)).last().unwrap().len(), 2);
        assert_eq!(w.installed_views(ep(3)).last().unwrap().len(), 2);
        // Heal and merge back: the coordinator of the (3,4) side contacts 1.
        let t = w.now();
        w.heal_at(t);
        w.down_at(t + Duration::from_millis(30), ep(3), Down::Merge { contact: ep(1) });
        w.run_for(Duration::from_secs(2));
        for i in 1..=4 {
            assert_eq!(
                w.installed_views(ep(i)).last().unwrap().len(),
                4,
                "endpoint {i} back to full view"
            );
        }
        assert!(check_virtual_synchrony(&logs(&w, 4)).is_empty());
    }

    #[test]
    fn primary_partition_blocks_minority() {
        let cfg = MbrshipConfig { primary_partition: true, ..MbrshipConfig::default() };
        let mut w = joined_world(4, 8, cfg, NetConfig::reliable());
        let t = w.now();
        w.partition_at(t + Duration::from_millis(5), &[&[ep(1), ep(2), ep(3)], &[ep(4)]]);
        w.run_for(Duration::from_secs(3));
        // Majority side continues into a 3-member view.
        for i in 1..=3 {
            assert_eq!(w.installed_views(ep(i)).last().unwrap().len(), 3);
        }
        // Minority member is blocked, not reinstalled.
        assert!(w
            .upcalls(ep(4))
            .iter()
            .any(|(_, up)| matches!(up, Up::SystemError { reason } if reason.contains("primary"))));
        assert_eq!(w.installed_views(ep(4)).last().unwrap().len(), 4, "no minority view");
    }

    #[test]
    fn virtual_synchrony_under_loss() {
        for seed in 1..=3 {
            let mut w =
                joined_world(3, 200 + seed, MbrshipConfig::default(), NetConfig::lossy(0.1));
            let t = w.now();
            let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 30);
            wl.schedule(&mut w, t + Duration::from_millis(1));
            w.crash_at(t + Duration::from_millis(25), ep(3));
            w.run_for(Duration::from_secs(4));
            let violations = check_virtual_synchrony(&logs(&w, 3));
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn coordinator_crash_mid_flush_recovers() {
        let mut w = joined_world(4, 9, MbrshipConfig::default(), NetConfig::reliable());
        let t = w.now();
        // Crash the member whose failure starts a flush...
        w.crash_at(t + Duration::from_millis(5), ep(4));
        // ...and crash the coordinator (oldest member, ep1) mid-flush.
        w.crash_at(t + Duration::from_millis(140), ep(1));
        w.run_for(Duration::from_secs(4));
        for i in 2..=3 {
            let last = w.installed_views(ep(i)).last().unwrap().clone();
            assert_eq!(last.members(), &[ep(2), ep(3)], "endpoint {i}");
        }
        assert!(check_virtual_synchrony(&logs(&w, 4)).is_empty());
    }

    #[test]
    fn external_suspicion_downcall_forces_flush() {
        let mut w = joined_world(3, 10, MbrshipConfig::default(), NetConfig::reliable());
        let t = w.now();
        // The external failure detector (§5) says ep3 is faulty, even
        // though it is actually fine.
        w.down_at(t + Duration::from_millis(5), ep(1), Down::Suspect { member: ep(3) });
        w.run_for(Duration::from_secs(2));
        let last = w.installed_views(ep(1)).last().unwrap().clone();
        assert_eq!(last.members(), &[ep(1), ep(2)]);
        // The falsely-suspected member was excluded and told so.
        assert!(w.upcalls(ep(3)).iter().any(
            |(_, up)| matches!(up, Up::SystemError { reason } if reason.contains("excluded"))
        ));
        // It falls back to a singleton view and could merge back.
        assert_eq!(w.installed_views(ep(3)).last().unwrap().members(), &[ep(3)]);
    }
}
