//! TOTAL — token-based totally ordered multicast (§7).
//!
//! "The TOTAL layer, in turn, relies on virtually synchronous
//! communication.  During normal operation, it utilizes a token.  A special
//! 'oracle' at each member decides who should get the token next. [...] In
//! case of a failure, the token may be lost.  This, however, is not a
//! problem.  During the flush, all members that did not get the token in
//! time send their messages.  These messages are not delivered, but
//! buffered.  When the new view is installed, each member that remains
//! connected to the system is guaranteed to have all messages from the
//! previous view, and a deterministic order can easily be constructed
//! (e.g., messages are delivered in the order of the rank of the source).
//! Another deterministic rule decides who the first token holder in this
//! view is (e.g., the lowest ranked member)."
//!
//! The implementation follows the paper exactly:
//!
//! * Senders multicast data immediately, tagged `(sender, tseq)`; receivers
//!   buffer it *unordered*.
//! * Only the current **token holder** issues ORDER messages, assigning
//!   contiguous global sequence numbers to buffered messages; everyone
//!   delivers in global order.  The ORDER message also names the next
//!   holder, so the token grant is totally ordered by construction and two
//!   holders can never coexist.
//! * The **oracle** picks the next holder: the sender of the newest message
//!   just ordered (an active sender orders its own traffic cheaply), which
//!   "cannot always make the optimal decision ... but comes close".
//! * On a VIEW upcall from MBRSHIP the token is reconstructed for free:
//!   leftover unordered messages (all members hold the same set, thanks to
//!   virtual synchrony) are delivered in `(source rank, tseq)` order, and
//!   the lowest-ranked member of the new view becomes the first holder.
//!
//! As §7 notes, TOTAL needs no failure detector of its own — its liveness
//! rests entirely on the view changes MBRSHIP supplies, which is how it
//! sidesteps the FLP impossibility argument.
//!
//! Requires P3, P8, P9, P15 beneath; provides P6 (totally ordered
//! delivery).

use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::collections::BTreeMap;

const FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 2), FieldSpec::new("tseq", 32)];

const KIND_DATA: u64 = 0;
const KIND_ORDER: u64 = 1;

/// The token-based total ordering layer.
#[derive(Clone)]
pub struct Total {
    me: Option<EndpointAddr>,
    view: Option<View>,
    /// Per-sender sequence of our own casts within the view.
    my_tseq: u32,
    /// Buffered data not yet delivered: keyed by `(sender, tseq)`.
    unordered: BTreeMap<(EndpointAddr, u32), Message>,
    /// Keys already assigned a global sequence (delivery may still wait for
    /// the data or for earlier global numbers).
    ordered: BTreeMap<u64, (EndpointAddr, u32)>,
    /// Keys that have been ordered (reverse index of `ordered`).
    assigned: BTreeMap<(EndpointAddr, u32), u64>,
    /// Next global sequence number to deliver.
    gnext: u64,
    /// Disjoint [base, end) ranges of global sequence numbers covered by
    /// applied ORDER messages.
    covered: BTreeMap<u64, u64>,
    /// If the token was granted to us: the base our first assignment must
    /// start at.  We may only issue once `frontier() == grant` — i.e. we
    /// have applied every ORDER before our grant — otherwise we could
    /// re-assign keys ordered by a message still in flight (ORDERs from
    /// different senders are only FIFO per sender).
    grant: Option<u64>,
    /// Last known holder (the most recent grant applied), for diagnostics
    /// and the oracle.
    holder: Option<EndpointAddr>,
    holder_gen: u64,
    /// A flush is in progress below (§7: "these messages are not
    /// delivered, but buffered"): no ordering decisions, and application
    /// casts are held back so their sequence stamps belong to the view
    /// they will actually be sent in.
    flushing: bool,
    held: std::collections::VecDeque<Message>,
    // Statistics.
    delivered: u64,
    orders_issued: u64,
    token_passes: u64,
    view_drains: u64,
}

impl Default for Total {
    fn default() -> Self {
        Total::new()
    }
}

impl Total {
    /// Creates a TOTAL layer.
    pub fn new() -> Self {
        Total {
            me: None,
            view: None,
            my_tseq: 0,
            unordered: BTreeMap::new(),
            ordered: BTreeMap::new(),
            assigned: BTreeMap::new(),
            gnext: 1,
            covered: BTreeMap::new(),
            grant: None,
            holder: None,
            holder_gen: 0,
            flushing: false,
            held: std::collections::VecDeque::new(),
            delivered: 0,
            orders_issued: 0,
            token_passes: 0,
            view_drains: 0,
        }
    }

    /// The contiguous coverage frontier: every global sequence in
    /// `[1, frontier)` has been assigned by an applied (or self-issued)
    /// ORDER.
    fn frontier(&self) -> u64 {
        let mut f = 1;
        for (&base, &end) in &self.covered {
            if base > f {
                break;
            }
            f = f.max(end);
        }
        f
    }

    fn add_coverage(&mut self, base: u64, len: u64) {
        let e = self.covered.entry(base).or_insert(base);
        *e = (*e).max(base + len);
    }

    /// The oracle (§7): pick the next holder after a batch — the sender of
    /// the newest message ordered, so active senders self-order cheaply.
    fn oracle(&self, batch: &[(EndpointAddr, u32)]) -> EndpointAddr {
        batch.last().map(|&(src, _)| src).unwrap_or_else(|| self.me.expect("init"))
    }

    /// Token holder: assign global sequence numbers to everything buffered
    /// and not yet ordered, then hand the token onward.  Only runs when we
    /// hold a grant *and* have applied every order before it, which makes
    /// double assignment impossible.
    fn issue_order(&mut self, ctx: &mut LayerCtx<'_>) {
        if self.flushing {
            return; // the view change will rebuild the token deterministically
        }
        let Some(g_base) = self.grant else { return };
        if self.frontier() != g_base {
            return; // not caught up with the order chain yet
        }
        let batch: Vec<(EndpointAddr, u32)> =
            self.unordered.keys().filter(|k| !self.assigned.contains_key(*k)).copied().collect();
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let next_holder = self.oracle(&batch);
        let mut w = WireWriter::with_capacity(20 + 12 * batch.len());
        w.put_u64(g_base);
        w.put_addr(next_holder);
        w.put_u32(batch.len() as u32);
        for &(src, tseq) in &batch {
            w.put_addr(src);
            w.put_u32(tseq);
        }
        self.orders_issued += 1;
        // Our own assignments take effect immediately (the loopback copy
        // is then a no-op duplicate): apply entries and coverage now so a
        // kept token can chain issues without waiting.
        for (i, &key) in batch.iter().enumerate() {
            self.ordered.insert(g_base + i as u64, key);
            self.assigned.insert(key, g_base + i as u64);
        }
        self.add_coverage(g_base, n);
        let mut m = ctx.new_message(w.finish());
        ctx.stamp(&mut m);
        ctx.set(&mut m, 0, KIND_ORDER);
        ctx.set(&mut m, 1, 0);
        ctx.down(Down::Cast(m));
        if next_holder == self.me.expect("init") {
            self.grant = Some(g_base + n);
        } else {
            self.token_passes += 1;
            self.grant = None;
            self.holder = Some(next_holder);
        }
        self.try_deliver(ctx);
    }

    fn handle_order(&mut self, src: EndpointAddr, body: &[u8], ctx: &mut LayerCtx<'_>) {
        if Some(src) == self.me {
            // Our own ORDER already took effect at issue time; re-applying
            // the loopback copy could resurrect a stale self-grant.
            return;
        }
        let mut r = WireReader::new(body);
        let Ok(g_base) = r.get_u64() else { return };
        let Ok(next_holder) = r.get_addr() else { return };
        let Ok(n) = r.get_u32() else { return };
        for i in 0..n as u64 {
            let (Ok(src), Ok(tseq)) = (r.get_addr(), r.get_u32()) else { return };
            // Our own issues were applied at issue time; duplicates no-op.
            self.ordered.entry(g_base + i).or_insert((src, tseq));
            self.assigned.entry((src, tseq)).or_insert(g_base + i);
        }
        self.add_coverage(g_base, n as u64);
        if g_base >= self.holder_gen {
            self.holder = Some(next_holder);
            self.holder_gen = g_base;
        }
        if next_holder == self.me.expect("init") && self.grant.is_none() {
            self.grant = Some(g_base + n as u64);
        }
        // Coverage may have advanced enough to act on a pending grant.
        self.issue_order(ctx);
        self.try_deliver(ctx);
    }

    fn try_deliver(&mut self, ctx: &mut LayerCtx<'_>) {
        while let Some(&key) = self.ordered.get(&self.gnext) {
            let Some(mut msg) = self.unordered.remove(&key) else { break };
            self.ordered.remove(&self.gnext);
            self.assigned.remove(&key);
            msg.meta.total_seq = Some(self.gnext);
            self.gnext += 1;
            self.delivered += 1;
            ctx.up(Up::Cast { src: key.0, msg });
        }
    }

    /// View change: drain deterministically and reset the token (§7).
    fn handle_view(&mut self, view: View, ctx: &mut LayerCtx<'_>) {
        // First deliver everything that was ordered and is present.
        self.try_deliver(ctx);
        // Then the leftover unordered messages, by (source rank, tseq) in
        // the OLD view — every survivor holds the same set, so this order
        // is identical everywhere.
        let leftovers: Vec<(EndpointAddr, u32)> = match &self.view {
            Some(old) => {
                let mut keys: Vec<_> = self.unordered.keys().copied().collect();
                keys.sort_by_key(|&(src, tseq)| {
                    (old.rank_of(src).map(|r| r.0).unwrap_or(usize::MAX), src, tseq)
                });
                keys
            }
            None => self.unordered.keys().copied().collect(),
        };
        for key in leftovers {
            let mut msg = self.unordered.remove(&key).expect("key from buffer");
            msg.meta.total_seq = Some(self.gnext);
            self.gnext += 1;
            self.delivered += 1;
            self.view_drains += 1;
            ctx.up(Up::Cast { src: key.0, msg });
        }
        // Reset for the new view: lowest-ranked member holds the token.
        self.unordered.clear();
        self.ordered.clear();
        self.assigned.clear();
        self.my_tseq = 0;
        self.gnext = 1;
        self.covered.clear();
        self.holder_gen = 0;
        self.holder = view.members().first().copied();
        self.grant = (self.holder == self.me).then_some(1);
        self.view = Some(view.clone());
        self.flushing = false;
        ctx.up(Up::View(view));
        // Casts held during the flush go out now, stamped for this view.
        let held: Vec<Message> = self.held.drain(..).collect();
        for msg in held {
            self.stamp_and_send(msg, ctx);
        }
        self.issue_order(ctx);
    }

    fn stamp_and_send(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        self.my_tseq += 1;
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_DATA);
        ctx.set(&mut msg, 1, self.my_tseq as u64);
        ctx.down(Down::Cast(msg));
    }
}

impl Layer for Total {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "TOTAL"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.flushing {
                    self.held.push_back(msg);
                } else {
                    self.stamp_and_send(msg, ctx);
                }
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                match ctx.get(&msg, 0) {
                    KIND_DATA => {
                        let tseq = ctx.get(&msg, 1) as u32;
                        self.unordered.insert((src, tseq), msg);
                        self.issue_order(ctx);
                        self.try_deliver(ctx);
                    }
                    KIND_ORDER => self.handle_order(src, &msg.body().clone(), ctx),
                    _ => {}
                }
            }
            Up::View(view) => self.handle_view(view, ctx),
            Up::Flush { failed } => {
                self.flushing = true;
                ctx.up(Up::Flush { failed });
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "holder={:?} grant={:?} gnext={} frontier={} delivered={} buffered={} ordered={} assigned={} orders={} passes={} drains={} pend={:?}",
            self.holder,
            self.grant,
            self.gnext,
            self.frontier(),
            self.delivered,
            self.unordered.len(),
            self.ordered.len(),
            self.assigned.len(),
            self.orders_issued,
            self.token_passes,
            self.view_drains,
            self.ordered.iter().take(3).collect::<Vec<_>>()
        )
    }

    fn pending_work(&self) -> u64 {
        // Buffered data awaiting a global sequence number (a parked token
        // keeps this non-empty) plus casts held back during a flush.
        (self.unordered.len() + self.held.len()) as u64
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::{Nak, NakConfig};
    use horus_net::NetConfig;
    use horus_sim::{check_total_order, check_virtual_synchrony, DeliveryLog, SimWorld, Workload};
    use std::time::Duration;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn total_stack(i: u64) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Total::new()))
            .push(Box::new(Mbrship::new(MbrshipConfig::default())))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::new(NakConfig {
                fail_timeout: Duration::from_millis(120),
                ..NakConfig::default()
            })))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn joined_world(n: u64, seed: u64, net: NetConfig) -> SimWorld {
        let mut w = SimWorld::new(seed, net);
        for i in 1..=n {
            w.add_endpoint(total_stack(i));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=n {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(2));
        for i in 1..=n {
            assert_eq!(
                w.installed_views(ep(i)).last().expect("view").len(),
                n as usize,
                "endpoint {i} joined"
            );
        }
        w
    }

    fn logs(w: &SimWorld, n: u64) -> Vec<DeliveryLog> {
        (1..=n)
            .filter(|&i| w.is_alive(ep(i)))
            .map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i))))
            .collect()
    }

    #[test]
    fn concurrent_senders_identical_order() {
        let mut w = joined_world(3, 1, NetConfig::reliable());
        let t = w.now();
        let wl = horus_sim::Workload {
            kind: horus_sim::WorkloadKind::AllToAll,
            senders: vec![ep(1), ep(2), ep(3)],
            slots: 20,
            interval: Duration::from_micros(300),
            payload: 24,
        };
        wl.schedule(&mut w, t + Duration::from_millis(1));
        w.run_for(Duration::from_secs(2));
        for i in 1..=3 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 60, "endpoint {i}");
        }
        let logs = logs(&w, 3);
        assert!(check_total_order(&logs).is_empty());
        assert!(check_virtual_synchrony(&logs).is_empty());
        // All three endpoints see exactly the same global sequence.
        let seq1: Vec<_> =
            w.delivered_casts(ep(1)).iter().map(|(s, b, _)| (*s, b.clone())).collect();
        for i in 2..=3 {
            let seq: Vec<_> =
                w.delivered_casts(ep(i)).iter().map(|(s, b, _)| (*s, b.clone())).collect();
            assert_eq!(seq1, seq, "endpoint {i} sequence identical");
        }
    }

    #[test]
    fn total_order_survives_loss() {
        for seed in 1..=3 {
            let mut w = joined_world(3, 50 + seed, NetConfig::lossy(0.15));
            let t = w.now();
            let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 30);
            wl.schedule(&mut w, t + Duration::from_millis(1));
            w.run_for(Duration::from_secs(4));
            for i in 1..=3 {
                assert_eq!(w.delivered_casts(ep(i)).len(), 30, "seed {seed} endpoint {i}");
            }
            assert!(check_total_order(&logs(&w, 3)).is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn token_holder_crash_recovers_deterministically() {
        for seed in 1..=4 {
            let mut w = joined_world(4, 80 + seed, NetConfig::reliable());
            let t = w.now();
            let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3), ep(4)], 40);
            wl.schedule(&mut w, t + Duration::from_millis(1));
            // The initial token holder is the lowest-ranked member (ep1,
            // the oldest): crash it mid-stream.
            w.crash_at(t + Duration::from_millis(15), ep(1));
            w.run_for(Duration::from_secs(4));
            let logs = logs(&w, 4);
            let violations = check_total_order(&logs);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
            assert!(check_virtual_synchrony(&logs).is_empty(), "seed {seed}");
            // Survivors continue: the remaining members' casts all arrive.
            for i in 2..=4 {
                let n = w.delivered_casts(ep(i)).len();
                assert!(n >= 30, "seed {seed} endpoint {i} delivered {n}");
            }
        }
    }

    #[test]
    fn token_moves_to_active_senders() {
        let mut w = joined_world(3, 5, NetConfig::reliable());
        let t = w.now();
        // Only ep3 casts: the oracle should hand it the token, after which
        // it orders its own messages without extra hops.
        for k in 1..=20u64 {
            w.cast_bytes_at(t + Duration::from_millis(k), ep(3), Workload::body(ep(3), k, 24));
        }
        w.run_for(Duration::from_secs(1));
        let total: &Total = w.stack(ep(3)).unwrap().focus_as("TOTAL").unwrap();
        assert_eq!(total.holder, Some(ep(3)), "token settled on the active sender");
        assert!(total.orders_issued > 0, "the active sender issued orders itself");
    }

    #[test]
    fn global_sequence_is_exposed_in_meta() {
        let mut w = joined_world(2, 6, NetConfig::reliable());
        let t = w.now();
        for k in 1..=5u64 {
            w.cast_bytes_at(t + Duration::from_millis(k), ep(1), Workload::body(ep(1), k, 24));
        }
        w.run_for(Duration::from_secs(1));
        let seqs: Vec<u64> = w
            .upcalls(ep(2))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Cast { msg, .. } => msg.meta.total_seq,
                _ => None,
            })
            .collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }
}
