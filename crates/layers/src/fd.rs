//! FD — adaptive heartbeat failure detection (§5).
//!
//! §5 says the membership layer "receives failure notifications from a
//! failure-detector object" and explicitly allows that detector to be
//! **inaccurate**: it "does not have to be correct in deciding whether a
//! process is to be considered faulty".  Until now the repository's only
//! in-stack suspicion source was the NAK layer's status-silence give-up —
//! a fixed timeout tied to NAK's own traffic.  FD is the dedicated,
//! composable detector the paper describes:
//!
//! * every member multicasts a small **heartbeat** on a configurable
//!   period;
//! * per monitored member, FD keeps an **EWMA of observed heartbeat
//!   inter-arrival times** (the classic adaptive-timeout construction: the
//!   network's real jitter, not a guessed constant, sets the horizon);
//! * the suspicion timeout is `max(min_timeout, margin × EWMA + jitter)` —
//!   silence beyond it raises a PROBLEM upcall, which MBRSHIP above
//!   converts into a flush;
//! * a fresh heartbeat from a suspected member **rescinds** the suspicion
//!   (PROBLEM_CLEARED): if the view change has not yet committed, MBRSHIP
//!   restarts the flush *without* excluding the falsely accused member.
//!
//! FD stacks under MBRSHIP and above FRAG/NAK (`MBRSHIP:FD:FRAG:NAK:COM`);
//! heartbeats ride the reliable FIFO layers like any other cast but are
//! consumed here, invisible to membership and the application.  Monitoring
//! follows the view: `Down::InstallView` passing through resets the peer
//! table to the new membership.  In viewless compositions (no MBRSHIP) FD
//! simply monitors whichever peers it hears heartbeats from.
//!
//! Like PACK, FD provides no Table 4 property — it is a service layer; its
//! matrix row (requires FIFO + sources, provides nothing, masks nothing)
//! makes `MBRSHIP:FD:…` compositions well-formed for the §6 checker.

use horus_core::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 1), FieldSpec::new("hseq", 32)];

const KIND_DATA: u64 = 0;
const KIND_HEARTBEAT: u64 = 1;

const TIMER_BEAT: u64 = 0;

/// EWMA gain for inter-arrival smoothing (1/8, the TCP SRTT constant).
const EWMA_ALPHA: f64 = 0.125;

/// Tuning knobs for the FD layer.
#[derive(Debug, Clone)]
pub struct FdConfig {
    /// Heartbeat multicast period.
    pub period: Duration,
    /// Floor for the suspicion timeout (never suspect faster than this,
    /// whatever the EWMA says).
    pub min_timeout: Duration,
    /// Multiplier on the smoothed inter-arrival time.
    pub margin: f64,
    /// Additive jitter allowance on top of the scaled EWMA.
    pub jitter: Duration,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig {
            period: Duration::from_millis(25),
            min_timeout: Duration::from_millis(75),
            margin: 3.0,
            jitter: Duration::from_millis(10),
        }
    }
}

impl FdConfig {
    /// The adaptive suspicion horizon for one peer:
    /// `max(min_timeout, margin × EWMA + jitter)`; before any inter-arrival
    /// sample exists, `max(min_timeout, margin × period + jitter)`.
    fn timeout_for(&self, peer: &PeerFd) -> Duration {
        let base_ns = peer.ewma_ns.unwrap_or(self.period.as_nanos() as f64);
        let adaptive = Duration::from_nanos((self.margin * base_ns) as u64) + self.jitter;
        adaptive.max(self.min_timeout)
    }
}

/// Per-monitored-member detector state.
#[derive(Debug, Clone)]
struct PeerFd {
    /// Last heartbeat (or initial grace) arrival time.
    last: SimTime,
    /// Smoothed heartbeat inter-arrival time, in nanoseconds.
    ewma_ns: Option<f64>,
    /// A PROBLEM for this member is outstanding (not yet rescinded or
    /// resolved by a view change).
    suspected: bool,
}

impl PeerFd {
    fn fresh(now: SimTime) -> Self {
        PeerFd { last: now, ewma_ns: None, suspected: false }
    }
}

/// The adaptive heartbeat failure detector.
#[derive(Debug, Clone)]
pub struct Fd {
    cfg: FdConfig,
    me: Option<EndpointAddr>,
    /// Current view membership, if a membership layer above installs one.
    view: Option<View>,
    peers: BTreeMap<EndpointAddr, PeerFd>,
    hseq: u64,
    /// PROBLEM upcalls raised (the E19 detection metric).
    pub problems_raised: u64,
    /// Suspicions rescinded by a fresh heartbeat.
    pub rescissions: u64,
    heartbeats_sent: u64,
    heartbeats_seen: u64,
}

impl Default for Fd {
    fn default() -> Self {
        Fd::new(FdConfig::default())
    }
}

impl Fd {
    /// Creates an FD layer with the given tuning.
    pub fn new(cfg: FdConfig) -> Self {
        Fd {
            cfg,
            me: None,
            view: None,
            peers: BTreeMap::new(),
            hseq: 0,
            problems_raised: 0,
            rescissions: 0,
            heartbeats_sent: 0,
            heartbeats_seen: 0,
        }
    }

    fn beat(&mut self, ctx: &mut LayerCtx<'_>) {
        self.hseq += 1;
        self.heartbeats_sent += 1;
        let mut msg = ctx.new_message(bytes::Bytes::new());
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_HEARTBEAT);
        ctx.set(&mut msg, 1, self.hseq);
        ctx.down(Down::Cast(msg));
    }

    fn record_heartbeat(&mut self, src: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        self.heartbeats_seen += 1;
        let now = ctx.now();
        // With a view installed, monitoring is view-relative: heartbeats
        // from non-members (stale incarnations, other partitions heard
        // promiscuously) are ignored.  Without one, monitor ad hoc.
        if let Some(view) = &self.view {
            if !view.contains(src) {
                return;
            }
        }
        use std::collections::btree_map::Entry;
        match self.peers.entry(src) {
            Entry::Vacant(slot) => {
                // First contact: start the silence clock, no inter-arrival
                // sample yet.
                slot.insert(PeerFd::fresh(now));
            }
            Entry::Occupied(mut slot) => {
                let peer = slot.get_mut();
                let sample_ns = now.saturating_since(peer.last).as_nanos() as f64;
                peer.ewma_ns = Some(match peer.ewma_ns {
                    None => sample_ns,
                    Some(e) => (1.0 - EWMA_ALPHA) * e + EWMA_ALPHA * sample_ns,
                });
                peer.last = now;
                if peer.suspected {
                    // The member is demonstrably alive: rescind the
                    // suspicion before the exclusion commits.
                    peer.suspected = false;
                    self.rescissions += 1;
                    ctx.up(Up::ProblemCleared { member: src });
                }
            }
        }
    }

    fn check_peers(&mut self, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let cfg = self.cfg.clone();
        let mut newly_suspect = Vec::new();
        for (&m, peer) in self.peers.iter_mut() {
            if peer.suspected {
                continue;
            }
            if now.saturating_since(peer.last) > cfg.timeout_for(peer) {
                peer.suspected = true;
                newly_suspect.push(m);
            }
        }
        for m in newly_suspect {
            self.problems_raised += 1;
            ctx.up(Up::Problem { member: m });
        }
    }

    fn reset_to_view(&mut self, view: &View, now: SimTime) {
        let me = self.me.expect("layer initialised");
        let old = std::mem::take(&mut self.peers);
        for &m in view.members() {
            if m == me {
                continue;
            }
            // Keep the learned inter-arrival EWMA across view changes but
            // restart the silence clock (grace period for the new view)
            // and drop any outstanding suspicion — the view change resolved
            // it one way or the other.
            let ewma = old.get(&m).and_then(|p| p.ewma_ns);
            self.peers.insert(m, PeerFd { last: now, ewma_ns: ewma, suspected: false });
        }
        self.view = Some(view.clone());
    }
}

impl Layer for Fd {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "FD"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        ctx.set_timer(self.cfg.period, TIMER_BEAT);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, KIND_DATA);
                ctx.set(&mut msg, 1, 0);
                ctx.down(Down::Cast(msg));
            }
            Down::Send { dests, mut msg } => {
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, KIND_DATA);
                ctx.set(&mut msg, 1, 0);
                ctx.down(Down::Send { dests, msg });
            }
            Down::InstallView(view) => {
                self.reset_to_view(&view, ctx.now());
                ctx.down(Down::InstallView(view));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return; // not ours / garbled: drop
                }
                match ctx.get(&msg, 0) {
                    KIND_HEARTBEAT => self.record_heartbeat(src, ctx),
                    _ => ctx.up(Up::Cast { src, msg }),
                }
            }
            Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                ctx.up(Up::Send { src, msg });
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == TIMER_BEAT {
            self.beat(ctx);
            self.check_peers(ctx);
            ctx.set_timer(self.cfg.period, TIMER_BEAT);
        }
    }

    fn dump(&self) -> String {
        let suspected: Vec<&EndpointAddr> =
            self.peers.iter().filter(|(_, p)| p.suspected).map(|(m, _)| m).collect();
        format!(
            "beats_sent={} beats_seen={} monitored={} problems={} rescissions={} suspected={:?}",
            self.heartbeats_sent,
            self.heartbeats_seen,
            self.peers.len(),
            self.problems_raised,
            self.rescissions,
            suspected
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn fd_stack(i: u64, cfg: FdConfig) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Fd::new(cfg)))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn fd_world(n: u64, seed: u64, cfg: FdConfig) -> SimWorld {
        let mut w = SimWorld::new(seed, NetConfig::reliable());
        for i in 1..=n {
            w.add_endpoint(fd_stack(i, cfg.clone()));
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    fn problems(w: &SimWorld, observer: u64) -> Vec<EndpointAddr> {
        w.upcalls(ep(observer))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Problem { member } => Some(*member),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn quiet_group_raises_no_suspicions() {
        let mut w = fd_world(3, 1, FdConfig::default());
        w.run_for(Duration::from_secs(2));
        for i in 1..=3 {
            assert!(problems(&w, i).is_empty(), "ep{i} suspected someone");
        }
    }

    #[test]
    fn crash_detected_within_bounded_heartbeat_periods() {
        let cfg = FdConfig::default();
        let period = cfg.period;
        let mut w = fd_world(3, 2, cfg.clone());
        w.run_for(Duration::from_millis(500));
        let t_crash = w.now();
        w.crash_at(t_crash, ep(3));
        w.run_for(Duration::from_secs(2));
        for i in [1u64, 2] {
            let t_detect = w
                .upcalls(ep(i))
                .iter()
                .find_map(|(t, up)| match up {
                    Up::Problem { member } if *member == ep(3) => Some(*t),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("ep{i} never suspected the crashed member"));
            let lag = t_detect.saturating_since(t_crash);
            assert!(
                lag <= period * 10,
                "ep{i} took {lag:?} (> 10 heartbeat periods) to detect the crash"
            );
        }
    }

    #[test]
    fn fresh_heartbeat_rescinds_suspicion() {
        // Partition ep2 away long enough to be suspected, then heal: the
        // next heartbeat must clear the suspicion, not eject the member.
        let mut w = fd_world(2, 3, FdConfig::default());
        w.run_for(Duration::from_millis(300));
        let t = w.now();
        w.partition_at(t, &[&[ep(1)], &[ep(2)]]);
        w.heal_at(t + Duration::from_millis(400));
        w.run_for(Duration::from_secs(2));
        assert!(problems(&w, 1).contains(&ep(2)), "the partition silence must raise PROBLEM");
        let cleared: Vec<EndpointAddr> = w
            .upcalls(ep(1))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::ProblemCleared { member } => Some(*member),
                _ => None,
            })
            .collect();
        assert!(cleared.contains(&ep(2)), "heal must rescind the suspicion");
        let fd: &Fd = w.stack(ep(1)).unwrap().focus_as("FD").unwrap();
        assert!(fd.rescissions >= 1);
    }

    #[test]
    fn adaptive_timeout_tracks_interarrival_ewma() {
        let mut fast = Fd::new(FdConfig {
            min_timeout: Duration::from_millis(1),
            jitter: Duration::ZERO,
            ..FdConfig::default()
        });
        let peer_fast = PeerFd {
            last: SimTime::ZERO,
            ewma_ns: Some(Duration::from_millis(10).as_nanos() as f64),
            suspected: false,
        };
        let peer_slow = PeerFd {
            last: SimTime::ZERO,
            ewma_ns: Some(Duration::from_millis(40).as_nanos() as f64),
            suspected: false,
        };
        let t_fast = fast.cfg.timeout_for(&peer_fast);
        let t_slow = fast.cfg.timeout_for(&peer_slow);
        assert!(t_slow > t_fast, "slower arrivals must mean a longer horizon");
        assert_eq!(t_fast, Duration::from_millis(30), "margin × EWMA");
        // The floor binds when the EWMA is tiny.
        fast.cfg.min_timeout = Duration::from_millis(500);
        assert_eq!(fast.cfg.timeout_for(&peer_fast), Duration::from_millis(500));
    }

    #[test]
    fn heartbeats_are_invisible_above_fd() {
        let mut w = fd_world(2, 4, FdConfig::default());
        w.run_for(Duration::from_secs(1));
        assert!(
            w.delivered_casts(ep(1)).is_empty() && w.delivered_casts(ep(2)).is_empty(),
            "heartbeat traffic must never surface as application casts"
        );
        // Data still flows, stamped and opened through the FD header.
        w.cast_bytes(ep(1), &b"payload"[..]);
        w.run_for(Duration::from_millis(50));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"payload");
    }
}
