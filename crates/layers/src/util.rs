//! The Figure 1 protocol-type catalogue: small single-purpose layers.
//!
//! The paper's table of "common protocol types" lists checksumming,
//! signing, encryption, compression, flow control, tracing, logging,
//! accounting and more; Horus shipped "a library of about thirty different
//! protocols, each providing a particular communication feature".  This
//! module supplies those building blocks.  Each is deliberately tiny —
//! the LEGO-block premise is that features compose by stacking, not by
//! widening any one protocol.
//!
//! Security-flavoured layers ([`Sign`], [`Encrypt`]) use toy keyed
//! constructions (FNV-based MAC, XOR keystream).  They exercise the same
//! code paths, header budgets, and composition behaviour as real
//! cryptography — which is what the framework reproduction needs — but
//! offer **no actual security**; see DESIGN.md's substitution table.

use bytes::Bytes;
use horus_core::prelude::*;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

// ---------------------------------------------------------------------
// NOP
// ---------------------------------------------------------------------

/// A do-nothing pass-through layer; the unit of layer-crossing cost in the
/// §10 benchmarks, and a skip-optimization target (it declares itself
/// passive).
#[derive(Debug, Default, Clone)]
pub struct Nop;

impl Layer for Nop {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NOP"
    }
    fn is_passive(&self) -> bool {
        true
    }
}

/// A do-nothing layer that *hides* its passivity, so the runtime cannot
/// skip it: the §10 problem-1 baseline.
#[derive(Debug, Default, Clone)]
pub struct NopOpaque;

impl Layer for NopOpaque {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NOP_OPAQUE"
    }
}

// ---------------------------------------------------------------------
// CHKSUM
// ---------------------------------------------------------------------

fn fnv(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

const CHKSUM_FIELDS: &[FieldSpec] = &[FieldSpec::new("sum", 32)];

/// Garbling detection (§2's first example layer): a 32-bit checksum over
/// the body, verified on delivery.
#[derive(Debug, Default, Clone)]
pub struct Chksum {
    /// Messages dropped for checksum mismatch.
    pub dropped: u64,
}

impl Layer for Chksum {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "CHKSUM"
    }
    fn header_fields(&self) -> &'static [FieldSpec] {
        CHKSUM_FIELDS
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                let sum = fnv(msg.body(), 0) & 0xffff_ffff;
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, sum);
                ctx.down(Down::Cast(msg));
            }
            Down::Send { dests, mut msg } => {
                let sum = fnv(msg.body(), 0) & 0xffff_ffff;
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, sum);
                ctx.down(Down::Send { dests, msg });
            }
            other => ctx.down(other),
        }
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                if ctx.get(&msg, 0) != fnv(msg.body(), 0) & 0xffff_ffff {
                    self.dropped += 1;
                    return;
                }
                ctx.up(Up::Cast { src, msg });
            }
            Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                if ctx.get(&msg, 0) != fnv(msg.body(), 0) & 0xffff_ffff {
                    self.dropped += 1;
                    return;
                }
                ctx.up(Up::Send { src, msg });
            }
            other => ctx.up(other),
        }
    }
    fn dump(&self) -> String {
        format!("dropped={}", self.dropped)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// SIGN
// ---------------------------------------------------------------------

const SIGN_FIELDS: &[FieldSpec] = &[FieldSpec::new("mac", 64)];

/// The "cryptographic checksum" of §2: a keyed MAC making impersonation by
/// non-key-holders (in the toy model) detectable.
#[derive(Debug, Clone)]
pub struct Sign {
    key: u64,
    /// Messages rejected for MAC mismatch.
    pub rejected: u64,
}

impl Sign {
    /// Creates a signing layer with a shared group key.
    pub fn new(key: u64) -> Self {
        Sign { key, rejected: 0 }
    }
}

impl Layer for Sign {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "SIGN"
    }
    fn header_fields(&self) -> &'static [FieldSpec] {
        SIGN_FIELDS
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                let mac = fnv(msg.body(), self.key);
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, mac);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                if ctx.get(&msg, 0) != fnv(msg.body(), self.key) {
                    self.rejected += 1;
                    return;
                }
                ctx.up(Up::Cast { src, msg });
            }
            other => ctx.up(other),
        }
    }
    fn dump(&self) -> String {
        format!("rejected={}", self.rejected)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// ENCRYPT
// ---------------------------------------------------------------------

const ENCRYPT_FIELDS: &[FieldSpec] = &[FieldSpec::new("nonce", 32)];

/// Private communication (Figure 1): a toy XOR keystream over the body.
#[derive(Debug, Clone)]
pub struct Encrypt {
    key: u64,
    nonce: u32,
}

impl Encrypt {
    /// Creates an encryption layer with a shared group key.
    pub fn new(key: u64) -> Self {
        Encrypt { key, nonce: 0 }
    }

    fn apply(&self, nonce: u32, body: &[u8]) -> Bytes {
        let mut out = Vec::with_capacity(body.len());
        let mut state = fnv(&nonce.to_le_bytes(), self.key);
        for (i, &b) in body.iter().enumerate() {
            if i.is_multiple_of(8) {
                state = state.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
            }
            out.push(b ^ (state >> ((i % 8) * 8)) as u8);
        }
        Bytes::from(out)
    }
}

impl Layer for Encrypt {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "ENCRYPT"
    }
    fn header_fields(&self) -> &'static [FieldSpec] {
        ENCRYPT_FIELDS
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                self.nonce = self.nonce.wrapping_add(1);
                let body = self.apply(self.nonce, msg.body());
                msg.set_body(body);
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, self.nonce as u64);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let nonce = ctx.get(&msg, 0) as u32;
                let body = self.apply(nonce, msg.body());
                msg.set_body(body);
                ctx.up(Up::Cast { src, msg });
            }
            other => ctx.up(other),
        }
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// COMPRESS
// ---------------------------------------------------------------------

const COMPRESS_FIELDS: &[FieldSpec] = &[FieldSpec::new("packed", 1)];

/// Bandwidth improvement (Figure 1): run-length encoding, applied only
/// when it actually shrinks the body.
#[derive(Debug, Default, Clone)]
pub struct Compress {
    /// Bodies that were worth compressing.
    pub packed: u64,
    /// Bytes saved in total.
    pub saved: u64,
}

fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(b);
        i += run;
    }
    out
}

fn rle_decode(data: &[u8]) -> Option<Vec<u8>> {
    if !data.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::new();
    for pair in data.chunks(2) {
        let (run, b) = (pair[0] as usize, pair[1]);
        if run == 0 {
            return None;
        }
        out.extend(std::iter::repeat_n(b, run));
    }
    Some(out)
}

impl Layer for Compress {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "COMPRESS"
    }
    fn header_fields(&self) -> &'static [FieldSpec] {
        COMPRESS_FIELDS
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                let encoded = rle_encode(msg.body());
                let packed = encoded.len() < msg.body().len();
                if packed {
                    self.packed += 1;
                    self.saved += (msg.body().len() - encoded.len()) as u64;
                    msg.set_body(encoded);
                }
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, packed as u64);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                if ctx.get(&msg, 0) == 1 {
                    match rle_decode(msg.body()) {
                        Some(body) => {
                            msg.set_body(body);
                        }
                        None => return, // corrupt
                    }
                }
                ctx.up(Up::Cast { src, msg });
            }
            other => ctx.up(other),
        }
    }
    fn dump(&self) -> String {
        format!("packed={} saved={}B", self.packed, self.saved)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// FLOW
// ---------------------------------------------------------------------

const FLOW_REFILL: u64 = 0;

/// Congestion prevention (Figure 1): a token-bucket rate limiter on
/// outgoing casts.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Casts allowed per refill period.
    rate: u32,
    period: Duration,
    tokens: u32,
    queue: VecDeque<Message>,
    /// Longest queue observed.
    pub max_queue: usize,
}

impl Flow {
    /// Creates a FLOW layer allowing `rate` casts per `period`.
    pub fn new(rate: u32, period: Duration) -> Self {
        Flow { rate, period, tokens: rate, queue: VecDeque::new(), max_queue: 0 }
    }
}

impl Default for Flow {
    fn default() -> Self {
        Flow::new(100, Duration::from_millis(10))
    }
}

impl Layer for Flow {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "FLOW"
    }
    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        ctx.set_timer(self.period, FLOW_REFILL);
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.tokens > 0 && self.queue.is_empty() {
                    self.tokens -= 1;
                    ctx.down(Down::Cast(msg));
                } else {
                    self.queue.push_back(msg);
                    self.max_queue = self.max_queue.max(self.queue.len());
                }
            }
            other => ctx.down(other),
        }
    }
    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == FLOW_REFILL {
            self.tokens = self.rate;
            while self.tokens > 0 {
                match self.queue.pop_front() {
                    Some(msg) => {
                        self.tokens -= 1;
                        ctx.down(Down::Cast(msg));
                    }
                    None => break,
                }
            }
            ctx.set_timer(self.period, FLOW_REFILL);
        }
    }
    fn dump(&self) -> String {
        format!("tokens={} queued={} max_queue={}", self.tokens, self.queue.len(), self.max_queue)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// PRIO
// ---------------------------------------------------------------------

const PRIO_FLUSH: u64 = 0;

/// Prioritized effort delivery (P2): casts accumulate briefly and leave in
/// priority order (highest [`horus_core::message::MessageMeta::priority`]
/// first).
#[derive(Debug, Clone)]
pub struct Prio {
    window: Duration,
    queue: Vec<Message>,
    reordered: u64,
}

impl Prio {
    /// Creates a PRIO layer batching casts over `window`.
    pub fn new(window: Duration) -> Self {
        Prio { window, queue: Vec::new(), reordered: 0 }
    }
}

impl Default for Prio {
    fn default() -> Self {
        Prio::new(Duration::from_millis(1))
    }
}

impl Layer for Prio {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "PRIO"
    }
    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        ctx.set_timer(self.window, PRIO_FLUSH);
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => self.queue.push(msg),
            other => ctx.down(other),
        }
    }
    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == PRIO_FLUSH {
            // Stable sort: equal priorities keep arrival order.
            self.queue.sort_by_key(|m| std::cmp::Reverse(m.meta.priority));
            for msg in self.queue.drain(..) {
                self.reordered += 1;
                ctx.down(Down::Cast(msg));
            }
            ctx.set_timer(self.window, PRIO_FLUSH);
        }
    }
    fn dump(&self) -> String {
        format!("queued={} sent={}", self.queue.len(), self.reordered)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// TRACE
// ---------------------------------------------------------------------

/// Debugging and statistics (Figure 1): counts every event crossing the
/// layer and optionally emits trace records.
#[derive(Debug, Clone)]
pub struct Trace {
    verbose: bool,
    downs: BTreeMap<&'static str, u64>,
    ups: BTreeMap<&'static str, u64>,
}

impl Trace {
    /// Creates a TRACE layer; `verbose` additionally emits a trace record
    /// per event.
    pub fn new(verbose: bool) -> Self {
        Trace { verbose, downs: BTreeMap::new(), ups: BTreeMap::new() }
    }

    /// Event counts observed going down.
    pub fn down_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.downs
    }

    /// Event counts observed going up.
    pub fn up_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.ups
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(false)
    }
}

impl Layer for Trace {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "TRACE"
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        *self.downs.entry(ev.kind()).or_insert(0) += 1;
        if self.verbose {
            ctx.trace(format!("TRACE down {}", ev.kind()));
        }
        ctx.down(ev);
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        *self.ups.entry(ev.kind()).or_insert(0) += 1;
        if self.verbose {
            ctx.trace(format!("TRACE up {}", ev.kind()));
        }
        ctx.up(ev);
    }
    fn dump(&self) -> String {
        format!("down={:?} up={:?}", self.downs, self.ups)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// ACCT
// ---------------------------------------------------------------------

/// Usage accounting (Figure 1): bytes and messages per source.
#[derive(Debug, Default, Clone)]
pub struct Acct {
    by_source: BTreeMap<EndpointAddr, (u64, u64)>,
    sent_msgs: u64,
    sent_bytes: u64,
}

impl Acct {
    /// Creates an ACCT layer.
    pub fn new() -> Self {
        Acct::default()
    }

    /// `(messages, bytes)` received from `src`.
    pub fn usage_of(&self, src: EndpointAddr) -> (u64, u64) {
        self.by_source.get(&src).copied().unwrap_or((0, 0))
    }
}

impl Layer for Acct {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "ACCT"
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        if let Down::Cast(msg) = &ev {
            self.sent_msgs += 1;
            self.sent_bytes += msg.body().len() as u64;
        }
        ctx.down(ev);
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        if let Up::Cast { src, msg } = &ev {
            let e = self.by_source.entry(*src).or_insert((0, 0));
            e.0 += 1;
            e.1 += msg.body().len() as u64;
        }
        ctx.up(ev);
    }
    fn dump(&self) -> String {
        format!("sent={}msg/{}B recv_sources={:?}", self.sent_msgs, self.sent_bytes, self.by_source)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// LOGGER
// ---------------------------------------------------------------------

/// Tolerance of total crash failures (Figure 1): journals every delivered
/// cast, emulating a disk log an operator could replay after a
/// whole-group restart.
#[derive(Debug, Default, Clone)]
pub struct Logger {
    journal: Vec<(EndpointAddr, Bytes)>,
}

impl Logger {
    /// Creates a LOGGER layer.
    pub fn new() -> Self {
        Logger::default()
    }

    /// The journal of `(source, body)` pairs, in delivery order.
    pub fn journal(&self) -> &[(EndpointAddr, Bytes)] {
        &self.journal
    }
}

impl Layer for Logger {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "LOGGER"
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        if let Up::Cast { src, msg } = &ev {
            self.journal.push((*src, msg.body().clone()));
        }
        ctx.up(ev);
    }
    fn dump(&self) -> String {
        format!("journal={} entries", self.journal.len())
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// DROP
// ---------------------------------------------------------------------

/// Fault injection for tests: deterministically drops every `nth`
/// outgoing cast.
#[derive(Debug, Clone)]
pub struct DropEvery {
    nth: u64,
    count: u64,
    /// Casts discarded so far.
    pub dropped: u64,
}

impl DropEvery {
    /// Creates a layer dropping every `nth` cast (n >= 1).
    ///
    /// # Panics
    ///
    /// Panics if `nth` is zero.
    pub fn new(nth: u64) -> Self {
        assert!(nth >= 1, "drop period must be at least 1");
        DropEvery { nth, count: 0, dropped: 0 }
    }
}

impl Layer for DropEvery {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "DROP"
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                self.count += 1;
                if self.count.is_multiple_of(self.nth) {
                    self.dropped += 1;
                } else {
                    ctx.down(Down::Cast(msg));
                }
            }
            other => ctx.down(other),
        }
    }
    fn dump(&self) -> String {
        format!("dropped={}", self.dropped)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// SEQNO
// ---------------------------------------------------------------------

const SEQNO_FIELDS: &[FieldSpec] = &[FieldSpec::new("seq", 32)];

/// The minimal sequence-number layer of §2's class-hierarchy story: stamps
/// a per-sender sequence number and *detects* loss and reordering (PROBLEM
/// upcall) without repairing it — the didactic little sibling of NAK.
#[derive(Debug, Default, Clone)]
pub struct Seqno {
    next: u32,
    expected: BTreeMap<EndpointAddr, u32>,
    /// Gaps or reorderings observed.
    pub anomalies: u64,
}

impl Layer for Seqno {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "SEQNO"
    }
    fn header_fields(&self) -> &'static [FieldSpec] {
        SEQNO_FIELDS
    }
    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                self.next += 1;
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, self.next as u64);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }
    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let seq = ctx.get(&msg, 0) as u32;
                let expected = self.expected.entry(src).or_insert(1);
                if seq != *expected {
                    self.anomalies += 1;
                    ctx.up(Up::Problem { member: src });
                }
                *expected = (*expected).max(seq) + 1;
                ctx.up(Up::Cast { src, msg });
            }
            other => ctx.up(other),
        }
    }
    fn dump(&self) -> String {
        format!("sent={} anomalies={}", self.next, self.anomalies)
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::nak::Nak;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn pair_world(seed: u64, mk: impl Fn() -> Vec<Box<dyn Layer>>, net: NetConfig) -> SimWorld {
        let mut w = SimWorld::new(seed, net);
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i)).extend(mk()).build().unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    #[test]
    fn chksum_catches_garbling_that_slips_past_framing() {
        let mut cfg = NetConfig::reliable();
        cfg.garble = 0.5;
        let mut w = pair_world(1, || vec![Box::new(Chksum::default()), Box::new(Com::new())], cfg);
        for k in 0..40u8 {
            w.cast_bytes(ep(1), vec![k; 32]);
        }
        w.run_for(Duration::from_millis(100));
        // Whatever was delivered is intact.
        for (_, body, _) in w.delivered_casts(ep(2)) {
            assert!(body.iter().all(|&b| b == body[0]));
        }
        let delivered = w.delivered_casts(ep(2)).len();
        let c: &Chksum = w.stack(ep(2)).unwrap().focus_as("CHKSUM").unwrap();
        let frame_drops = w.stack_stats(ep(2)).unwrap().decode_drops
            + w.stack_stats(ep(2)).unwrap().fingerprint_drops;
        assert_eq!(delivered as u64 + c.dropped + frame_drops, 40);
    }

    #[test]
    fn sign_rejects_wrong_key() {
        // Sender signs with key 1, receiver verifies with key 2.
        let mut w = SimWorld::new(2, NetConfig::reliable());
        let s1 = StackBuilder::new(ep(1))
            .push(Box::new(Sign::new(1)))
            .push(Box::new(Com::new()))
            .build()
            .unwrap();
        let s2 = StackBuilder::new(ep(2))
            .push(Box::new(Sign::new(2)))
            .push(Box::new(Com::new()))
            .build()
            .unwrap();
        w.add_endpoint(s1);
        w.add_endpoint(s2);
        w.join(ep(1), GroupAddr::new(1));
        w.join(ep(2), GroupAddr::new(1));
        w.cast_bytes(ep(1), &b"forged?"[..]);
        w.run_for(Duration::from_millis(50));
        assert!(w.delivered_casts(ep(2)).is_empty());
        let s: &Sign = w.stack(ep(2)).unwrap().focus_as("SIGN").unwrap();
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn encrypt_roundtrips_and_hides_plaintext() {
        let key = 0xfeed;
        let mk = move || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Encrypt::new(key)), Box::new(Com::new())]
        };
        let mut w = pair_world(3, mk, NetConfig::reliable());
        w.cast_bytes(ep(1), &b"attack at dawn"[..]);
        w.run_for(Duration::from_millis(50));
        let got = w.delivered_casts(ep(2));
        assert_eq!(&got[0].1[..], b"attack at dawn");
        // Ciphertext on the wire differs from the plaintext.
        let sent = w.stack_stats(ep(1)).unwrap().bytes_sent;
        assert!(sent > 0);
    }

    #[test]
    fn encrypted_bytes_differ_from_plaintext() {
        let e = Encrypt::new(42);
        let ct = e.apply(7, b"aaaaaaaaaaaaaaaa");
        assert_ne!(&ct[..], b"aaaaaaaaaaaaaaaa");
        assert_eq!(&e.apply(7, &ct)[..], b"aaaaaaaaaaaaaaaa");
        // Different nonces give different keystreams.
        assert_ne!(e.apply(8, b"aaaaaaaaaaaaaaaa"), ct);
    }

    #[test]
    fn compress_shrinks_redundant_bodies_only() {
        let mk =
            || -> Vec<Box<dyn Layer>> { vec![Box::new(Compress::default()), Box::new(Com::new())] };
        let mut w = pair_world(4, mk, NetConfig::reliable());
        w.cast_bytes(ep(1), vec![7u8; 400]); // compresses well
                                             // COMPRESS:COM has no FIFO layer, so space the casts beyond the
                                             // network's latency jitter to keep delivery order deterministic.
        w.run_for(Duration::from_millis(5));
        w.cast_bytes(ep(1), (0..=255u8).collect::<Vec<_>>()); // incompressible
        w.run_for(Duration::from_millis(50));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 2);
        assert_eq!(&got[0].1[..], &vec![7u8; 400][..]);
        assert_eq!(&got[1].1[..], &(0..=255u8).collect::<Vec<_>>()[..]);
        let c: &Compress = w.stack(ep(1)).unwrap().focus_as("COMPRESS").unwrap();
        assert_eq!(c.packed, 1);
        assert!(c.saved > 300);
    }

    #[test]
    fn flow_paces_bursts() {
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Flow::new(5, Duration::from_millis(10))), Box::new(Com::new())]
        };
        let mut w = pair_world(5, mk, NetConfig::reliable());
        for k in 0..20u8 {
            w.cast_bytes(ep(1), vec![k]);
        }
        w.run_for(Duration::from_millis(5));
        assert!(w.delivered_casts(ep(2)).len() <= 5, "first period at most 5");
        w.run_for(Duration::from_millis(100));
        assert_eq!(w.delivered_casts(ep(2)).len(), 20, "eventually all");
    }

    #[test]
    fn prio_reorders_within_window() {
        // Zero-jitter network: PRIO orders the *send* sequence; a jittery
        // network could still reorder arrivals.
        let mut cfg = NetConfig::reliable();
        cfg.latency_max = cfg.latency_min;
        let mut w = SimWorld::new(6, cfg);
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(Prio::new(Duration::from_millis(5))))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        // Low priority first, high priority second: high should arrive
        // first.
        let mut low = w.stack(ep(1)).unwrap().new_message(&b"low"[..]);
        low.meta.priority = 0;
        let mut high = w.stack(ep(1)).unwrap().new_message(&b"high"[..]);
        high.meta.priority = 9;
        w.down(ep(1), Down::Cast(low));
        w.down(ep(1), Down::Cast(high));
        w.run_for(Duration::from_millis(50));
        let got: Vec<Vec<u8>> =
            w.delivered_casts(ep(2)).iter().map(|(_, b, _)| b.to_vec()).collect();
        assert_eq!(got, vec![b"high".to_vec(), b"low".to_vec()]);
    }

    #[test]
    fn trace_and_acct_count_events() {
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![
                Box::new(Trace::default()),
                Box::new(Acct::new()),
                Box::new(Nak::default()),
                Box::new(Com::new()),
            ]
        };
        let mut w = pair_world(7, mk, NetConfig::reliable());
        for k in 0..5u8 {
            w.cast_bytes(ep(1), vec![k; 10]);
        }
        w.run_for(Duration::from_millis(100));
        let t: &Trace = w.stack(ep(1)).unwrap().focus_as("TRACE").unwrap();
        assert_eq!(t.down_counts()["cast"], 5);
        let a: &Acct = w.stack(ep(2)).unwrap().focus_as("ACCT").unwrap();
        assert_eq!(a.usage_of(ep(1)), (5, 50));
    }

    #[test]
    fn logger_journals_deliveries() {
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Logger::new()), Box::new(Nak::default()), Box::new(Com::new())]
        };
        let mut w = pair_world(8, mk, NetConfig::reliable());
        w.cast_bytes(ep(1), &b"persist me"[..]);
        w.run_for(Duration::from_millis(100));
        let l: &Logger = w.stack(ep(2)).unwrap().focus_as("LOGGER").unwrap();
        assert_eq!(l.journal().len(), 1);
        assert_eq!(&l.journal()[0].1[..], b"persist me");
    }

    #[test]
    fn drop_layer_injects_deterministic_loss_nak_recovers() {
        // DROP below NAK: every 3rd cast vanishes, NAK must repair.
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Nak::default()), Box::new(DropEvery::new(3)), Box::new(Com::new())]
        };
        let mut w = pair_world(9, mk, NetConfig::reliable());
        for k in 0..12u8 {
            w.cast_bytes(ep(1), vec![k]);
        }
        w.run_for(Duration::from_secs(1));
        let got: Vec<u8> = w.delivered_casts(ep(2)).iter().map(|(_, b, _)| b[0]).collect();
        assert_eq!(got, (0..12).collect::<Vec<u8>>());
        let d: &DropEvery = w.stack(ep(1)).unwrap().focus_as("DROP").unwrap();
        assert!(d.dropped >= 4);
    }

    #[test]
    fn seqno_detects_but_does_not_repair() {
        let mk = || -> Vec<Box<dyn Layer>> {
            vec![Box::new(Seqno::default()), Box::new(DropEvery::new(4)), Box::new(Com::new())]
        };
        let mut w = pair_world(10, mk, NetConfig::reliable());
        for k in 0..8u8 {
            w.cast_bytes(ep(1), vec![k]);
        }
        w.run_for(Duration::from_millis(100));
        let s: &Seqno = w.stack(ep(2)).unwrap().focus_as("SEQNO").unwrap();
        assert!(s.anomalies >= 1, "gaps must be reported");
        assert!(w.delivered_casts(ep(2)).len() < 8, "and not repaired");
        // PROBLEM upcalls surfaced to the application.
        assert!(w
            .upcalls(ep(2))
            .iter()
            .any(|(_, up)| matches!(up, Up::Problem { member } if *member == ep(1))));
    }

    #[test]
    fn nop_is_skippable_opaque_is_not() {
        assert!(Nop.is_passive());
        assert!(!NopOpaque.is_passive());
    }
}
