//! PINWHEEL — rotating-slot stability dissemination (Table 3, §10).
//!
//! §10 names PINWHEEL as the alternative to STABLE that an application may
//! pick when it is "optimal" for its workload — the classic
//! bandwidth/latency trade: STABLE has *every* member gossip its
//! acknowledgement row every period (n rows per period, stability
//! converges in one round-trip), whereas PINWHEEL rotates: each slot,
//! exactly *one* member — like the sweep of a pinwheel — multicasts its
//! row together with its accumulated knowledge of everyone else's rows.
//! Per period the group sends one row instead of n, and stability
//! information needs up to n slots to converge.  Experiment E14 measures
//! exactly this crossover.
//!
//! Interface-compatible with [`crate::stable::Stable`]: per-origin message
//! ids in delivery metadata, `ack`/`stable` downcalls, STABLE upcalls with
//! the matrix.  Provides P14.

use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::time::Duration;

const FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 1), FieldSpec::new("sseq", 32)];

const KIND_DATA: u64 = 0;
const KIND_WHEEL: u64 = 1;

const TIMER_SLOT: u64 = 0;

/// The rotating stability layer.
#[derive(Debug, Clone)]
pub struct Pinwheel {
    auto_ack: bool,
    /// Length of one rotation slot.
    slot: Duration,
    me: Option<EndpointAddr>,
    view: Option<View>,
    my_seq: u64,
    matrix: StabilityMatrix,
    /// Slot counter since view installation.
    slots_elapsed: u64,
    /// Anything in the matrix changed since our last rotation.
    dirty: bool,
    /// Flush in progress: hold casts so sequence stamps match their view.
    flushing: bool,
    held: Vec<Message>,
    /// Matrix rotations multicast so far (the E14 traffic metric).
    pub rows_sent: u64,
    stable_upcalls: u64,
}

impl Default for Pinwheel {
    fn default() -> Self {
        Pinwheel::new(true, Duration::from_millis(20))
    }
}

impl Pinwheel {
    /// Creates a PINWHEEL layer with the given rotation slot length.
    pub fn new(auto_ack: bool, slot: Duration) -> Self {
        Pinwheel {
            auto_ack,
            slot,
            me: None,
            view: None,
            my_seq: 0,
            matrix: StabilityMatrix::default(),
            slots_elapsed: 0,
            dirty: false,
            flushing: false,
            held: Vec::new(),
            rows_sent: 0,
            stable_upcalls: 0,
        }
    }

    fn my_slot(&self) -> bool {
        let (Some(view), Some(me)) = (&self.view, self.me) else { return false };
        match view.rank_of(me) {
            Some(rank) => self.slots_elapsed % view.len() as u64 == rank.0 as u64,
            None => false,
        }
    }

    /// Multicasts everything we know: the full matrix as we see it.
    fn spin(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(view) = &self.view else { return };
        let members = view.members();
        let mut w = WireWriter::with_capacity(4 + members.len() * 8 * (1 + members.len()));
        w.put_u32(members.len() as u32);
        for &row in members {
            w.put_addr(row);
            for &col in members {
                w.put_u64(self.matrix.acked(row, col));
            }
        }
        let mut msg = ctx.new_message(w.finish());
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_WHEEL);
        ctx.set(&mut msg, 1, 0);
        self.rows_sent += 1;
        ctx.down(Down::Cast(msg));
    }

    fn local_ack(&mut self, id: MsgId) {
        let me = self.me.expect("init");
        self.matrix.record(me, id.origin, id.seq);
        self.dirty = true;
    }

    fn stamp_and_send(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        self.my_seq += 1;
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_DATA);
        ctx.set(&mut msg, 1, self.my_seq);
        ctx.down(Down::Cast(msg));
    }
}

impl Layer for Pinwheel {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "PINWHEEL"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        ctx.set_timer(self.slot, TIMER_SLOT);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.flushing {
                    self.held.push(msg);
                } else {
                    self.stamp_and_send(msg, ctx);
                }
            }
            Down::Ack(id) | Down::Stable(id) => self.local_ack(id),
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                match ctx.get(&msg, 0) {
                    KIND_DATA => {
                        let id = MsgId { origin: src, seq: ctx.get(&msg, 1) };
                        msg.meta.msg_id = Some(id);
                        if self.auto_ack {
                            self.local_ack(id);
                        }
                        ctx.up(Up::Cast { src, msg });
                    }
                    KIND_WHEEL => {
                        let Some(view) = self.view.clone() else { return };
                        let mut r = WireReader::new(msg.body());
                        let Ok(n) = r.get_u32() else { return };
                        if n as usize != view.len() {
                            return; // stale rotation from another view
                        }
                        let before = self.matrix.clone();
                        for _ in 0..n {
                            let Ok(row) = r.get_addr() else { return };
                            for &col in view.members() {
                                let Ok(v) = r.get_u64() else { return };
                                self.matrix.record(row, col, v);
                            }
                        }
                        if self.matrix != before {
                            self.dirty = true;
                        }
                        self.stable_upcalls += 1;
                        ctx.up(Up::Stable(self.matrix.clone()));
                    }
                    _ => {}
                }
            }
            Up::View(view) => {
                self.matrix = StabilityMatrix::new(view.members().to_vec());
                self.my_seq = 0;
                self.slots_elapsed = 0;
                self.dirty = false;
                self.flushing = false;
                self.view = Some(view.clone());
                ctx.up(Up::View(view));
                let held: Vec<Message> = std::mem::take(&mut self.held);
                for msg in held {
                    self.stamp_and_send(msg, ctx);
                }
            }
            Up::Flush { failed } => {
                self.flushing = true;
                ctx.up(Up::Flush { failed });
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == TIMER_SLOT {
            if self.my_slot() && self.dirty {
                self.dirty = false;
                self.spin(ctx);
            }
            self.slots_elapsed += 1;
            ctx.set_timer(self.slot, TIMER_SLOT);
        }
    }

    fn dump(&self) -> String {
        format!(
            "slots={} rows_sent={} stable_upcalls={} seq={}",
            self.slots_elapsed, self.rows_sent, self.stable_upcalls, self.my_seq
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::Nak;
    use crate::stable::Stable;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn pin_stack(i: u64) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Pinwheel::default()))
            .push(Box::new(Mbrship::new(MbrshipConfig::default())))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::default()))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn joined(n: u64, seed: u64) -> SimWorld {
        let mut w = SimWorld::new(seed, NetConfig::reliable());
        for i in 1..=n {
            w.add_endpoint(pin_stack(i));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=n {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(1));
        w
    }

    #[test]
    fn rotation_converges_to_stability() {
        let mut w = joined(4, 1);
        w.cast_bytes(ep(2), &b"m"[..]);
        w.run_for(Duration::from_secs(1));
        let m = w
            .upcalls(ep(2))
            .iter()
            .rev()
            .find_map(|(_, up)| match up {
                Up::Stable(m) => Some(m.clone()),
                _ => None,
            })
            .expect("stability reached the sender");
        assert!(m.is_stable(ep(2), 1), "{m:?}");
    }

    #[test]
    fn pinwheel_sends_fewer_rows_than_stable() {
        // Same duration, same slot/period, same workload: PINWHEEL's
        // rotation sends ~1/n of STABLE's row traffic.
        let run_pin = || {
            let mut w = joined(4, 7);
            let t = w.now();
            for k in 0..100u64 {
                w.cast_bytes_at(t + Duration::from_millis(10 * k), ep(1), vec![k as u8]);
            }
            w.run_for(Duration::from_secs(2));
            (1..=4u64)
                .map(|i| {
                    let p: &Pinwheel = w.stack(ep(i)).unwrap().focus_as("PINWHEEL").unwrap();
                    p.rows_sent
                })
                .sum::<u64>()
        };
        let run_stable = || {
            let mut w = SimWorld::new(7, NetConfig::reliable());
            for i in 1..=4u64 {
                let s = StackBuilder::new(ep(i))
                    .push(Box::new(Stable::default()))
                    .push(Box::new(Mbrship::new(MbrshipConfig::default())))
                    .push(Box::new(Frag::default()))
                    .push(Box::new(Nak::default()))
                    .push(Box::new(Com::promiscuous()))
                    .build()
                    .unwrap();
                w.add_endpoint(s);
                w.join(ep(i), GroupAddr::new(1));
            }
            for i in 2..=4 {
                w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
            }
            w.run_for(Duration::from_secs(1));
            let t = w.now();
            for k in 0..100u64 {
                w.cast_bytes_at(t + Duration::from_millis(10 * k), ep(1), vec![k as u8]);
            }
            w.run_for(Duration::from_secs(2));
            (1..=4u64)
                .map(|i| {
                    let s: &Stable = w.stack(ep(i)).unwrap().focus_as("STABLE").unwrap();
                    s.rows_sent
                })
                .sum::<u64>()
        };
        let pin_rows = run_pin();
        let stable_rows = run_stable();
        assert!(
            pin_rows < stable_rows,
            "pinwheel rows {pin_rows} should undercut stable rows {stable_rows}"
        );
    }

    #[test]
    fn ids_in_meta_match_stable_layer_contract() {
        let mut w = joined(2, 3);
        w.cast_bytes(ep(1), &b"z"[..]);
        w.run_for(Duration::from_millis(300));
        let id = w
            .upcalls(ep(2))
            .iter()
            .find_map(|(_, up)| match up {
                Up::Cast { msg, .. } => msg.meta.msg_id,
                _ => None,
            })
            .expect("id attached");
        assert_eq!(id, MsgId { origin: ep(1), seq: 1 });
    }
}
