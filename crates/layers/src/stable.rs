//! STABLE — the application-defined stability layer (§9, the end-to-end
//! mechanism).
//!
//! "A message is called stable if it has been processed by all its
//! surviving destination processes. [...] Horus provides a downcall,
//! `horus_ack(m)`, with which the application process informs Horus when it
//! has processed the message m.  Eventually, this information propagates
//! back to the sender of the message, and onwards to other receivers of
//! the message.  It is reported using a STABLE upcall \[containing\] a
//! so-called stability matrix."
//!
//! The layer numbers every cast per origin, attaches the resulting
//! [`MsgId`] to deliveries (`msg.meta.msg_id`), and gossips per-member
//! acknowledgement rows on a timer.  What "processed" means is entirely up
//! to the application — "displayed to a user, logged to disk, safe to
//! delete" — which is exactly the end-to-end point: with auto-ack
//! ([`Stable::new`]) the layer degrades to receipt stability, which is
//! what the SAFE delivery layer builds on.
//!
//! Requires P3, P4, P8, P9, P15 below; provides P14 (stability
//! information).

use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::time::Duration;

const FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 1), FieldSpec::new("sseq", 32)];

const KIND_DATA: u64 = 0;
const KIND_ROW: u64 = 1;

const TIMER_TICK: u64 = 0;

/// The eager stability-gossip layer.
#[derive(Debug, Clone)]
pub struct Stable {
    /// Acknowledge on delivery instead of waiting for the `ack` downcall.
    auto_ack: bool,
    /// Gossip period.
    period: Duration,
    me: Option<EndpointAddr>,
    view: Option<View>,
    my_seq: u64,
    matrix: StabilityMatrix,
    /// Our own row changed since the last gossip/upcall.
    dirty: bool,
    /// Flush in progress: hold casts so sequence stamps match their view.
    flushing: bool,
    held: Vec<Message>,
    /// Acknowledgement rows multicast so far (the E14 traffic metric).
    pub rows_sent: u64,
    stable_upcalls: u64,
}

impl Default for Stable {
    fn default() -> Self {
        Stable::new(true, Duration::from_millis(20))
    }
}

impl Stable {
    /// Creates a STABLE layer.  With `auto_ack` the layer acknowledges
    /// messages as soon as they are delivered (receipt stability);
    /// otherwise stability is driven by the application's `ack` downcall.
    pub fn new(auto_ack: bool, period: Duration) -> Self {
        Stable {
            auto_ack,
            period,
            me: None,
            view: None,
            my_seq: 0,
            matrix: StabilityMatrix::default(),
            dirty: false,
            flushing: false,
            held: Vec::new(),
            rows_sent: 0,
            stable_upcalls: 0,
        }
    }

    /// Application-driven variant (stability means whatever the app's
    /// `ack` downcall means).
    pub fn app_driven() -> Self {
        Stable::new(false, Duration::from_millis(20))
    }

    fn gossip_row(&mut self, ctx: &mut LayerCtx<'_>) {
        let Some(view) = &self.view else { return };
        let me = self.me.expect("init");
        let entries: Vec<(EndpointAddr, u64)> =
            view.members().iter().map(|&m| (m, self.matrix.acked(me, m))).collect();
        let mut w = WireWriter::with_capacity(4 + 16 * entries.len());
        w.put_u32(entries.len() as u32);
        for (m, v) in entries {
            w.put_addr(m);
            w.put_u64(v);
        }
        let mut msg = ctx.new_message(w.finish());
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_ROW);
        ctx.set(&mut msg, 1, 0);
        self.rows_sent += 1;
        ctx.down(Down::Cast(msg));
    }

    fn report(&mut self, ctx: &mut LayerCtx<'_>) {
        self.stable_upcalls += 1;
        ctx.up(Up::Stable(self.matrix.clone()));
    }

    fn local_ack(&mut self, id: MsgId) {
        let me = self.me.expect("init");
        self.matrix.record(me, id.origin, id.seq);
        self.dirty = true;
    }

    fn stamp_and_send(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        self.my_seq += 1;
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_DATA);
        ctx.set(&mut msg, 1, self.my_seq);
        ctx.down(Down::Cast(msg));
    }
}

impl Layer for Stable {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "STABLE"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        ctx.set_timer(self.period, TIMER_TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.flushing {
                    self.held.push(msg);
                } else {
                    self.stamp_and_send(msg, ctx);
                }
            }
            Down::Ack(id) | Down::Stable(id) => {
                // `ack`: the application processed the message.  `stable`:
                // the application asserts stability it learned out of band;
                // we treat both as local-row updates that gossip outward.
                self.local_ack(id);
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                match ctx.get(&msg, 0) {
                    KIND_DATA => {
                        let id = MsgId { origin: src, seq: ctx.get(&msg, 1) };
                        msg.meta.msg_id = Some(id);
                        if self.auto_ack {
                            self.local_ack(id);
                        }
                        ctx.up(Up::Cast { src, msg });
                    }
                    KIND_ROW => {
                        let mut r = WireReader::new(msg.body());
                        let Ok(n) = r.get_u32() else { return };
                        for _ in 0..n {
                            let (Ok(origin), Ok(v)) = (r.get_addr(), r.get_u64()) else {
                                return;
                            };
                            self.matrix.record(src, origin, v);
                        }
                        self.report(ctx);
                    }
                    _ => {}
                }
            }
            Up::View(view) => {
                self.matrix = StabilityMatrix::new(view.members().to_vec());
                self.my_seq = 0;
                self.dirty = false;
                self.flushing = false;
                self.view = Some(view.clone());
                ctx.up(Up::View(view));
                let held: Vec<Message> = std::mem::take(&mut self.held);
                for msg in held {
                    self.stamp_and_send(msg, ctx);
                }
            }
            Up::Flush { failed } => {
                self.flushing = true;
                ctx.up(Up::Flush { failed });
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token == TIMER_TICK {
            if self.dirty {
                self.dirty = false;
                self.gossip_row(ctx);
            }
            ctx.set_timer(self.period, TIMER_TICK);
        }
    }

    fn dump(&self) -> String {
        format!(
            "auto_ack={} seq={} rows_sent={} stable_upcalls={}",
            self.auto_ack, self.my_seq, self.rows_sent, self.stable_upcalls
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::Nak;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn stack(i: u64, stable: Stable) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(stable))
            .push(Box::new(Mbrship::new(MbrshipConfig::default())))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::default()))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn joined(n: u64, seed: u64, mk: impl Fn() -> Stable) -> SimWorld {
        let mut w = SimWorld::new(seed, NetConfig::reliable());
        for i in 1..=n {
            w.add_endpoint(stack(i, mk()));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=n {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(1));
        w
    }

    fn last_matrix(w: &SimWorld, e: EndpointAddr) -> Option<StabilityMatrix> {
        w.upcalls(e).iter().rev().find_map(|(_, up)| match up {
            Up::Stable(m) => Some(m.clone()),
            _ => None,
        })
    }

    #[test]
    fn receipt_stability_propagates_to_sender() {
        let mut w = joined(3, 1, Stable::default);
        w.cast_bytes(ep(1), &b"payload"[..]);
        w.run_for(Duration::from_millis(500));
        let m = last_matrix(&w, ep(1)).expect("STABLE upcall at sender");
        assert!(m.is_stable(ep(1), 1), "message 1 of ep1 should be stable: {m:?}");
        assert_eq!(m.stable_horizon(ep(1)), 1);
    }

    #[test]
    fn app_driven_stability_waits_for_ack() {
        let mut w = joined(2, 2, Stable::app_driven);
        w.cast_bytes(ep(1), &b"m"[..]);
        w.run_for(Duration::from_millis(300));
        // Nobody acked: not stable anywhere.
        if let Some(m) = last_matrix(&w, ep(1)) {
            assert!(!m.is_stable(ep(1), 1));
        }
        // Both receivers ack (the id arrives in delivery metadata).
        for i in 1..=2 {
            let id = w
                .upcalls(ep(i))
                .iter()
                .find_map(|(_, up)| match up {
                    Up::Cast { msg, .. } => msg.meta.msg_id,
                    _ => None,
                })
                .expect("delivered with id");
            w.down(ep(i), Down::Ack(id));
        }
        w.run_for(Duration::from_millis(500));
        let m = last_matrix(&w, ep(1)).expect("stable upcall after acks");
        assert!(m.is_stable(ep(1), 1), "{m:?}");
    }

    #[test]
    fn delivery_meta_carries_msg_id() {
        let mut w = joined(2, 3, Stable::default);
        w.cast_bytes(ep(1), &b"a"[..]);
        w.cast_bytes(ep(1), &b"b"[..]);
        w.run_for(Duration::from_millis(200));
        let ids: Vec<MsgId> = w
            .upcalls(ep(2))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Cast { msg, .. } => msg.meta.msg_id,
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], MsgId { origin: ep(1), seq: 1 });
        assert_eq!(ids[1], MsgId { origin: ep(1), seq: 2 });
    }

    #[test]
    fn matrix_resets_on_view_change() {
        let mut w = joined(3, 4, Stable::default);
        w.cast_bytes(ep(1), &b"x"[..]);
        w.run_for(Duration::from_millis(300));
        let t = w.now();
        w.crash_at(t, ep(3));
        w.run_for(Duration::from_secs(2));
        w.cast_bytes(ep(1), &b"y"[..]);
        w.run_for(Duration::from_millis(500));
        let m = last_matrix(&w, ep(2)).expect("matrix after view change");
        assert_eq!(m.members().len(), 2, "matrix covers the new view only");
        assert!(m.is_stable(ep(1), 1), "seq numbering restarted in the new view");
    }
}
