//! FRAG and NFRAG — fragmentation and reassembly of large messages (§7).
//!
//! "Typical networks have a limit on the size of messages they can
//! transmit.  When a user of the FRAG layer attempts to send a message that
//! is larger than that maximum size, the FRAG layer splits the message into
//! multiple fragments.  On each fragment the FRAG layer pushes a boolean
//! value that indicates whether it is the last one or not.  The FRAG layer
//! depends on FIFO ordering for reassembly."
//!
//! [`Frag`] is that layer: its header is two bits — the paper's *last* flag
//! plus a *wrapped* flag that keeps small messages on a zero-copy fast path
//! (the paper measures FRAG's overhead at ~50 µs on a Sparc 10 precisely
//! because it is so thin; experiment E9 re-measures ours).  Fragments of a
//! message larger than the threshold carry chunks of the serialized
//! message, and the FIFO guarantee of the layer below makes per-source
//! reassembly a simple accumulation.
//!
//! [`NFrag`] is the Table 3 variant that sits *below* FIFO (directly on
//! COM): it tags fragments with a message id and index so reassembly
//! tolerates reordering, at the price of a bigger header and a reassembly
//! timeout.  Both provide property P12 (large messages).

use bytes::Bytes;
use horus_core::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const FRAG_FIELDS: &[FieldSpec] = &[FieldSpec::new("last", 1), FieldSpec::new("wrapped", 1)];

/// Stream key: per-source, casts and sends reassemble independently.
type StreamKey = (EndpointAddr, bool);

/// The FIFO-dependent fragmentation layer of §7.
#[derive(Debug, Clone)]
pub struct Frag {
    /// Fragment payload size.
    frag_size: usize,
    /// Per-stream partial reassembly buffers.
    partial: BTreeMap<StreamKey, Vec<u8>>,
    fragmented_msgs: u64,
    fragments_sent: u64,
    reassembled: u64,
}

impl Default for Frag {
    fn default() -> Self {
        Frag::new(1024)
    }
}

impl Frag {
    /// Creates a FRAG layer splitting at `frag_size`-byte fragments.
    ///
    /// # Panics
    ///
    /// Panics if `frag_size` is zero.
    pub fn new(frag_size: usize) -> Self {
        assert!(frag_size > 0, "fragment size must be positive");
        Frag {
            frag_size,
            partial: BTreeMap::new(),
            fragmented_msgs: 0,
            fragments_sent: 0,
            reassembled: 0,
        }
    }

    fn send_down(
        &mut self,
        msg: Message,
        dests: Option<Vec<EndpointAddr>>,
        ctx: &mut LayerCtx<'_>,
    ) {
        // Fast path: the whole message (headers so far + body) fits.
        if msg.body().len() <= self.frag_size {
            let mut m = msg;
            ctx.stamp(&mut m);
            ctx.set(&mut m, 0, 1); // last
            ctx.set(&mut m, 1, 0); // not wrapped
            self.pass_down(m, dests, ctx);
            return;
        }
        // Slow path: serialize the message and chunk it.  The chunks are
        // zero-copy slices of one `Bytes` buffer — the paper's "no copying
        // of the data that the message will actually transport".
        self.fragmented_msgs += 1;
        let inner = msg.encode_inner();
        let n = inner.len().div_ceil(self.frag_size);
        for i in 0..n {
            let chunk =
                inner.slice(i * self.frag_size..((i + 1) * self.frag_size).min(inner.len()));
            let mut frag = ctx.new_message(chunk);
            ctx.stamp(&mut frag);
            ctx.set(&mut frag, 0, (i + 1 == n) as u64);
            ctx.set(&mut frag, 1, 1); // wrapped
            self.fragments_sent += 1;
            self.pass_down(frag, dests.clone(), ctx);
        }
    }

    fn pass_down(&self, msg: Message, dests: Option<Vec<EndpointAddr>>, ctx: &mut LayerCtx<'_>) {
        match dests {
            Some(dests) => ctx.down(Down::Send { dests, msg }),
            None => ctx.down(Down::Cast(msg)),
        }
    }

    fn receive(&mut self, src: EndpointAddr, cast: bool, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        if ctx.open(&mut msg).is_err() {
            return;
        }
        let last = ctx.get(&msg, 0) == 1;
        let wrapped = ctx.get(&msg, 1) == 1;
        if !wrapped {
            // Fast path: deliver directly.
            self.pass_up(src, cast, msg, ctx);
            return;
        }
        let key = (src, cast);
        let buf = self.partial.entry(key).or_default();
        buf.extend_from_slice(msg.body());
        if !last {
            return;
        }
        let assembled = self.partial.remove(&key).expect("just inserted");
        match Message::decode_inner(msg.layout().clone(), &assembled) {
            Ok(mut original) => {
                self.reassembled += 1;
                original.meta.src = Some(src);
                self.pass_up(src, cast, original, ctx);
            }
            Err(e) => ctx.trace(format!("FRAG: reassembly decode failed: {e}")),
        }
    }

    fn pass_up(&self, src: EndpointAddr, cast: bool, msg: Message, ctx: &mut LayerCtx<'_>) {
        if cast {
            ctx.up(Up::Cast { src, msg });
        } else {
            ctx.up(Up::Send { src, msg });
        }
    }
}

impl Layer for Frag {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "FRAG"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        FRAG_FIELDS
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => self.send_down(msg, None, ctx),
            Down::Send { dests, msg } => self.send_down(msg, Some(dests), ctx),
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, msg } => self.receive(src, true, msg, ctx),
            Up::Send { src, msg } => self.receive(src, false, msg, ctx),
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "frag_size={} fragmented={} fragments={} reassembled={} partial={}",
            self.frag_size,
            self.fragmented_msgs,
            self.fragments_sent,
            self.reassembled,
            self.partial.len()
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

const NFRAG_FIELDS: &[FieldSpec] = &[
    FieldSpec::new("wrapped", 1),
    FieldSpec::new("msg_id", 16),
    FieldSpec::new("idx", 12),
    FieldSpec::new("count", 12),
];

const NFRAG_GC: u64 = 0;

/// Reorder-tolerant fragmentation (sits below the FIFO layer).
#[derive(Debug, Clone)]
pub struct NFrag {
    frag_size: usize,
    /// Incomplete-reassembly garbage-collection timeout.
    reassembly_timeout: Duration,
    next_id: u16,
    partial: BTreeMap<(StreamKey, u16), PartialMsg>,
    expired: u64,
    reassembled: u64,
}

#[derive(Debug, Clone)]
struct PartialMsg {
    chunks: BTreeMap<u16, Bytes>,
    count: u16,
    started: SimTime,
}

impl Default for NFrag {
    fn default() -> Self {
        NFrag::new(1024, Duration::from_secs(2))
    }
}

impl NFrag {
    /// Creates an NFRAG layer with the given fragment size and reassembly
    /// timeout.
    ///
    /// # Panics
    ///
    /// Panics if `frag_size` is zero.
    pub fn new(frag_size: usize, reassembly_timeout: Duration) -> Self {
        assert!(frag_size > 0, "fragment size must be positive");
        NFrag {
            frag_size,
            reassembly_timeout,
            next_id: 1,
            partial: BTreeMap::new(),
            expired: 0,
            reassembled: 0,
        }
    }

    fn send_down(
        &mut self,
        msg: Message,
        dests: Option<Vec<EndpointAddr>>,
        ctx: &mut LayerCtx<'_>,
    ) {
        if msg.body().len() <= self.frag_size {
            let mut m = msg;
            ctx.stamp(&mut m);
            ctx.set(&mut m, 0, 0);
            self.pass_down(m, dests, ctx);
            return;
        }
        let inner = msg.encode_inner();
        let n = inner.len().div_ceil(self.frag_size);
        assert!(n < 4096, "message too large for NFRAG's 12-bit fragment index");
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        for i in 0..n {
            let chunk =
                inner.slice(i * self.frag_size..((i + 1) * self.frag_size).min(inner.len()));
            let mut frag = ctx.new_message(chunk);
            ctx.stamp(&mut frag);
            ctx.set(&mut frag, 0, 1);
            ctx.set(&mut frag, 1, id as u64);
            ctx.set(&mut frag, 2, i as u64);
            ctx.set(&mut frag, 3, n as u64);
            self.pass_down(frag, dests.clone(), ctx);
        }
    }

    fn pass_down(&self, msg: Message, dests: Option<Vec<EndpointAddr>>, ctx: &mut LayerCtx<'_>) {
        match dests {
            Some(dests) => ctx.down(Down::Send { dests, msg }),
            None => ctx.down(Down::Cast(msg)),
        }
    }

    fn receive(&mut self, src: EndpointAddr, cast: bool, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        if ctx.open(&mut msg).is_err() {
            return;
        }
        if ctx.get(&msg, 0) == 0 {
            if cast {
                ctx.up(Up::Cast { src, msg });
            } else {
                ctx.up(Up::Send { src, msg });
            }
            return;
        }
        let id = ctx.get(&msg, 1) as u16;
        let idx = ctx.get(&msg, 2) as u16;
        let count = ctx.get(&msg, 3) as u16;
        if count == 0 || idx >= count {
            return; // malformed
        }
        let key = ((src, cast), id);
        let now = ctx.now();
        let entry = self.partial.entry(key).or_insert_with(|| PartialMsg {
            chunks: BTreeMap::new(),
            count,
            started: now,
        });
        if entry.count != count {
            return; // inconsistent fragments: drop
        }
        entry.chunks.insert(idx, msg.body().clone());
        if entry.chunks.len() == count as usize {
            let entry = self.partial.remove(&key).expect("just completed");
            let mut assembled = Vec::new();
            for (_, c) in entry.chunks {
                assembled.extend_from_slice(&c);
            }
            match Message::decode_inner(msg.layout().clone(), &assembled) {
                Ok(mut original) => {
                    self.reassembled += 1;
                    original.meta.src = Some(src);
                    if cast {
                        ctx.up(Up::Cast { src, msg: original });
                    } else {
                        ctx.up(Up::Send { src, msg: original });
                    }
                }
                Err(e) => ctx.trace(format!("NFRAG: reassembly decode failed: {e}")),
            }
        }
    }
}

impl Layer for NFrag {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NFRAG"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        NFRAG_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        ctx.set_timer(self.reassembly_timeout, NFRAG_GC);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => self.send_down(msg, None, ctx),
            Down::Send { dests, msg } => self.send_down(msg, Some(dests), ctx),
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, msg } => self.receive(src, true, msg, ctx),
            Up::Send { src, msg } => self.receive(src, false, msg, ctx),
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut LayerCtx<'_>) {
        let now = ctx.now();
        let timeout = self.reassembly_timeout;
        let before = self.partial.len();
        self.partial.retain(|_, p| now.saturating_since(p.started) < timeout);
        self.expired += (before - self.partial.len()) as u64;
        ctx.set_timer(self.reassembly_timeout, NFRAG_GC);
    }

    fn dump(&self) -> String {
        format!(
            "frag_size={} reassembled={} partial={} expired={}",
            self.frag_size,
            self.reassembled,
            self.partial.len(),
            self.expired
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::nak::Nak;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn frag_world(n: u64, frag_size: usize, mtu: usize, seed: u64) -> SimWorld {
        let mut cfg = NetConfig::reliable();
        cfg.mtu = mtu;
        let mut w = SimWorld::new(seed, cfg);
        for i in 1..=n {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(Frag::new(frag_size)))
                .push(Box::new(Nak::default()))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w
    }

    #[test]
    fn small_messages_take_fast_path() {
        let mut w = frag_world(2, 256, 1500, 1);
        w.cast_bytes(ep(1), vec![7u8; 100]);
        w.run_for(Duration::from_millis(50));
        assert_eq!(w.delivered_casts(ep(2)).len(), 1);
        let frag: &Frag = w.stack(ep(1)).unwrap().focus_as("FRAG").unwrap();
        assert_eq!(frag.fragmented_msgs, 0);
    }

    #[test]
    fn large_message_crosses_small_mtu() {
        // 16 KiB body over a 1500-byte MTU: impossible without FRAG.
        let mut w = frag_world(3, 1024, 1500, 2);
        let body: Vec<u8> = (0..16384u32).map(|i| (i % 251) as u8).collect();
        w.cast_bytes(ep(1), body.clone());
        w.run_for(Duration::from_millis(200));
        for i in 1..=3 {
            let got = w.delivered_casts(ep(i));
            assert_eq!(got.len(), 1, "endpoint {i}");
            assert_eq!(&got[0].1[..], &body[..], "endpoint {i} body intact");
        }
        let frag: &Frag = w.stack(ep(1)).unwrap().focus_as("FRAG").unwrap();
        assert!(frag.fragments_sent >= 16);
    }

    #[test]
    fn without_frag_large_messages_die_at_the_mtu() {
        let mut cfg = NetConfig::reliable();
        cfg.mtu = 1500;
        let mut w = SimWorld::new(3, cfg);
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(Nak::default()))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w.cast_bytes(ep(1), vec![0u8; 4096]);
        w.run_for(Duration::from_millis(100));
        assert!(w.delivered_casts(ep(2)).is_empty());
        assert!(w.net_stats().dropped_mtu >= 1);
    }

    #[test]
    fn fragmentation_survives_loss_via_nak_below() {
        for seed in 1..=3 {
            let mut cfg = NetConfig::lossy(0.2);
            cfg.mtu = 1500;
            let mut w = SimWorld::new(seed, cfg);
            for i in 1..=2 {
                let s = StackBuilder::new(ep(i))
                    .push(Box::new(Frag::new(1024)))
                    .push(Box::new(Nak::default()))
                    .push(Box::new(Com::new()))
                    .build()
                    .unwrap();
                w.add_endpoint(s);
                w.join(ep(i), GroupAddr::new(1));
            }
            let body: Vec<u8> = (0..8000u32).map(|i| (i % 199) as u8).collect();
            w.cast_bytes(ep(1), body.clone());
            w.run_for(Duration::from_secs(3));
            let got = w.delivered_casts(ep(2));
            assert_eq!(got.len(), 1, "seed {seed}");
            assert_eq!(&got[0].1[..], &body[..]);
        }
    }

    #[test]
    fn interleaved_senders_reassemble_independently() {
        let mut w = frag_world(3, 512, 1500, 5);
        let body1: Vec<u8> = vec![1u8; 3000];
        let body2: Vec<u8> = vec![2u8; 3000];
        w.cast_bytes(ep(1), body1.clone());
        w.cast_bytes(ep(2), body2.clone());
        w.run_for(Duration::from_millis(200));
        let got = w.delivered_casts(ep(3));
        assert_eq!(got.len(), 2);
        let mut bodies: Vec<Vec<u8>> = got.iter().map(|(_, b, _)| b.to_vec()).collect();
        bodies.sort();
        assert_eq!(bodies, vec![body1, body2]);
    }

    #[test]
    fn unicast_sends_fragment_too() {
        let mut w = frag_world(2, 512, 1500, 6);
        let body = vec![9u8; 2500];
        let msg = w.stack(ep(1)).unwrap().new_message(body.clone());
        w.down(ep(1), Down::Send { dests: vec![ep(2)], msg });
        w.run_for(Duration::from_millis(100));
        let sends: Vec<Vec<u8>> = w
            .upcalls(ep(2))
            .iter()
            .filter_map(|(_, up)| match up {
                Up::Send { msg, .. } => Some(msg.body().to_vec()),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![body]);
    }

    #[test]
    fn nfrag_reassembles_out_of_order() {
        // NFRAG directly over COM: network jitter reorders fragments.
        let mut cfg = NetConfig::reliable();
        cfg.latency_min = Duration::from_micros(10);
        cfg.latency_max = Duration::from_millis(5); // heavy jitter
        let mut w = SimWorld::new(7, cfg);
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(NFrag::default()))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        let body: Vec<u8> = (0..10_000u32).map(|i| (i % 233) as u8).collect();
        w.cast_bytes(ep(1), body.clone());
        w.run_for(Duration::from_millis(500));
        let got = w.delivered_casts(ep(2));
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], &body[..]);
    }

    #[test]
    fn nfrag_times_out_incomplete_reassembly() {
        let mut cfg = NetConfig::reliable();
        cfg.loss = 0.9; // most fragments die; NFRAG has no retransmission
        let mut w = SimWorld::new(8, cfg);
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(NFrag::new(512, Duration::from_millis(100))))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        w.cast_bytes(ep(1), vec![1u8; 5000]);
        w.run_for(Duration::from_secs(2));
        assert!(w.delivered_casts(ep(2)).is_empty());
        let nfrag: &NFrag = w.stack(ep(2)).unwrap().focus_as("NFRAG").unwrap();
        assert_eq!(nfrag.partial.len(), 0, "partial buffers must be GCed");
    }
}
