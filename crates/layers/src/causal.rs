//! ORDER(causal) — vector-timestamp causal delivery — and TS, the causal
//! timestamp provider (Table 3, and the asynchronous-pipeline argument of
//! §9).
//!
//! §9 motivates causal order with the display-server example: once an
//! application is "composed of multiple processes that communicate among
//! themselves", the FIFO ordering property generalizes to "reliable
//! causally ordered message delivery", and asynchronous (non-blocking)
//! communication stays safe.
//!
//! [`Causal`] implements the classic vector-clock delivery rule over a
//! virtually synchronous view: a message from member *s* with timestamp
//! *vt* is delivered once `vt[s] == VT[s]+1` and `vt[j] <= VT[j]` for all
//! other members.  Virtual synchrony below makes the view boundary a clean
//! cut: at a VIEW upcall every pending message is deliverable, the buffer
//! drains, and the clocks reset.
//!
//! [`Ts`] is the lightweight sibling: it stamps (and exposes) a Lamport
//! timestamp without delaying anything — property P13 (causal timestamps)
//! alone, for applications that want to order events themselves.
//!
//! `Causal` requires P3, P8, P9, P15 below; provides P5 (causal delivery)
//! and P13.  `Ts` requires P3; provides P13.

use horus_core::prelude::*;
use std::collections::BTreeMap;

/// CAUSAL supports views of at most this many members (the vector
/// timestamp travels in the message header).
pub const MAX_CAUSAL_MEMBERS: usize = 16;

const VT_BITS: u32 = 20;

const CAUSAL_FIELDS: &[FieldSpec] = &[
    FieldSpec::new("sender", 5),
    FieldSpec::new("vt0", VT_BITS),
    FieldSpec::new("vt1", VT_BITS),
    FieldSpec::new("vt2", VT_BITS),
    FieldSpec::new("vt3", VT_BITS),
    FieldSpec::new("vt4", VT_BITS),
    FieldSpec::new("vt5", VT_BITS),
    FieldSpec::new("vt6", VT_BITS),
    FieldSpec::new("vt7", VT_BITS),
    FieldSpec::new("vt8", VT_BITS),
    FieldSpec::new("vt9", VT_BITS),
    FieldSpec::new("vt10", VT_BITS),
    FieldSpec::new("vt11", VT_BITS),
    FieldSpec::new("vt12", VT_BITS),
    FieldSpec::new("vt13", VT_BITS),
    FieldSpec::new("vt14", VT_BITS),
    FieldSpec::new("vt15", VT_BITS),
];

/// The causal ordering layer.
#[derive(Debug, Default, Clone)]
pub struct Causal {
    view: Option<View>,
    /// Our vector clock: deliveries per member rank.
    vt: Vec<u64>,
    /// Casts we have sent in this view (our own row runs ahead of `vt`
    /// until the loopback copies come back).
    my_sent: u64,
    /// Messages waiting for their causal past: `(sender rank, vt, msg)`.
    buffer: Vec<(usize, Vec<u64>, EndpointAddr, Message)>,
    /// A flush is in progress: hold outgoing casts so their vector stamps
    /// belong to the view they are sent in.
    flushing: bool,
    held: Vec<Message>,
    delivered: u64,
    delayed: u64,
}

impl Causal {
    /// Creates a CAUSAL layer.
    pub fn new() -> Self {
        Causal::default()
    }

    fn stamp_and_send(&mut self, mut msg: Message, ctx: &mut LayerCtx<'_>) {
        let Some(view) = &self.view else {
            ctx.up(Up::SystemError {
                reason: "CAUSAL: cast before a view was installed".to_string(),
            });
            return;
        };
        let me = ctx.local_addr();
        let Some(rank) = view.rank_of(me) else { return };
        // Our own send is the next event in our row; successive sends
        // before any loopback must still get distinct stamps.
        self.my_sent += 1;
        let mut vt = self.vt.clone();
        vt[rank.0] = self.my_sent;
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, rank.0 as u64);
        for (j, &v) in vt.iter().enumerate() {
            ctx.set(&mut msg, 1 + j, v);
        }
        ctx.down(Down::Cast(msg));
    }

    fn deliverable(&self, sender: usize, vt: &[u64]) -> bool {
        vt.iter().enumerate().all(|(j, &v)| {
            let have = self.vt.get(j).copied().unwrap_or(0);
            if j == sender {
                v == have + 1
            } else {
                v <= have
            }
        })
    }

    fn deliver(&mut self, sender: usize, src: EndpointAddr, msg: Message, ctx: &mut LayerCtx<'_>) {
        self.vt[sender] += 1;
        self.delivered += 1;
        ctx.up(Up::Cast { src, msg });
    }

    /// Re-scans the buffer until no further message is deliverable.
    fn drain(&mut self, ctx: &mut LayerCtx<'_>) {
        loop {
            let idx =
                self.buffer.iter().position(|(sender, vt, _, _)| self.deliverable(*sender, vt));
            match idx {
                Some(i) => {
                    let (sender, _, src, msg) = self.buffer.remove(i);
                    self.deliver(sender, src, msg, ctx);
                }
                None => break,
            }
        }
    }
}

impl Layer for Causal {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "CAUSAL"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        CAUSAL_FIELDS
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(msg) => {
                if self.flushing {
                    self.held.push(msg);
                } else {
                    self.stamp_and_send(msg, ctx);
                }
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let n = self.view.as_ref().map(|v| v.len()).unwrap_or(0);
                let sender = ctx.get(&msg, 0) as usize;
                if sender >= n {
                    return; // malformed or view mismatch
                }
                let vt: Vec<u64> = (0..n).map(|j| ctx.get(&msg, 1 + j)).collect();
                if self.deliverable(sender, &vt) {
                    self.deliver(sender, src, msg, ctx);
                    self.drain(ctx);
                } else {
                    self.delayed += 1;
                    self.buffer.push((sender, vt, src, msg));
                }
            }
            Up::View(view) => {
                // Virtual synchrony: everything sent in the old view has
                // been delivered to us, so the buffer must drain completely.
                self.drain(ctx);
                for (_, _, src, msg) in std::mem::take(&mut self.buffer) {
                    // Defensive: should be unreachable under a VS stack.
                    ctx.trace("CAUSAL: undeliverable residue at view change".to_string());
                    ctx.up(Up::Cast { src, msg });
                }
                assert!(
                    view.len() <= MAX_CAUSAL_MEMBERS,
                    "CAUSAL supports at most {MAX_CAUSAL_MEMBERS} members"
                );
                self.vt = vec![0; view.len()];
                self.my_sent = 0;
                self.flushing = false;
                self.view = Some(view.clone());
                ctx.up(Up::View(view));
                let held: Vec<Message> = std::mem::take(&mut self.held);
                for msg in held {
                    self.stamp_and_send(msg, ctx);
                }
            }
            Up::Flush { failed } => {
                self.flushing = true;
                ctx.up(Up::Flush { failed });
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "vt={:?} delivered={} delayed={} buffered={}",
            self.vt,
            self.delivered,
            self.delayed,
            self.buffer.len()
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

const TS_FIELDS: &[FieldSpec] = &[FieldSpec::new("lamport", 48)];

/// The causal-timestamp layer: stamps a Lamport clock, delays nothing.
#[derive(Debug, Default, Clone)]
pub struct Ts {
    clock: u64,
    /// Last timestamp seen per source (exposed through `dump`).
    last_seen: BTreeMap<EndpointAddr, u64>,
}

impl Ts {
    /// Creates a TS layer.
    pub fn new() -> Self {
        Ts::default()
    }

    /// The current Lamport clock value.
    pub fn clock(&self) -> u64 {
        self.clock
    }
}

impl Layer for Ts {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "TS"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        TS_FIELDS
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                self.clock += 1;
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, self.clock);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let ts = ctx.get(&msg, 0);
                self.clock = self.clock.max(ts);
                self.last_seen.insert(src, ts);
                ctx.up(Up::Cast { src, msg });
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!("clock={} peers={}", self.clock, self.last_seen.len())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::Nak;
    use horus_net::NetConfig;
    use horus_sim::{check_virtual_synchrony, DeliveryLog, SimWorld};
    use std::time::Duration;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn causal_stack(i: u64) -> Stack {
        StackBuilder::new(ep(i))
            .push(Box::new(Causal::new()))
            .push(Box::new(Mbrship::new(MbrshipConfig::default())))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::default()))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn joined_world(n: u64, seed: u64, net: NetConfig) -> SimWorld {
        let mut w = SimWorld::new(seed, net);
        for i in 1..=n {
            w.add_endpoint(causal_stack(i));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=n {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(2));
        for i in 1..=n {
            assert_eq!(w.installed_views(ep(i)).last().unwrap().len(), n as usize);
        }
        w
    }

    /// Checks causality on delivery logs: every delivery's vector
    /// timestamp must be compatible with what preceded it.  We approximate
    /// by reply-chains: a "reply" body names the body it reacts to, and
    /// must never be delivered before it.
    fn replies_in_order(casts: &[(EndpointAddr, bytes::Bytes, SimTime)]) -> bool {
        let mut seen: Vec<Vec<u8>> = Vec::new();
        for (_, body, _) in casts {
            if let Some(rest) = body.strip_prefix(b"re:") {
                if !seen.iter().any(|b| b == rest) {
                    return false;
                }
            }
            seen.push(body.to_vec());
        }
        true
    }

    #[test]
    fn reply_chains_respect_causality() {
        // ep1 casts "m"; ep2, upon delivery, casts "re:m".  With a causal
        // layer no member may see "re:m" before "m", regardless of network
        // jitter.  We drive the reply by scheduling it right after ep2's
        // delivery (the sim is deterministic so we find that time first).
        for seed in 1..=5 {
            let mut w = joined_world(3, 300 + seed, NetConfig::reliable());
            let t = w.now();
            w.cast_bytes_at(t + Duration::from_millis(1), ep(1), &b"m"[..]);
            // Run until ep2 delivers "m", then fire the causally dependent
            // reply immediately.
            let mut stepped = t + Duration::from_millis(1);
            while w.delivered_casts(ep(2)).iter().all(|(_, b, _)| &b[..] != b"m") {
                stepped += Duration::from_micros(50);
                w.run_until(stepped);
            }
            w.cast_bytes(ep(2), &b"re:m"[..]);
            w.run_for(Duration::from_millis(500));
            for i in 1..=3 {
                let casts = w.delivered_casts(ep(i));
                assert_eq!(casts.len(), 2, "seed {seed} endpoint {i}");
                assert!(replies_in_order(&casts), "seed {seed} endpoint {i}: {casts:?}");
            }
        }
    }

    #[test]
    fn concurrent_casts_all_delivered() {
        let mut w = joined_world(3, 11, NetConfig::reliable());
        let t = w.now();
        for k in 1..=10u64 {
            for i in 1..=3 {
                w.cast_bytes_at(
                    t + Duration::from_micros(137 * k),
                    ep(i),
                    format!("m{i}-{k}").into_bytes(),
                );
            }
        }
        w.run_for(Duration::from_secs(1));
        for i in 1..=3 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 30, "endpoint {i}");
        }
        let logs: Vec<DeliveryLog> =
            (1..=3).map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i)))).collect();
        assert!(check_virtual_synchrony(&logs).is_empty());
    }

    #[test]
    fn causal_works_across_view_changes() {
        let mut w = joined_world(3, 12, NetConfig::reliable());
        let t = w.now();
        for k in 1..=6u64 {
            w.cast_bytes_at(t + Duration::from_millis(k), ep(2), format!("a{k}").into_bytes());
        }
        w.crash_at(t + Duration::from_millis(3), ep(3));
        w.run_for(Duration::from_secs(2));
        // Survivors agree and deliver everything from ep2.
        let logs: Vec<DeliveryLog> =
            (1..=2).map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i)))).collect();
        assert!(check_virtual_synchrony(&logs).is_empty());
        let from2 = w.delivered_casts(ep(1)).iter().filter(|(s, _, _)| *s == ep(2)).count();
        assert_eq!(from2, 6);
    }

    #[test]
    fn ts_layer_stamps_monotone_clock() {
        let mut w = SimWorld::new(13, NetConfig::reliable());
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(Ts::new()))
                .push(Box::new(Nak::default()))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        for k in 0..5u8 {
            w.cast_bytes(ep(1), vec![k]);
        }
        w.run_for(Duration::from_millis(100));
        assert_eq!(w.delivered_casts(ep(2)).len(), 5);
        // The receiver's clock advanced past the sender's stamps.
        let ts: &Ts = w.stack(ep(2)).unwrap().focus_as("TS").unwrap();
        assert!(ts.clock() >= 5);
    }
}
