//! ORDER(safe) — stability-gated ("safe") delivery (Table 3).
//!
//! A message is delivered *safely* when the receiver knows every surviving
//! group member already has it: nothing a safe delivery triggers can be
//! lost by a minority of crashes.  SAFE sits above a stability layer
//! (STABLE or PINWHEEL, property P14) and simply holds CAST deliveries
//! back until the stability matrix covers them; per-origin order is
//! preserved (stability horizons are cumulative), and a view change
//! releases everything buffered — virtual synchrony below guarantees that
//! every survivor of the transition holds the same messages, which *is*
//! safety with respect to the new view.
//!
//! Requires P3, P8, P9, P14, P15 below; provides P7 (safe delivery), and
//! preserves causal order when stacked over CAUSAL (P5).

use horus_core::prelude::*;
use std::collections::VecDeque;

/// The safe-delivery layer.  No header fields: it reacts to the metadata
/// and STABLE upcalls of the stability layer beneath it — a zero-byte
/// layer, the paper's "cost ... as low as a few instructions".
#[derive(Debug, Default, Clone)]
pub struct Safe {
    /// Deliveries waiting for their stability horizon.
    held: VecDeque<(EndpointAddr, Message)>,
    delivered: u64,
    max_held: usize,
}

impl Safe {
    /// Creates a SAFE layer.
    pub fn new() -> Self {
        Safe::default()
    }

    fn release(&mut self, matrix: Option<&StabilityMatrix>, ctx: &mut LayerCtx<'_>) {
        // Release the longest stable prefix per queue order; holding back
        // out-of-order releases keeps per-origin FIFO intact.
        while let Some((_, msg)) = self.held.front() {
            let stable = match (matrix, msg.meta.msg_id) {
                (Some(m), Some(id)) => m.is_stable(id.origin, id.seq),
                // Without an id or matrix we cannot prove stability.
                _ => false,
            };
            if !stable {
                break;
            }
            let (src, msg) = self.held.pop_front().expect("front checked");
            self.delivered += 1;
            ctx.up(Up::Cast { src, msg });
        }
    }
}

impl Layer for Safe {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "SAFE"
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, msg } => {
                self.held.push_back((src, msg));
                self.max_held = self.max_held.max(self.held.len());
            }
            Up::Stable(matrix) => {
                self.release(Some(&matrix), ctx);
                ctx.up(Up::Stable(matrix));
            }
            Up::View(view) => {
                // Everything sent in the old view is at every survivor:
                // safe by the virtual-synchrony argument.  Release all.
                for (src, msg) in std::mem::take(&mut self.held) {
                    self.delivered += 1;
                    ctx.up(Up::Cast { src, msg });
                }
                ctx.up(Up::View(view));
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!("held={} max_held={} delivered={}", self.held.len(), self.max_held, self.delivered)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::Nak;
    use crate::stable::Stable;
    use horus_net::NetConfig;
    use horus_sim::SimWorld;
    use std::time::Duration;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn safe_stack(i: u64, app_driven: bool) -> Stack {
        let stable = if app_driven { Stable::app_driven() } else { Stable::default() };
        StackBuilder::new(ep(i))
            .push(Box::new(Safe::new()))
            .push(Box::new(stable))
            .push(Box::new(Mbrship::new(MbrshipConfig::default())))
            .push(Box::new(Frag::default()))
            .push(Box::new(Nak::default()))
            .push(Box::new(Com::promiscuous()))
            .build()
            .unwrap()
    }

    fn joined(n: u64, seed: u64, app_driven: bool) -> SimWorld {
        let mut w = SimWorld::new(seed, NetConfig::reliable());
        for i in 1..=n {
            w.add_endpoint(safe_stack(i, app_driven));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=n {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(1));
        w
    }

    #[test]
    fn delivery_waits_for_receipt_stability() {
        let mut w = joined(3, 1, false);
        w.cast_bytes(ep(1), &b"m"[..]);
        // Shortly after the cast the message has arrived but cannot be
        // proven stable yet (gossip pending): nothing delivered.
        w.run_for(Duration::from_millis(2));
        assert!(w.delivered_casts(ep(2)).is_empty());
        // After gossip rounds it is stable everywhere and gets released.
        w.run_for(Duration::from_secs(1));
        for i in 1..=3 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 1, "endpoint {i}");
        }
    }

    #[test]
    fn app_driven_safety_blocks_until_everyone_acks() {
        let mut w = joined(2, 2, true);
        w.cast_bytes(ep(1), &b"m"[..]);
        w.run_for(Duration::from_millis(500));
        // Nobody acked: SAFE holds the delivery everywhere.
        assert!(w.delivered_casts(ep(1)).is_empty());
        assert!(w.delivered_casts(ep(2)).is_empty());
        // Acks must come from the application — but the app never saw the
        // message (SAFE holds it)!  This is exactly why receipt stability
        // (auto-ack) is the right mode under SAFE; the app-driven mode is
        // for end-to-end uses like §9's display example.  Emulate an
        // out-of-band ack:
        for i in 1..=2 {
            w.down(ep(i), Down::Ack(MsgId { origin: ep(1), seq: 1 }));
        }
        w.run_for(Duration::from_secs(1));
        for i in 1..=2 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 1, "endpoint {i}");
        }
    }

    #[test]
    fn view_change_releases_held_messages() {
        let mut w = joined(3, 3, true); // app-driven: nothing stabilizes
        w.cast_bytes(ep(1), &b"stuck"[..]);
        w.run_for(Duration::from_millis(300));
        assert!(w.delivered_casts(ep(2)).is_empty());
        let t = w.now();
        w.crash_at(t, ep(3));
        w.run_for(Duration::from_secs(2));
        // The flush-induced view change released the held message.
        for i in 1..=2 {
            assert_eq!(w.delivered_casts(ep(i)).len(), 1, "endpoint {i}");
        }
    }

    #[test]
    fn per_origin_fifo_preserved() {
        let mut w = joined(3, 4, false);
        for k in 0..10u8 {
            w.cast_bytes(ep(1), vec![k]);
        }
        w.run_for(Duration::from_secs(2));
        let got: Vec<u8> = w.delivered_casts(ep(2)).iter().map(|(_, b, _)| b[0]).collect();
        assert_eq!(got, (0..10).collect::<Vec<u8>>());
    }
}
