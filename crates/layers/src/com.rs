//! COM — the bottom adapter layer (§7).
//!
//! "The COM layer translates the low-level network interface into the
//! Common Protocol Interface.  If necessary, COM keeps track of the source
//! of messages (by pushing the address of the source endpoint on each
//! outgoing message), and filters out spurious messages from endpoints not
//! in its view."
//!
//! In this reproduction the transport already reports the frame source, so
//! pushing the source address is optional ([`Com::with_pushed_src`]) — when
//! enabled it overrides the transport-reported source, which is exactly the
//! behaviour needed on source-less networks like raw ATM.  View filtering
//! starts after the first `view` downcall installs a member set; before
//! that, COM is promiscuous (plain stacks without a membership layer never
//! install views).

use horus_core::prelude::*;

const FIELDS_SRC: &[FieldSpec] = &[FieldSpec::new("src", 64)];
const FIELDS_NONE: &[FieldSpec] = &[];

/// The COM layer.  Providing properties P10 (byte re-ordering detection is
/// delegated to the frame decoder and fingerprint) and P11 (source
/// address).
#[derive(Debug, Default, Clone)]
pub struct Com {
    push_src: bool,
    /// Filter casts whose source is outside the installed member set.
    filter: bool,
    members: Option<Vec<EndpointAddr>>,
    filtered: u64,
    casts: u64,
    delivered: u64,
}

impl Com {
    /// A COM layer relying on transport-reported sources, with view
    /// filtering enabled once a view is installed.
    pub fn new() -> Self {
        Com { filter: true, ..Com::default() }
    }

    /// A COM layer that pushes the source endpoint address onto every
    /// outgoing message (for source-less transports).
    pub fn with_pushed_src() -> Self {
        Com { push_src: true, filter: true, ..Com::default() }
    }

    /// Disables spurious-source filtering (promiscuous mode, used by merge
    /// tests and the MERGE layer's probing).
    pub fn promiscuous() -> Self {
        Com { filter: false, ..Com::default() }
    }

    fn spurious(&self, src: EndpointAddr) -> bool {
        match (&self.members, self.filter) {
            (Some(members), true) => !members.contains(&src),
            _ => false,
        }
    }
}

impl Layer for Com {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "COM"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        if self.push_src {
            FIELDS_SRC
        } else {
            FIELDS_NONE
        }
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                self.casts += 1;
                if self.push_src {
                    ctx.stamp(&mut msg);
                    ctx.set(&mut msg, 0, ctx.local_addr().raw());
                }
                ctx.down(Down::Cast(msg));
            }
            Down::Send { dests, mut msg } => {
                if self.push_src {
                    ctx.stamp(&mut msg);
                    ctx.set(&mut msg, 0, ctx.local_addr().raw());
                }
                ctx.down(Down::Send { dests, msg });
            }
            Down::InstallView(view) => {
                // COM is the designated consumer of view installations: it
                // keeps the transport-level destination set.
                self.members = Some(view.members().to_vec());
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                let src = if self.push_src {
                    match ctx.open(&mut msg) {
                        Ok(()) => {
                            let raw = ctx.get(&msg, 0);
                            if raw == 0 {
                                return; // malformed: drop silently
                            }
                            EndpointAddr::new(raw)
                        }
                        Err(_) => return, // header mismatch: drop
                    }
                } else {
                    src
                };
                if self.spurious(src) {
                    self.filtered += 1;
                    return;
                }
                self.delivered += 1;
                msg.meta.src = Some(src);
                ctx.up(Up::Cast { src, msg });
            }
            Up::Send { src, mut msg } => {
                let src = if self.push_src {
                    match ctx.open(&mut msg) {
                        Ok(()) => {
                            let raw = ctx.get(&msg, 0);
                            if raw == 0 {
                                return;
                            }
                            EndpointAddr::new(raw)
                        }
                        Err(_) => return,
                    }
                } else {
                    src
                };
                // Point-to-point sends are never view-filtered: merge
                // requests arrive from outside the view by design (§5).
                msg.meta.src = Some(src);
                ctx.up(Up::Send { src, msg });
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "casts={} delivered={} filtered={} members={:?}",
            self.casts,
            self.delivered,
            self.filtered,
            self.members.as_ref().map(|m| m.len())
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use horus_core::view::View;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn stack(com: Com) -> Stack {
        StackBuilder::new(ep(1)).push(Box::new(com)).build().unwrap()
    }

    fn cast_wire(s: &mut Stack, body: &[u8]) -> WireFrame {
        let m = s.new_message(body.to_vec());
        let fx = s.handle(StackInput::FromApp(Down::Cast(m)));
        match &fx[0] {
            Effect::NetCast { wire } => wire.clone(),
            other => panic!("expected NetCast, got {other:?}"),
        }
    }

    #[test]
    fn promiscuous_before_view_installed() {
        let mut a = stack(Com::new());
        let mut b = stack(Com::new());
        // b is a different endpoint; rebuild with addr 2 for clarity.
        let wire = cast_wire(&mut a, b"hello");
        let fx = b.handle(StackInput::FromNet { from: ep(9), cast: true, wire });
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Deliver(Up::Cast { src, .. }) if *src == ep(9))));
    }

    #[test]
    fn filters_spurious_casts_after_view() {
        let mut a = stack(Com::new());
        let mut b = stack(Com::new());
        let view = View::initial(GroupAddr::new(1), ep(1)).with_joined(&[ep(2)]);
        let _ = b.handle(StackInput::FromApp(Down::InstallView(view)));
        let wire = cast_wire(&mut a, b"ok");
        // From a member: delivered.
        let fx = b.handle(StackInput::FromNet { from: ep(2), cast: true, wire: wire.clone() });
        assert!(fx.iter().any(|e| matches!(e, Effect::Deliver(Up::Cast { .. }))));
        // From an outsider: dropped.
        let fx = b.handle(StackInput::FromNet { from: ep(9), cast: true, wire });
        assert!(!fx.iter().any(|e| matches!(e, Effect::Deliver(Up::Cast { .. }))));
        let com: &Com = b.focus_as("COM").unwrap();
        assert_eq!(com.filtered, 1);
    }

    #[test]
    fn sends_bypass_view_filter() {
        let mut a = stack(Com::new());
        let mut b = stack(Com::new());
        let view = View::initial(GroupAddr::new(1), ep(1));
        let _ = b.handle(StackInput::FromApp(Down::InstallView(view)));
        let m = a.new_message(&b"merge?"[..]);
        let fx = a.handle(StackInput::FromApp(Down::Send { dests: vec![ep(1)], msg: m }));
        let wire = match &fx[0] {
            Effect::NetSend { wire, .. } => wire.clone(),
            other => panic!("{other:?}"),
        };
        let fx = b.handle(StackInput::FromNet { from: ep(9), cast: false, wire });
        assert!(fx.iter().any(|e| matches!(e, Effect::Deliver(Up::Send { .. }))));
    }

    #[test]
    fn pushed_src_overrides_transport_source() {
        let mut a =
            StackBuilder::new(ep(7)).push(Box::new(Com::with_pushed_src())).build().unwrap();
        let mut b =
            StackBuilder::new(ep(2)).push(Box::new(Com::with_pushed_src())).build().unwrap();
        let wire = cast_wire(&mut a, b"x");
        // Transport claims ep(9), header says ep(7): header wins.
        let fx = b.handle(StackInput::FromNet { from: ep(9), cast: true, wire });
        let src = fx
            .iter()
            .find_map(|e| match e {
                Effect::Deliver(Up::Cast { src, .. }) => Some(*src),
                _ => None,
            })
            .unwrap();
        assert_eq!(src, ep(7));
    }

    #[test]
    fn install_view_is_consumed_not_traced() {
        let mut s = stack(Com::new());
        let view = View::initial(GroupAddr::new(1), ep(1));
        let fx = s.handle(StackInput::FromApp(Down::InstallView(view)));
        assert!(fx.is_empty(), "InstallView must not fall off the bottom: {fx:?}");
    }
}
