//! Reference implementations (§8).
//!
//! "Reference layers serve as concise specifications of the current
//! 'production' layers, but ... are also executable. ... \[They\] are
//! considerably cleaner than the current production layers and are
//! generally an order of magnitude smaller in code size."
//!
//! The 1995 project wrote its reference layers in ML; here both reference
//! and production layers are Rust, but the methodology survives intact:
//! the reference versions below are written for *obviousness* — minimal
//! state, naive algorithms, no optimization — while the production
//! versions ([`crate::nak::Nak`], [`crate::total::Total`]) are written for
//! performance.  Because both sides speak only the HCPI, a reference layer
//! is drop-in **interchangeable** with its production counterpart inside a
//! stack (all group members switch together; the stack fingerprint keeps
//! mixed *wire* protocols from talking past each other), and layers of
//! either kind mix freely in one stack — the integration tests run the
//! production TOTAL over the reference NAK and vice versa.
//!
//! | layer | production | reference |
//! |---|---|---|
//! | FIFO | NAK: out-of-order buffering, ranged NAKs, windows | [`NakRef`]: go-back-N, drop out-of-order, whole-tail retransmission |
//! | total order | TOTAL: moving token with oracle | [`TotalRef`]: fixed sequencer (rank 0) |

use horus_core::prelude::*;
use horus_core::wire::{WireReader, WireWriter};
use std::collections::BTreeMap;
use std::time::Duration;

// ---------------------------------------------------------------------
// NAK_REF
// ---------------------------------------------------------------------

const NAK_REF_FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 3), FieldSpec::new("seq", 32)];

const KIND_DATA: u64 = 0;
const KIND_STATUS: u64 = 1;
const KIND_UNI: u64 = 2;
const KIND_UNI_ACK: u64 = 3;
/// "Fast-forward past my pruned history" — the reference flavour of the
/// paper's LOST placeholder.
const KIND_SKIP: u64 = 4;

const TICK: u64 = 0;

/// Reference FIFO layer: go-back-N multicast plus stop-and-wait unicast.
///
/// Receivers deliver only the next in-sequence message and *discard*
/// everything else; each periodic status tells every sender how far this
/// receiver got, and senders simply re-multicast their whole unacked tail.
/// Obviously correct, obviously wasteful.
#[derive(Debug, Clone)]
pub struct NakRef {
    period: Duration,
    fail_timeout: Duration,
    me: Option<EndpointAddr>,
    next_seq: u32,
    sent: BTreeMap<u32, Message>,
    /// Per source: next expected sequence.
    expected: BTreeMap<EndpointAddr, u32>,
    /// Per peer: how far they acknowledged our casts.
    acked: BTreeMap<EndpointAddr, u32>,
    /// Unicast stop-and-wait: per destination, the in-flight message.
    uni_next: BTreeMap<EndpointAddr, u32>,
    uni_inflight: BTreeMap<EndpointAddr, (u32, Message)>,
    uni_queue: BTreeMap<EndpointAddr, Vec<Message>>,
    uni_expected: BTreeMap<EndpointAddr, u32>,
    dests: Option<Vec<EndpointAddr>>,
    /// Highest sequence discarded from the retransmission buffer.
    pruned_to: u32,
    last_heard: BTreeMap<EndpointAddr, SimTime>,
    suspected: Vec<EndpointAddr>,
    /// Retransmitted casts (the E16 waste metric).
    pub retransmissions: u64,
}

impl Default for NakRef {
    fn default() -> Self {
        NakRef::new(Duration::from_millis(20), Duration::from_millis(200))
    }
}

impl NakRef {
    /// Creates a reference NAK layer.
    pub fn new(period: Duration, fail_timeout: Duration) -> Self {
        NakRef {
            period,
            fail_timeout,
            me: None,
            next_seq: 0,
            sent: BTreeMap::new(),
            expected: BTreeMap::new(),
            acked: BTreeMap::new(),
            uni_next: BTreeMap::new(),
            uni_inflight: BTreeMap::new(),
            uni_queue: BTreeMap::new(),
            uni_expected: BTreeMap::new(),
            dests: None,
            pruned_to: 0,
            last_heard: BTreeMap::new(),
            suspected: Vec::new(),
            retransmissions: 0,
        }
    }

    fn min_acked(&self) -> u32 {
        match &self.dests {
            Some(d) => d
                .iter()
                .filter(|p| Some(**p) != self.me && !self.suspected.contains(p))
                .map(|p| self.acked.get(p).copied().unwrap_or(0))
                .min()
                .unwrap_or(self.next_seq),
            None => 0,
        }
    }

    fn pump_uni(&mut self, dest: EndpointAddr, ctx: &mut LayerCtx<'_>) {
        if self.uni_inflight.contains_key(&dest) {
            return;
        }
        let Some(queue) = self.uni_queue.get_mut(&dest) else { return };
        if queue.is_empty() {
            return;
        }
        let mut msg = queue.remove(0);
        let seq = {
            let n = self.uni_next.entry(dest).or_insert(0);
            *n += 1;
            *n
        };
        ctx.stamp(&mut msg);
        ctx.set(&mut msg, 0, KIND_UNI);
        ctx.set(&mut msg, 1, seq as u64);
        self.uni_inflight.insert(dest, (seq, msg.clone()));
        ctx.down(Down::Send { dests: vec![dest], msg });
    }
}

impl Layer for NakRef {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "NAK_REF"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        NAK_REF_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
        ctx.set_timer(self.period, TICK);
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                self.next_seq += 1;
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, KIND_DATA);
                ctx.set(&mut msg, 1, self.next_seq as u64);
                self.sent.insert(self.next_seq, msg.clone());
                ctx.down(Down::Cast(msg));
            }
            Down::Send { dests, msg } => {
                for dest in dests {
                    self.uni_queue.entry(dest).or_default().push(msg.clone());
                    self.pump_uni(dest, ctx);
                }
            }
            Down::InstallView(view) => {
                let now = ctx.now();
                for &m in view.members() {
                    self.last_heard.entry(m).or_insert(now);
                }
                self.dests = Some(view.members().to_vec());
                self.suspected.clear();
                ctx.down(Down::InstallView(view));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } | Up::Send { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                let kind = ctx.get(&msg, 0);
                let seq = ctx.get(&msg, 1) as u32;
                self.last_heard.insert(src, ctx.now());
                match kind {
                    KIND_DATA => {
                        let expected = self.expected.entry(src).or_insert(1);
                        if seq == *expected {
                            *expected += 1;
                            ctx.up(Up::Cast { src, msg });
                        }
                        // Anything else: silently discarded (go-back-N).
                    }
                    KIND_STATUS => {
                        let mut r = WireReader::new(msg.body());
                        let Ok(n) = r.get_u32() else { return };
                        let mut their_cum_of_me = None;
                        for _ in 0..n {
                            let (Ok(sender), Ok(cum)) = (r.get_addr(), r.get_u32()) else {
                                return;
                            };
                            if Some(sender) == self.me {
                                their_cum_of_me = Some(cum);
                                let e = self.acked.entry(src).or_insert(0);
                                *e = (*e).max(cum);
                            }
                        }
                        // A receiver stuck before our pruned horizon can
                        // never catch up from retransmissions: tell it to
                        // skip (it reports the hole as LOST_MESSAGE).
                        if their_cum_of_me.unwrap_or(0) < self.pruned_to {
                            let mut skip = ctx.new_message(bytes::Bytes::new());
                            ctx.stamp(&mut skip);
                            ctx.set(&mut skip, 0, KIND_SKIP);
                            ctx.set(&mut skip, 1, self.pruned_to as u64);
                            ctx.down(Down::Send { dests: vec![src], msg: skip });
                        }
                    }
                    KIND_SKIP => {
                        let expected = self.expected.entry(src).or_insert(1);
                        if seq + 1 > *expected {
                            *expected = seq + 1;
                            ctx.up(Up::LostMessage { src });
                        }
                    }
                    KIND_UNI => {
                        let expected = self.uni_expected.entry(src).or_insert(1);
                        let deliver = seq == *expected;
                        if deliver {
                            *expected += 1;
                        }
                        // Ack whatever we have (cumulative), even for dups.
                        let cum = *expected - 1;
                        let mut ack = ctx.new_message(bytes::Bytes::new());
                        ctx.stamp(&mut ack);
                        ctx.set(&mut ack, 0, KIND_UNI_ACK);
                        ctx.set(&mut ack, 1, cum as u64);
                        ctx.down(Down::Send { dests: vec![src], msg: ack });
                        if deliver {
                            ctx.up(Up::Send { src, msg });
                        }
                    }
                    KIND_UNI_ACK => {
                        let done = match self.uni_inflight.get(&src) {
                            Some((s, _)) => *s <= seq,
                            None => false,
                        };
                        if done {
                            self.uni_inflight.remove(&src);
                            self.pump_uni(src, ctx);
                        }
                    }
                    _ => {}
                }
            }
            other => ctx.up(other),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut LayerCtx<'_>) {
        if token != TICK {
            return;
        }
        // Status: my expected vector (all senders).
        let entries: Vec<(EndpointAddr, u32)> =
            self.expected.iter().map(|(&s, &e)| (s, e.saturating_sub(1))).collect();
        let mut w = WireWriter::with_capacity(4 + 12 * entries.len());
        w.put_u32(entries.len() as u32);
        for (s, cum) in entries {
            w.put_addr(s);
            w.put_u32(cum);
        }
        let mut status = ctx.new_message(w.finish());
        ctx.stamp(&mut status);
        ctx.set(&mut status, 0, KIND_STATUS);
        ctx.set(&mut status, 1, 0);
        ctx.down(Down::Cast(status));

        // Go-back-N: re-multicast the entire unacked tail.
        let min = self.min_acked();
        let tail: Vec<Message> = self.sent.range(min + 1..).map(|(_, m)| m.clone()).collect();
        for m in tail {
            self.retransmissions += 1;
            ctx.down(Down::Cast(m));
        }
        if self.sent.keys().next().map(|&s| s <= min).unwrap_or(false) {
            self.pruned_to = self.pruned_to.max(min);
        }
        self.sent.retain(|&s, _| s > min);

        // Stop-and-wait retransmission.
        let inflight: Vec<(EndpointAddr, Message)> =
            self.uni_inflight.iter().map(|(&d, (_, m))| (d, m.clone())).collect();
        for (dest, m) in inflight {
            self.retransmissions += 1;
            ctx.down(Down::Send { dests: vec![dest], msg: m });
        }

        // Failure detection by silence.
        if let Some(dests) = self.dests.clone() {
            let now = ctx.now();
            for d in dests {
                if Some(d) == self.me || self.suspected.contains(&d) {
                    continue;
                }
                let silent = self
                    .last_heard
                    .get(&d)
                    .map(|t| now.saturating_since(*t) > self.fail_timeout)
                    .unwrap_or(false);
                if silent {
                    self.suspected.push(d);
                    ctx.up(Up::Problem { member: d });
                }
            }
        }
        ctx.set_timer(self.period, TICK);
    }

    fn dump(&self) -> String {
        format!(
            "sent={} buffered={} retrans={} suspected={:?}",
            self.next_seq,
            self.sent.len(),
            self.retransmissions,
            self.suspected
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------
// TOTAL_REF
// ---------------------------------------------------------------------

const TOTAL_REF_FIELDS: &[FieldSpec] = &[FieldSpec::new("kind", 1), FieldSpec::new("tseq", 32)];

const TR_DATA: u64 = 0;
const TR_ORDER: u64 = 1;

/// Reference total order: a fixed sequencer.
///
/// The lowest-ranked member of every view assigns all global sequence
/// numbers; there is no token movement and no oracle.  Every ordering
/// decision costs a round through the sequencer, but the algorithm fits
/// in a page.
#[derive(Debug, Default, Clone)]
pub struct TotalRef {
    me: Option<EndpointAddr>,
    view: Option<View>,
    my_tseq: u32,
    unordered: BTreeMap<(EndpointAddr, u32), Message>,
    ordered: BTreeMap<u64, (EndpointAddr, u32)>,
    /// Keys ever assigned a global number in this view (kept until the
    /// next view so nothing is sequenced twice).
    assigned: std::collections::BTreeSet<(EndpointAddr, u32)>,
    gnext: u64,
    gassign: u64,
    /// Orders this node issued as sequencer.
    pub orders_issued: u64,
}

impl TotalRef {
    /// Creates a reference TOTAL layer.
    pub fn new() -> Self {
        TotalRef::default()
    }

    fn i_am_sequencer(&self) -> bool {
        match (&self.view, self.me) {
            (Some(v), Some(me)) => v.members().first() == Some(&me),
            _ => false,
        }
    }

    fn sequence(&mut self, ctx: &mut LayerCtx<'_>) {
        if !self.i_am_sequencer() {
            return;
        }
        let batch: Vec<(EndpointAddr, u32)> =
            self.unordered.keys().filter(|k| !self.assigned.contains(*k)).copied().collect();
        if batch.is_empty() {
            return;
        }
        let mut w = WireWriter::with_capacity(12 + 12 * batch.len());
        w.put_u64(self.gassign);
        w.put_u32(batch.len() as u32);
        for &(src, tseq) in &batch {
            w.put_addr(src);
            w.put_u32(tseq);
        }
        for (i, &key) in batch.iter().enumerate() {
            self.ordered.insert(self.gassign + i as u64, key);
            self.assigned.insert(key);
        }
        self.gassign += batch.len() as u64;
        self.orders_issued += 1;
        let mut m = ctx.new_message(w.finish());
        ctx.stamp(&mut m);
        ctx.set(&mut m, 0, TR_ORDER);
        ctx.set(&mut m, 1, 0);
        ctx.down(Down::Cast(m));
        self.try_deliver(ctx);
    }

    fn try_deliver(&mut self, ctx: &mut LayerCtx<'_>) {
        while let Some(&key) = self.ordered.get(&self.gnext) {
            let Some(mut msg) = self.unordered.remove(&key) else { break };
            self.ordered.remove(&self.gnext);
            msg.meta.total_seq = Some(self.gnext);
            self.gnext += 1;
            ctx.up(Up::Cast { src: key.0, msg });
        }
    }
}

impl Layer for TotalRef {
    fn clone_box(&self) -> Option<Box<dyn Layer>> {
        Some(Box::new(self.clone()))
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "TOTAL_REF"
    }

    fn header_fields(&self) -> &'static [FieldSpec] {
        TOTAL_REF_FIELDS
    }

    fn on_init(&mut self, ctx: &mut LayerCtx<'_>) {
        self.me = Some(ctx.local_addr());
    }

    fn on_down(&mut self, ev: Down, ctx: &mut LayerCtx<'_>) {
        match ev {
            Down::Cast(mut msg) => {
                self.my_tseq += 1;
                ctx.stamp(&mut msg);
                ctx.set(&mut msg, 0, TR_DATA);
                ctx.set(&mut msg, 1, self.my_tseq as u64);
                ctx.down(Down::Cast(msg));
            }
            other => ctx.down(other),
        }
    }

    fn on_up(&mut self, ev: Up, ctx: &mut LayerCtx<'_>) {
        match ev {
            Up::Cast { src, mut msg } => {
                if ctx.open(&mut msg).is_err() {
                    return;
                }
                match ctx.get(&msg, 0) {
                    TR_DATA => {
                        let tseq = ctx.get(&msg, 1) as u32;
                        self.unordered.insert((src, tseq), msg);
                        self.sequence(ctx);
                        self.try_deliver(ctx);
                    }
                    TR_ORDER => {
                        if Some(src) == self.me {
                            return; // applied at issue time
                        }
                        let mut r = WireReader::new(msg.body());
                        let Ok(base) = r.get_u64() else { return };
                        let Ok(n) = r.get_u32() else { return };
                        for i in 0..n as u64 {
                            let (Ok(s), Ok(t)) = (r.get_addr(), r.get_u32()) else { return };
                            self.ordered.insert(base + i, (s, t));
                            self.assigned.insert((s, t));
                        }
                        self.gassign = self.gassign.max(base + n as u64);
                        self.try_deliver(ctx);
                    }
                    _ => {}
                }
            }
            Up::View(view) => {
                self.try_deliver(ctx);
                // Deterministic drain, exactly as production TOTAL.
                let leftovers: Vec<(EndpointAddr, u32)> = match &self.view {
                    Some(old) => {
                        let mut keys: Vec<_> = self.unordered.keys().copied().collect();
                        keys.sort_by_key(|&(src, tseq)| {
                            (old.rank_of(src).map(|r| r.0).unwrap_or(usize::MAX), src, tseq)
                        });
                        keys
                    }
                    None => self.unordered.keys().copied().collect(),
                };
                for key in leftovers {
                    let mut msg = self.unordered.remove(&key).expect("buffered");
                    msg.meta.total_seq = Some(self.gnext);
                    self.gnext += 1;
                    ctx.up(Up::Cast { src: key.0, msg });
                }
                self.unordered.clear();
                self.ordered.clear();
                self.assigned.clear();
                self.my_tseq = 0;
                self.gnext = 1;
                self.gassign = 1;
                self.view = Some(view.clone());
                ctx.up(Up::View(view));
                self.sequence(ctx);
            }
            other => ctx.up(other),
        }
    }

    fn dump(&self) -> String {
        format!(
            "sequencer={} buffered={} orders={}",
            self.i_am_sequencer(),
            self.unordered.len(),
            self.orders_issued
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::com::Com;
    use crate::frag::Frag;
    use crate::mbrship::{Mbrship, MbrshipConfig};
    use crate::nak::Nak;
    use crate::total::Total;
    use horus_net::NetConfig;
    use horus_sim::{check_total_order, check_virtual_synchrony, DeliveryLog, SimWorld, Workload};

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    /// Builds one of four stack flavours: (ref|prod total) × (ref|prod
    /// nak) — every combination must behave identically from above.
    fn stack(i: u64, ref_total: bool, ref_nak: bool) -> Stack {
        let mut b = StackBuilder::new(ep(i));
        b = if ref_total {
            b.push(Box::new(TotalRef::new()))
        } else {
            b.push(Box::new(Total::new()))
        };
        b = b
            .push(Box::new(Mbrship::new(MbrshipConfig::default())))
            .push(Box::new(Frag::default()));
        b = if ref_nak {
            b.push(Box::new(NakRef::default()))
        } else {
            b.push(Box::new(Nak::default()))
        };
        b.push(Box::new(Com::promiscuous())).build().unwrap()
    }

    fn run_combo(seed: u64, ref_total: bool, ref_nak: bool, loss: f64) -> Vec<Vec<(u64, Vec<u8>)>> {
        let net = if loss > 0.0 { NetConfig::lossy(loss) } else { NetConfig::reliable() };
        let mut w = SimWorld::new(seed, net);
        for i in 1..=3 {
            w.add_endpoint(stack(i, ref_total, ref_nak));
            w.join(ep(i), GroupAddr::new(1));
        }
        for i in 2..=3 {
            w.down_at(SimTime::from_millis(5 * (i - 1)), ep(i), Down::Merge { contact: ep(1) });
        }
        w.run_for(Duration::from_secs(2));
        let t = w.now();
        let wl = Workload::round_robin(vec![ep(1), ep(2), ep(3)], 24);
        wl.schedule(&mut w, t + Duration::from_millis(1));
        w.run_for(Duration::from_secs(4));
        let logs: Vec<DeliveryLog> =
            (1..=3).map(|i| DeliveryLog::from_upcalls(ep(i), w.upcalls(ep(i)))).collect();
        assert!(check_total_order(&logs).is_empty(), "total order in combo");
        assert!(check_virtual_synchrony(&logs).is_empty(), "vs in combo");
        (1..=3)
            .map(|i| {
                w.delivered_casts(ep(i)).iter().map(|(s, b, _)| (s.raw(), b.to_vec())).collect()
            })
            .collect()
    }

    #[test]
    fn all_four_combinations_deliver_everything_in_total_order() {
        for &(rt, rn) in &[(false, false), (false, true), (true, false), (true, true)] {
            let seqs = run_combo(42, rt, rn, 0.0);
            for (i, s) in seqs.iter().enumerate() {
                assert_eq!(s.len(), 24, "combo ({rt},{rn}) endpoint {}", i + 1);
            }
            // All members see the identical global sequence.
            assert_eq!(seqs[0], seqs[1], "combo ({rt},{rn})");
            assert_eq!(seqs[0], seqs[2], "combo ({rt},{rn})");
        }
    }

    #[test]
    fn reference_stack_survives_loss_too() {
        let seqs = run_combo(7, true, true, 0.15);
        for s in &seqs {
            assert_eq!(s.len(), 24);
        }
        assert_eq!(seqs[0], seqs[1]);
    }

    #[test]
    fn reference_nak_is_wasteful_but_correct() {
        // Under loss, go-back-N must retransmit far more than it loses.
        let mut w = SimWorld::new(8, NetConfig::lossy(0.2));
        for i in 1..=2 {
            let s = StackBuilder::new(ep(i))
                .push(Box::new(NakRef::default()))
                .push(Box::new(Com::new()))
                .build()
                .unwrap();
            w.add_endpoint(s);
            w.join(ep(i), GroupAddr::new(1));
        }
        for k in 0..30u8 {
            w.cast_bytes(ep(1), vec![k]);
        }
        w.run_for(Duration::from_secs(3));
        let got: Vec<u8> = w.delivered_casts(ep(2)).iter().map(|(_, b, _)| b[0]).collect();
        assert_eq!(got, (0..30).collect::<Vec<u8>>());
        let r: &NakRef = w.stack(ep(1)).unwrap().focus_as("NAK_REF").unwrap();
        assert!(r.retransmissions > 0);
    }

    #[test]
    fn mixed_wire_protocols_are_firewalled_by_fingerprints() {
        // One endpoint runs NAK, the other NAK_REF: they must not
        // misinterpret each other — the stack fingerprint drops the frames.
        let mut w = SimWorld::new(9, NetConfig::reliable());
        let a = StackBuilder::new(ep(1))
            .push(Box::new(Nak::default()))
            .push(Box::new(Com::new()))
            .build()
            .unwrap();
        let b = StackBuilder::new(ep(2))
            .push(Box::new(NakRef::default()))
            .push(Box::new(Com::new()))
            .build()
            .unwrap();
        w.add_endpoint(a);
        w.add_endpoint(b);
        w.join(ep(1), GroupAddr::new(1));
        w.join(ep(2), GroupAddr::new(1));
        w.cast_bytes(ep(1), &b"?"[..]);
        w.run_for(Duration::from_millis(200));
        assert!(w.delivered_casts(ep(2)).is_empty());
        assert!(w.stack_stats(ep(2)).unwrap().fingerprint_drops >= 1);
    }
}
