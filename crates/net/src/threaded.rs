//! An in-process, multi-threaded loopback transport.
//!
//! Used by the real-time executors and benchmarks (the §10 dispatch-model
//! ablation): frames move between endpoint threads over lock-free channels
//! with no simulated physics — the closest in-process analogue to the
//! paper's "almost no overhead at all" ATM configuration.

use crossbeam::channel::{unbounded, Receiver, Sender};
use horus_core::addr::{EndpointAddr, GroupAddr};
use horus_core::frame::WireFrame;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A frame as delivered by the loopback transport.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Transport-level sender.
    pub from: EndpointAddr,
    /// Multicast (`true`) or point-to-point.
    pub cast: bool,
    /// The encoded message.
    pub wire: WireFrame,
}

#[derive(Debug, Default)]
struct Registry {
    endpoints: BTreeMap<EndpointAddr, Sender<Frame>>,
    groups: BTreeMap<GroupAddr, Vec<EndpointAddr>>,
    member_of: BTreeMap<EndpointAddr, GroupAddr>,
}

/// A shared in-process transport; clone handles freely across threads.
///
/// ```
/// use horus_net::LoopbackNet;
/// use horus_core::{EndpointAddr, GroupAddr, WireFrame};
/// use bytes::Bytes;
///
/// let net = LoopbackNet::new();
/// let a = EndpointAddr::new(1);
/// let b = EndpointAddr::new(2);
/// let rx_a = net.register(a);
/// let rx_b = net.register(b);
/// let g = GroupAddr::new(9);
/// net.join(g, a);
/// net.join(g, b);
/// net.cast(a, WireFrame::raw(Bytes::from_static(b"hello")));
/// assert_eq!(&rx_b.recv().unwrap().wire.to_bytes()[..], b"hello");
/// assert_eq!(&rx_a.recv().unwrap().wire.to_bytes()[..], b"hello"); // loopback to self
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoopbackNet {
    inner: Arc<Mutex<Registry>>,
}

impl LoopbackNet {
    /// Creates an empty transport.
    pub fn new() -> Self {
        LoopbackNet::default()
    }

    /// Registers an endpoint, returning the channel its frames arrive on.
    /// Re-registering an address replaces the previous receiver.
    pub fn register(&self, ep: EndpointAddr) -> Receiver<Frame> {
        let (tx, rx) = unbounded();
        self.inner.lock().endpoints.insert(ep, tx);
        rx
    }

    /// Removes an endpoint entirely (its channel closes).
    pub fn deregister(&self, ep: EndpointAddr) {
        let mut reg = self.inner.lock();
        reg.endpoints.remove(&ep);
        if let Some(g) = reg.member_of.remove(&ep) {
            if let Some(members) = reg.groups.get_mut(&g) {
                members.retain(|&m| m != ep);
            }
        }
    }

    /// Adds `ep` to the transport-level multicast group.
    pub fn join(&self, group: GroupAddr, ep: EndpointAddr) {
        let mut reg = self.inner.lock();
        let members = reg.groups.entry(group).or_default();
        if !members.contains(&ep) {
            members.push(ep);
        }
        reg.member_of.insert(ep, group);
    }

    /// Removes `ep` from its multicast group (but keeps it registered).
    pub fn leave(&self, ep: EndpointAddr) {
        let mut reg = self.inner.lock();
        if let Some(g) = reg.member_of.remove(&ep) {
            if let Some(members) = reg.groups.get_mut(&g) {
                members.retain(|&m| m != ep);
            }
        }
    }

    /// Multicasts a frame to `from`'s group, including a loopback copy.
    /// Returns the number of endpoints the frame was queued for.
    pub fn cast(&self, from: EndpointAddr, wire: WireFrame) -> usize {
        let reg = self.inner.lock();
        let Some(group) = reg.member_of.get(&from) else { return 0 };
        let Some(members) = reg.groups.get(group) else { return 0 };
        let mut queued = 0;
        for &to in members {
            if let Some(tx) = reg.endpoints.get(&to) {
                if tx.send(Frame { from, cast: true, wire: wire.clone() }).is_ok() {
                    queued += 1;
                }
            }
        }
        queued
    }

    /// Sends a frame to explicit destinations.
    pub fn send(&self, from: EndpointAddr, dests: &[EndpointAddr], wire: WireFrame) -> usize {
        let reg = self.inner.lock();
        let mut queued = 0;
        for &to in dests {
            if let Some(tx) = reg.endpoints.get(&to) {
                if tx.send(Frame { from, cast: false, wire: wire.clone() }).is_ok() {
                    queued += 1;
                }
            }
        }
        queued
    }

    /// Current transport-level members of a group.
    pub fn members(&self, group: GroupAddr) -> Vec<EndpointAddr> {
        self.inner.lock().groups.get(&group).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn raw(b: &'static [u8]) -> WireFrame {
        WireFrame::raw(Bytes::from_static(b))
    }

    #[test]
    fn cast_fans_out_to_group() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let rxs: Vec<_> = (1..=3)
            .map(|i| {
                let r = net.register(ep(i));
                net.join(g, ep(i));
                r
            })
            .collect();
        assert_eq!(net.cast(ep(1), raw(b"m")), 3);
        for rx in &rxs {
            let f = rx.recv().unwrap();
            assert_eq!(f.from, ep(1));
            assert!(f.cast);
        }
    }

    #[test]
    fn send_targets_only_destinations() {
        let net = LoopbackNet::new();
        let _rx1 = net.register(ep(1));
        let rx2 = net.register(ep(2));
        assert_eq!(net.send(ep(1), &[ep(2)], raw(b"s")), 1);
        assert!(!rx2.recv().unwrap().cast);
        assert!(rx2.try_recv().is_err());
    }

    #[test]
    fn deregister_stops_delivery() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let _rx1 = net.register(ep(1));
        let rx2 = net.register(ep(2));
        net.join(g, ep(1));
        net.join(g, ep(2));
        net.deregister(ep(2));
        assert_eq!(net.cast(ep(1), raw(b"m")), 1);
        drop(net);
        assert!(rx2.try_recv().is_err());
    }

    #[test]
    fn works_across_threads() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let rx = net.register(ep(2));
        net.join(g, ep(1));
        net.join(g, ep(2));
        let net2 = net.clone();
        // Sender must be registered to have a loopback queue; register it.
        let _rx1 = net.register(ep(1));
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                net2.cast(ep(1), raw(b"m"));
            }
        });
        h.join().unwrap();
        let mut got = 0;
        while rx.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 100);
    }
}
