//! An in-process, multi-threaded loopback transport.
//!
//! Used by the real-time executors and benchmarks (the §10 dispatch-model
//! ablation): frames move between endpoint threads over lock-free channels
//! with no simulated physics — the closest in-process analogue to the
//! paper's "almost no overhead at all" ATM configuration.
//!
//! Two hot-path properties matter for the sharded executor built on top:
//!
//! * **Short critical sections** — `cast`/`send` snapshot the destination
//!   sinks under the registry lock and deliver *outside* it, under a
//!   per-group fan-out lock.  A slow receiver sink can only stall senders
//!   in its own group, never unrelated ones — while members of one group
//!   still observe concurrent casts in a single consistent order (the
//!   transport-level atomic-multicast property the membership and flush
//!   protocols rely on).
//! * **Batched fan-out** — [`LoopbackNet::cast_batch`] amortizes the
//!   registry snapshot over a whole burst of frames: one lock acquisition
//!   per burst instead of one per frame.

use crossbeam::channel::{unbounded, Receiver, Sender};
use horus_core::addr::{EndpointAddr, GroupAddr};
use horus_core::frame::WireFrame;
use horus_core::time::SimTime;
use horus_core::trace::{DropReason, TraceEvent, TraceKind, TraceSink};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A frame as delivered by the loopback transport.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Transport-level sender.
    pub from: EndpointAddr,
    /// Multicast (`true`) or point-to-point.
    pub cast: bool,
    /// The encoded message.
    pub wire: WireFrame,
}

/// Where a registered endpoint's frames go.
///
/// The default [`LoopbackNet::register`] installs a channel sender, but an
/// executor can install anything — the sharded executor registers a sink
/// that pushes frames straight into the owning shard's input queue, removing
/// the per-endpoint pump thread (and its extra wake-up per frame) from the
/// receive path.
pub trait FrameSink: Send + Sync {
    /// Delivers one frame; `false` means the receiver is gone (its frames
    /// are counted as dropped-on-closed-channel).
    fn deliver(&self, frame: Frame) -> bool;

    /// Delivers a burst, draining `frames`; returns how many were queued.
    /// The default delivers one at a time; queue-backed sinks override it
    /// to publish the whole burst under a single lock acquisition and a
    /// single consumer wake-up.
    fn deliver_many(&self, frames: &mut Vec<Frame>) -> usize {
        frames.drain(..).map(|f| usize::from(self.deliver(f))).sum()
    }
}

impl FrameSink for Sender<Frame> {
    fn deliver(&self, frame: Frame) -> bool {
        self.send(frame).is_ok()
    }

    fn deliver_many(&self, frames: &mut Vec<Frame>) -> usize {
        self.send_iter(frames.drain(..)).unwrap_or(0)
    }
}

impl<F: Fn(Frame) -> bool + Send + Sync> FrameSink for F {
    fn deliver(&self, frame: Frame) -> bool {
        self(frame)
    }
}

#[derive(Default)]
struct Group {
    members: Vec<EndpointAddr>,
    /// Serializes fan-outs *within* this group (held outside the registry
    /// lock).  Guarantees every member observes concurrent casts in the same
    /// relative order — the transport-level atomic-multicast property the
    /// membership/flush protocols rely on — without letting one group's slow
    /// receiver sink stall senders in unrelated groups.
    fanout: Arc<Mutex<()>>,
}

#[derive(Default)]
struct Registry {
    endpoints: BTreeMap<EndpointAddr, Arc<dyn FrameSink>>,
    groups: BTreeMap<GroupAddr, Group>,
    member_of: BTreeMap<EndpointAddr, GroupAddr>,
}

/// Transport counters — the `horus-net::sim` [`crate::NetStats`] counterpart
/// for the threaded loopback (there is no physics here, so the only drop
/// class is a closed/deregistered receiver).
///
/// Counters are atomics: delivery counters are bumped outside the registry
/// lock, on the lock-free section of the fan-out; `dropped_unregistered` is
/// bumped during the snapshot (where the gap is observed).
#[derive(Debug, Default)]
pub struct LoopbackStats {
    /// Frames handed to `cast`.
    pub frames_cast: AtomicU64,
    /// Frames handed to `send`.
    pub frames_sent: AtomicU64,
    /// Point deliveries queued (one cast to N members counts N).
    pub deliveries: AtomicU64,
    /// Deliveries dropped because the receiver's sink was closed
    /// (deregistered between snapshot and delivery).
    pub dropped_closed: AtomicU64,
    /// Deliveries skipped because the destination was never registered (a
    /// group member or explicit `send` target with no sink installed).
    pub dropped_unregistered: AtomicU64,
}

/// A plain-integer copy of [`LoopbackStats`], for assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopbackStatsSnapshot {
    /// Frames handed to `cast`.
    pub frames_cast: u64,
    /// Frames handed to `send`.
    pub frames_sent: u64,
    /// Point deliveries queued (one cast to N members counts N).
    pub deliveries: u64,
    /// Deliveries dropped on a closed/deregistered receiver.
    pub dropped_closed: u64,
    /// Deliveries skipped because the destination was never registered.
    pub dropped_unregistered: u64,
}

impl LoopbackStats {
    fn snapshot(&self) -> LoopbackStatsSnapshot {
        LoopbackStatsSnapshot {
            frames_cast: self.frames_cast.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            deliveries: self.deliveries.load(Ordering::Relaxed),
            dropped_closed: self.dropped_closed.load(Ordering::Relaxed),
            dropped_unregistered: self.dropped_unregistered.load(Ordering::Relaxed),
        }
    }
}

/// A shared in-process transport; clone handles freely across threads.
///
/// ```
/// use horus_net::LoopbackNet;
/// use horus_core::{EndpointAddr, GroupAddr, WireFrame};
/// use bytes::Bytes;
///
/// let net = LoopbackNet::new();
/// let a = EndpointAddr::new(1);
/// let b = EndpointAddr::new(2);
/// let rx_a = net.register(a);
/// let rx_b = net.register(b);
/// let g = GroupAddr::new(9);
/// net.join(g, a);
/// net.join(g, b);
/// net.cast(a, WireFrame::raw(Bytes::from_static(b"hello")));
/// assert_eq!(&rx_b.recv().unwrap().wire.to_bytes()[..], b"hello");
/// assert_eq!(&rx_a.recv().unwrap().wire.to_bytes()[..], b"hello"); // loopback to self
/// ```
/// The installed trace sink plus the wall-clock epoch its timestamps are
/// relative to (the loopback has no virtual clock).
struct LoopbackTracer {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
}

#[derive(Clone, Default)]
pub struct LoopbackNet {
    inner: Arc<Mutex<Registry>>,
    stats: Arc<LoopbackStats>,
    /// Observes only the transport's drop classes (unroutable/closed) — the
    /// success path is traced at the stacks, keeping this entirely off the
    /// delivery hot path.
    tracer: Arc<Mutex<Option<LoopbackTracer>>>,
}

impl std::fmt::Debug for LoopbackNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackNet").field("stats", &self.stats.snapshot()).finish()
    }
}

impl LoopbackNet {
    /// Creates an empty transport.
    pub fn new() -> Self {
        LoopbackNet::default()
    }

    /// Transport counters (frames cast/sent, deliveries, drops).
    pub fn stats(&self) -> LoopbackStatsSnapshot {
        self.stats.snapshot()
    }

    /// Installs a trace sink observing this transport's drop classes.
    /// Timestamps are elapsed time since installation.
    pub fn set_tracer(&self, sink: Arc<dyn TraceSink>) {
        *self.tracer.lock() = Some(LoopbackTracer { sink, epoch: Instant::now() });
    }

    /// Removes the trace sink.
    pub fn clear_tracer(&self) {
        *self.tracer.lock() = None;
    }

    /// Records an unroutable-frame drop against `ep` (the destination when
    /// known, the sender for closed-channel drops observed mid-fan-out).
    fn trace_drop(&self, ep: EndpointAddr) {
        let guard = self.tracer.lock();
        if let Some(t) = guard.as_ref() {
            t.sink.record(TraceEvent {
                at: SimTime::from_nanos(t.epoch.elapsed().as_nanos() as u64),
                ep,
                kind: TraceKind::FrameDrop { digest: 0, seq: 0, reason: DropReason::Unroutable },
            });
        }
    }

    /// Registers an endpoint, returning the channel its frames arrive on.
    /// Re-registering an address replaces the previous receiver.
    pub fn register(&self, ep: EndpointAddr) -> Receiver<Frame> {
        let (tx, rx) = unbounded();
        self.inner.lock().endpoints.insert(ep, Arc::new(tx));
        rx
    }

    /// Registers an endpoint with a custom frame sink instead of a channel
    /// (e.g. a shard queue).  Re-registering replaces the previous sink.
    pub fn register_sink(&self, ep: EndpointAddr, sink: Arc<dyn FrameSink>) {
        self.inner.lock().endpoints.insert(ep, sink);
    }

    /// Removes an endpoint entirely (its channel closes).
    pub fn deregister(&self, ep: EndpointAddr) {
        let mut reg = self.inner.lock();
        reg.endpoints.remove(&ep);
        if let Some(g) = reg.member_of.remove(&ep) {
            if let Some(group) = reg.groups.get_mut(&g) {
                group.members.retain(|&m| m != ep);
            }
        }
    }

    /// Adds `ep` to the transport-level multicast group.
    pub fn join(&self, group: GroupAddr, ep: EndpointAddr) {
        let mut reg = self.inner.lock();
        let entry = reg.groups.entry(group).or_default();
        if !entry.members.contains(&ep) {
            entry.members.push(ep);
        }
        reg.member_of.insert(ep, group);
    }

    /// Removes `ep` from its multicast group (but keeps it registered).
    pub fn leave(&self, ep: EndpointAddr) {
        let mut reg = self.inner.lock();
        if let Some(g) = reg.member_of.remove(&ep) {
            if let Some(group) = reg.groups.get_mut(&g) {
                group.members.retain(|&m| m != ep);
            }
        }
    }

    /// Snapshots the sinks of `from`'s group members (and the group's
    /// fan-out lock) under the registry lock.  Members with no registered
    /// sink are skipped — counted, not silently dropped — so a misconfigured
    /// harness (join before register) shows up in the stats instead of as a
    /// mystery hang.
    #[allow(clippy::type_complexity)]
    fn cast_targets(
        &self,
        from: EndpointAddr,
    ) -> Option<(Vec<Arc<dyn FrameSink>>, Arc<Mutex<()>>)> {
        let reg = self.inner.lock();
        let group = reg.member_of.get(&from)?;
        let group = reg.groups.get(group)?;
        let mut sinks = Vec::with_capacity(group.members.len());
        for to in &group.members {
            match reg.endpoints.get(to) {
                Some(sink) => sinks.push(Arc::clone(sink)),
                None => {
                    self.stats.dropped_unregistered.fetch_add(1, Ordering::Relaxed);
                    self.trace_drop(*to);
                }
            }
        }
        Some((sinks, Arc::clone(&group.fanout)))
    }

    /// Multicasts a frame to `from`'s group, including a loopback copy.
    /// Returns the number of endpoints the frame was queued for.
    ///
    /// The registry lock is held only to snapshot the member sinks; the
    /// sends happen outside it under the group's own fan-out lock, so one
    /// slow receiver sink cannot stall senders in unrelated groups — while
    /// members of the *same* group still observe concurrent casts in one
    /// consistent order (fan-outs within a group are atomic).
    pub fn cast(&self, from: EndpointAddr, wire: WireFrame) -> usize {
        self.stats.frames_cast.fetch_add(1, Ordering::Relaxed);
        let Some((targets, fanout)) = self.cast_targets(from) else { return 0 };
        let mut queued = 0;
        {
            let _order = fanout.lock();
            for sink in &targets {
                if sink.deliver(Frame { from, cast: true, wire: wire.clone() }) {
                    queued += 1;
                } else {
                    self.stats.dropped_closed.fetch_add(1, Ordering::Relaxed);
                    self.trace_drop(from);
                }
            }
        }
        self.stats.deliveries.fetch_add(queued as u64, Ordering::Relaxed);
        queued
    }

    /// Multicasts a burst of frames to `from`'s group with a single registry
    /// snapshot — the dispatch-boundary batching of the sharded executor.
    /// Each member sink receives the whole burst through
    /// [`FrameSink::deliver_many`]: one lock acquisition and one wake-up per
    /// member per burst, instead of one per frame.
    pub fn cast_batch(
        &self,
        from: EndpointAddr,
        wires: impl IntoIterator<Item = WireFrame>,
    ) -> usize {
        let batch: Vec<WireFrame> = wires.into_iter().collect();
        self.stats.frames_cast.fetch_add(batch.len() as u64, Ordering::Relaxed);
        if batch.is_empty() {
            return 0;
        }
        let Some((targets, fanout)) = self.cast_targets(from) else { return 0 };
        let mut queued = 0;
        let mut burst: Vec<Frame> = Vec::with_capacity(batch.len());
        {
            let _order = fanout.lock();
            for sink in &targets {
                burst.extend(batch.iter().map(|w| Frame { from, cast: true, wire: w.clone() }));
                let delivered = sink.deliver_many(&mut burst);
                queued += delivered;
                if delivered < batch.len() {
                    self.stats
                        .dropped_closed
                        .fetch_add((batch.len() - delivered) as u64, Ordering::Relaxed);
                    self.trace_drop(from);
                }
                burst.clear();
            }
        }
        self.stats.deliveries.fetch_add(queued as u64, Ordering::Relaxed);
        queued
    }

    /// Sends a frame to explicit destinations.  As with [`LoopbackNet::cast`],
    /// the destination sinks are snapshotted under the registry lock and the
    /// sends performed outside it; when the sender belongs to a group, the
    /// delivery runs under that group's fan-out lock so point-to-point
    /// control traffic stays ordered with the group's multicasts.
    pub fn send(&self, from: EndpointAddr, dests: &[EndpointAddr], wire: WireFrame) -> usize {
        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
        let (targets, fanout) = {
            let reg = self.inner.lock();
            let mut targets: Vec<Arc<dyn FrameSink>> = Vec::with_capacity(dests.len());
            for to in dests {
                match reg.endpoints.get(to) {
                    Some(sink) => targets.push(Arc::clone(sink)),
                    None => {
                        self.stats.dropped_unregistered.fetch_add(1, Ordering::Relaxed);
                        self.trace_drop(*to);
                    }
                }
            }
            let fanout = reg
                .member_of
                .get(&from)
                .and_then(|g| reg.groups.get(g))
                .map(|group| Arc::clone(&group.fanout));
            (targets, fanout)
        };
        let _order = fanout.as_ref().map(|f| f.lock());
        let mut queued = 0;
        for sink in &targets {
            if sink.deliver(Frame { from, cast: false, wire: wire.clone() }) {
                queued += 1;
            } else {
                self.stats.dropped_closed.fetch_add(1, Ordering::Relaxed);
                self.trace_drop(from);
            }
        }
        self.stats.deliveries.fetch_add(queued as u64, Ordering::Relaxed);
        queued
    }

    /// Current transport-level members of a group.
    pub fn members(&self, group: GroupAddr) -> Vec<EndpointAddr> {
        self.inner.lock().groups.get(&group).map(|g| g.members.clone()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::time::{Duration, Instant};

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn raw(b: &'static [u8]) -> WireFrame {
        WireFrame::raw(Bytes::from_static(b))
    }

    #[test]
    fn cast_fans_out_to_group() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let rxs: Vec<_> = (1..=3)
            .map(|i| {
                let r = net.register(ep(i));
                net.join(g, ep(i));
                r
            })
            .collect();
        assert_eq!(net.cast(ep(1), raw(b"m")), 3);
        for rx in &rxs {
            let f = rx.recv().unwrap();
            assert_eq!(f.from, ep(1));
            assert!(f.cast);
        }
        let s = net.stats();
        assert_eq!(s.frames_cast, 1);
        assert_eq!(s.deliveries, 3);
    }

    #[test]
    fn cast_batch_amortizes_the_snapshot() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let rxs: Vec<_> = (1..=2)
            .map(|i| {
                let r = net.register(ep(i));
                net.join(g, ep(i));
                r
            })
            .collect();
        let wires: Vec<WireFrame> = (0..10).map(|_| raw(b"b")).collect();
        assert_eq!(net.cast_batch(ep(1), wires), 20);
        for rx in &rxs {
            let mut got = 0;
            while rx.try_recv().is_ok() {
                got += 1;
            }
            assert_eq!(got, 10);
        }
        let s = net.stats();
        assert_eq!(s.frames_cast, 10);
        assert_eq!(s.deliveries, 20);
    }

    #[test]
    fn send_targets_only_destinations() {
        let net = LoopbackNet::new();
        let _rx1 = net.register(ep(1));
        let rx2 = net.register(ep(2));
        assert_eq!(net.send(ep(1), &[ep(2)], raw(b"s")), 1);
        assert!(!rx2.recv().unwrap().cast);
        assert!(rx2.try_recv().is_err());
        assert_eq!(net.stats().frames_sent, 1);
    }

    #[test]
    fn deregister_stops_delivery() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let _rx1 = net.register(ep(1));
        let rx2 = net.register(ep(2));
        net.join(g, ep(1));
        net.join(g, ep(2));
        net.deregister(ep(2));
        assert_eq!(net.cast(ep(1), raw(b"m")), 1);
        drop(net);
        assert!(rx2.try_recv().is_err());
    }

    #[test]
    fn delivery_to_dropped_receiver_counts_as_closed_drop() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let _rx1 = net.register(ep(1));
        let rx2 = net.register(ep(2));
        net.join(g, ep(1));
        net.join(g, ep(2));
        // The receiver half is gone but ep(2) is still registered: the send
        // fails at the channel, which is the dropped-on-closed-channel class.
        drop(rx2);
        assert_eq!(net.cast(ep(1), raw(b"m")), 1);
        let s = net.stats();
        assert_eq!(s.deliveries, 1);
        assert_eq!(s.dropped_closed, 1);
    }

    #[test]
    fn unregistered_destination_counts_as_unregistered_drop() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let _rx1 = net.register(ep(1));
        net.join(g, ep(1));
        // ep(2) joined but never registered: a harness ordering bug.
        net.join(g, ep(2));
        assert_eq!(net.cast(ep(1), raw(b"m")), 1);
        assert_eq!(net.send(ep(1), &[ep(2), ep(3)], raw(b"s")), 0);
        let s = net.stats();
        assert_eq!(s.dropped_unregistered, 3);
        assert_eq!(s.dropped_closed, 0);
    }

    #[test]
    fn custom_sink_receives_frames() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let _rx1 = net.register(ep(1));
        let got = Arc::new(AtomicU64::new(0));
        let got2 = Arc::clone(&got);
        net.register_sink(
            ep(2),
            Arc::new(move |_f: Frame| {
                got2.fetch_add(1, Ordering::Relaxed);
                true
            }),
        );
        net.join(g, ep(1));
        net.join(g, ep(2));
        assert_eq!(net.cast(ep(1), raw(b"m")), 2);
        assert_eq!(got.load(Ordering::Relaxed), 1);
    }

    /// The regression the snapshot-then-send discipline exists for: a
    /// receiver whose sink is slow (blocking in `deliver`) must not hold the
    /// registry lock and thereby stall senders between unrelated endpoints.
    #[test]
    fn slow_receiver_does_not_stall_unrelated_senders() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let _rx1 = net.register(ep(1));
        net.register_sink(
            ep(2),
            Arc::new(|_f: Frame| {
                std::thread::sleep(Duration::from_millis(200));
                true
            }),
        );
        net.join(g, ep(1));
        net.join(g, ep(2));
        // Unrelated pair in its own group.
        let _rx3 = net.register(ep(3));
        let rx4 = net.register(ep(4));
        let g2 = GroupAddr::new(2);
        net.join(g2, ep(3));
        net.join(g2, ep(4));

        // A cast into the slow sink, running on another thread, holds no lock
        // while it sleeps...
        let slow_net = net.clone();
        let slow = std::thread::spawn(move || {
            slow_net.cast(ep(1), raw(b"slow"));
        });
        std::thread::sleep(Duration::from_millis(20)); // let it enter the sleep
                                                       // ...so the unrelated sender completes immediately.
        let t0 = Instant::now();
        assert_eq!(net.cast(ep(3), raw(b"fast")), 2);
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(100),
            "unrelated cast stalled behind a slow receiver: {elapsed:?}"
        );
        assert_eq!(rx4.recv().unwrap().from, ep(3));
        slow.join().unwrap();
    }

    #[test]
    fn works_across_threads() {
        let net = LoopbackNet::new();
        let g = GroupAddr::new(1);
        let rx = net.register(ep(2));
        net.join(g, ep(1));
        net.join(g, ep(2));
        let net2 = net.clone();
        // Sender must be registered to have a loopback queue; register it.
        let _rx1 = net.register(ep(1));
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                net2.cast(ep(1), raw(b"m"));
            }
        });
        h.join().unwrap();
        let mut got = 0;
        while rx.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 100);
        let s = net.stats();
        assert_eq!(s.frames_cast, 100);
        assert_eq!(s.deliveries, 200);
    }
}
