//! The deterministic simulated datagram network.
//!
//! [`SimNetwork`] models the "basic protocol class that supports best-effort
//! byte delivery" of §2: messages may be **delayed**, **lost**, **garbled**,
//! **duplicated**, or **reordered**, frames larger than the MTU are dropped
//! (motivating FRAG), and the membership of network *partitions* can change
//! over time (motivating MBRSHIP/MERGE).  It provides exactly property `P1`
//! (best-effort delivery) of Table 4.
//!
//! The network is a pure function of its configuration and the caller's RNG:
//! given a frame to transmit it returns the [`Delivery`] events that should
//! be scheduled, with their virtual arrival times.  The discrete-event
//! executor in `horus-sim` owns the calendar; this type owns the physics.

use crate::fault::{FaultDrop, FaultPlan, FaultRule};
use crate::sched::{ChanceKind, NetScheduler};
use bytes::Bytes;
use horus_core::addr::{EndpointAddr, GroupAddr};
use horus_core::frame::WireFrame;
use horus_core::time::SimTime;
use horus_core::trace::{DropReason, TraceEvent, TraceKind, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Tunable physics of the simulated network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Minimum one-way latency between distinct endpoints.
    pub latency_min: Duration,
    /// Maximum one-way latency (uniformly distributed; a wide range causes
    /// reordering between consecutive frames).
    pub latency_max: Duration,
    /// Latency of an endpoint's loopback delivery of its own multicast.
    /// Loopback is reliable and partition-immune.
    pub local_latency: Duration,
    /// Probability that a frame is silently lost.
    pub loss: f64,
    /// Probability that a frame is delivered twice.
    pub duplicate: f64,
    /// Probability that one byte of the frame is corrupted in flight.
    pub garble: f64,
    /// Frames larger than this are dropped (classic datagram MTU).
    pub mtu: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency_min: Duration::from_micros(50),
            latency_max: Duration::from_micros(200),
            local_latency: Duration::from_micros(5),
            loss: 0.0,
            duplicate: 0.0,
            garble: 0.0,
            mtu: 1500,
        }
    }
}

impl NetConfig {
    /// A perfectly reliable, low-jitter network (protocol logic tests).
    pub fn reliable() -> Self {
        NetConfig::default()
    }

    /// A lossy WAN-ish network for stress tests.
    pub fn lossy(loss: f64) -> Self {
        NetConfig { loss, latency_max: Duration::from_millis(2), ..NetConfig::default() }
    }
}

/// Counters kept by the network model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the network for transmission.
    pub frames_sent: u64,
    /// Point deliveries produced (one frame to N receivers counts N).
    pub deliveries: u64,
    /// Deliveries suppressed by *random* (uniform `NetConfig::loss`) loss.
    /// Targeted fault-plan drops are counted separately below.
    pub dropped_loss: u64,
    /// Deliveries suppressed because sender and receiver are in different
    /// partitions.
    pub dropped_partition: u64,
    /// Deliveries suppressed by a [`FaultRule::DirectedLoss`] rule.
    pub dropped_directed: u64,
    /// Deliveries suppressed by a set-based [`FaultRule::Partition`] rule
    /// (the declarative, windowed cousin of `dropped_partition` above).
    pub dropped_fault_partition: u64,
    /// Deliveries suppressed by a [`FaultRule::OneWayCut`] rule.
    pub dropped_cut: u64,
    /// Deliveries suppressed inside a [`FaultRule::BurstLoss`] window.
    pub dropped_burst: u64,
    /// Deliveries corrupted by a [`FaultRule::TargetedCorrupt`] rule
    /// (random garbling is counted in `garbled`, not here).
    pub corrupted_targeted: u64,
    /// Frames dropped for exceeding the MTU.
    pub dropped_mtu: u64,
    /// Pending deliveries removed by an explorer/test via controlled drop
    /// (`SimWorld::drop_pending`), as opposed to the network's own physics.
    pub dropped_induced: u64,
    /// Extra deliveries injected by duplication.
    pub duplicated: u64,
    /// Deliveries whose payload was corrupted.
    pub garbled: u64,
    /// Total payload bytes accepted for transmission.
    pub bytes_sent: u64,
}

/// One scheduled arrival produced by the network model.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Receiving endpoint.
    pub to: EndpointAddr,
    /// Transport-level sender.
    pub from: EndpointAddr,
    /// Whether this was a multicast (`true`) or point-to-point frame.
    pub cast: bool,
    /// Arrival time.
    pub at: SimTime,
    /// The (possibly garbled) frame.
    pub wire: WireFrame,
}

/// The simulated datagram network: transport-level group membership,
/// partition state, and per-frame physics.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    config: NetConfig,
    /// Transport-level group membership (who receives casts to a group).
    groups: BTreeMap<GroupAddr, Vec<EndpointAddr>>,
    /// Which group an endpoint joined (one per endpoint in this model).
    member_of: BTreeMap<EndpointAddr, GroupAddr>,
    /// Partition region of each endpoint; unlisted endpoints are region 0.
    regions: BTreeMap<EndpointAddr, u32>,
    /// Scripted targeted faults, composed with the global physics above.
    faults: FaultPlan,
    stats: NetStats,
    /// Cached membership/partition digest (see
    /// [`SimNetwork::digest_cached_into`]), cleared on every join, leave,
    /// partition, and heal.  Fault state is never cached: rule hit counters
    /// advance on the frame hot path, where a digest would be invalidated
    /// far more often than it is read.
    membership_digest: std::cell::Cell<Option<u64>>,
    /// Trace hook for physics drops (loss, partitions, MTU).  `None` (the
    /// default) costs one branch per drop; successful deliveries are traced
    /// at the receiving stack, not here.
    tracer: Option<Arc<dyn TraceSink>>,
}

impl SimNetwork {
    /// Creates a network with the given physics.
    pub fn new(config: NetConfig) -> Self {
        SimNetwork {
            config,
            groups: BTreeMap::new(),
            member_of: BTreeMap::new(),
            regions: BTreeMap::new(),
            faults: FaultPlan::new(),
            stats: NetStats::default(),
            membership_digest: std::cell::Cell::new(None),
            tracer: None,
        }
    }

    /// Installs a trace sink that observes physics drops.
    pub fn set_tracer(&mut self, tracer: Arc<dyn TraceSink>) {
        self.tracer = Some(tracer);
    }

    /// Removes the trace sink.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    fn trace_drop(&self, at: SimTime, ep: EndpointAddr, reason: DropReason) {
        if let Some(t) = &self.tracer {
            t.record(TraceEvent {
                at,
                ep,
                kind: TraceKind::FrameDrop { digest: 0, seq: 0, reason },
            });
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Mutable access to the configuration (tests tighten physics on the
    /// fly, e.g. "from t=2s the network is lossless").
    pub fn config_mut(&mut self) -> &mut NetConfig {
        &mut self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable counters (executors account induced drops here).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Feeds the network's delivery-relevant state — group membership and
    /// partition regions — into a model-checking state digest.  Statistics
    /// counters are deliberately excluded (they are monotonic observers, not
    /// behaviour), but fault-rule hit counters are included because rules
    /// like `BurstLoss` change behaviour as they accumulate hits.
    pub fn digest_into(&self, d: &mut horus_core::digest::StateDigest) {
        d.write_u64(self.membership_digest_fresh());
        self.faults.digest_into(d);
    }

    /// [`SimNetwork::digest_into`] with the membership/partition part served
    /// from a cache — bit-identical by construction, since both paths write
    /// the same sub-digest value followed by the same fault-plan writes.
    pub fn digest_cached_into(&self, d: &mut horus_core::digest::StateDigest) {
        let m = match self.membership_digest.get() {
            Some(v) => v,
            None => {
                let v = self.membership_digest_fresh();
                self.membership_digest.set(Some(v));
                v
            }
        };
        d.write_u64(m);
        self.faults.digest_into(d);
    }

    fn membership_digest_fresh(&self) -> u64 {
        let mut e = horus_core::digest::StateDigest::new();
        for (g, members) in &self.groups {
            e.write_u64(g.raw());
            for m in members {
                e.write_u64(m.raw());
            }
            e.write_bytes(&[0xfd]);
        }
        for (ep, region) in &self.regions {
            e.write_u64(ep.raw());
            e.write_u64(*region as u64);
        }
        e.finish()
    }

    /// Installs a targeted fault rule, returning its index into
    /// [`SimNetwork::fault_hits`].
    pub fn add_fault(&mut self, rule: FaultRule) -> usize {
        self.faults.add(rule)
    }

    /// The active fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access to the fault plan (scenario scripts add or clear
    /// rules mid-run).
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Per-rule hit counts, parallel to the order rules were added.
    pub fn fault_hits(&self) -> &[u64] {
        self.faults.hits()
    }

    /// Registers `ep` as a transport-level receiver of `group` multicasts.
    pub fn join(&mut self, group: GroupAddr, ep: EndpointAddr) {
        self.membership_digest.set(None);
        let members = self.groups.entry(group).or_default();
        if !members.contains(&ep) {
            members.push(ep);
        }
        self.member_of.insert(ep, group);
    }

    /// Deregisters `ep` from its group (leave, destroy, or crash).
    pub fn leave(&mut self, ep: EndpointAddr) {
        self.membership_digest.set(None);
        if let Some(group) = self.member_of.remove(&ep) {
            if let Some(members) = self.groups.get_mut(&group) {
                members.retain(|&m| m != ep);
            }
        }
    }

    /// Transport-level receivers of `ep`'s multicasts (including `ep`).
    pub fn cast_targets(&self, ep: EndpointAddr) -> Vec<EndpointAddr> {
        self.member_of.get(&ep).and_then(|g| self.groups.get(g)).cloned().unwrap_or_default()
    }

    /// Splits the network: each inner slice becomes one partition region.
    /// Endpoints not mentioned keep their previous region.
    pub fn partition(&mut self, regions: &[&[EndpointAddr]]) {
        self.membership_digest.set(None);
        for (i, eps) in regions.iter().enumerate() {
            for &ep in *eps {
                self.regions.insert(ep, i as u32 + 1);
            }
        }
    }

    /// Heals all partitions: every endpoint returns to region 0.
    pub fn heal(&mut self) {
        self.membership_digest.set(None);
        self.regions.clear();
    }

    /// Whether two endpoints can currently exchange frames.
    pub fn connected(&self, a: EndpointAddr, b: EndpointAddr) -> bool {
        self.region(a) == self.region(b)
    }

    fn region(&self, ep: EndpointAddr) -> u32 {
        self.regions.get(&ep).copied().unwrap_or(0)
    }

    /// Transmits a multicast frame from `from` to its transport group
    /// (including a reliable loopback to `from` itself), returning the
    /// deliveries to schedule.
    pub fn cast(
        &mut self,
        from: EndpointAddr,
        wire: WireFrame,
        now: SimTime,
        sched: &mut dyn NetScheduler,
    ) -> Vec<Delivery> {
        let targets = self.cast_targets(from);
        self.transmit(from, &targets, true, wire, now, sched)
    }

    /// Transmits a point-to-point frame to explicit destinations.
    pub fn send(
        &mut self,
        from: EndpointAddr,
        dests: &[EndpointAddr],
        wire: WireFrame,
        now: SimTime,
        sched: &mut dyn NetScheduler,
    ) -> Vec<Delivery> {
        self.transmit(from, dests, false, wire, now, sched)
    }

    fn transmit(
        &mut self,
        from: EndpointAddr,
        dests: &[EndpointAddr],
        cast: bool,
        wire: WireFrame,
        now: SimTime,
        sched: &mut dyn NetScheduler,
    ) -> Vec<Delivery> {
        self.stats.frames_sent += 1;
        if wire.len() > self.config.mtu {
            self.stats.dropped_mtu += 1;
            self.trace_drop(now, from, DropReason::Mtu);
            return Vec::new();
        }
        self.stats.bytes_sent += wire.len() as u64;
        // Targeted nth-frame corruption is decided once per frame (the
        // per-source frame counter must not depend on the receiver set).
        let corrupt_frame = self.faults.corrupt_frame(from);
        let mut out = Vec::with_capacity(dests.len());
        for &to in dests {
            if to == from {
                // Loopback: reliable, immune to loss/garbling/partitions,
                // and out of reach of the fault plan (a flaky NIC still
                // hands the local copy up without touching the wire).
                self.stats.deliveries += 1;
                out.push(Delivery {
                    to,
                    from,
                    cast,
                    at: now + self.config.local_latency,
                    wire: wire.clone(),
                });
                continue;
            }
            if !self.connected(from, to) {
                self.stats.dropped_partition += 1;
                self.trace_drop(now, to, DropReason::Partition);
                continue;
            }
            match self.faults.drop_verdict(from, to, now, sched) {
                Some(FaultDrop::Cut) => {
                    self.stats.dropped_cut += 1;
                    self.trace_drop(now, to, DropReason::Partition);
                    continue;
                }
                Some(FaultDrop::Burst) => {
                    self.stats.dropped_burst += 1;
                    self.trace_drop(now, to, DropReason::Partition);
                    continue;
                }
                Some(FaultDrop::Directed) => {
                    self.stats.dropped_directed += 1;
                    self.trace_drop(now, to, DropReason::Partition);
                    continue;
                }
                Some(FaultDrop::Partition) => {
                    self.stats.dropped_fault_partition += 1;
                    self.trace_drop(now, to, DropReason::Partition);
                    continue;
                }
                None => {}
            }
            if sched.chance(ChanceKind::Loss, self.config.loss) {
                self.stats.dropped_loss += 1;
                self.trace_drop(now, to, DropReason::Loss);
                continue;
            }
            let copies = if self.config.duplicate > 0.0
                && sched.chance(ChanceKind::Duplicate, self.config.duplicate)
            {
                self.stats.duplicated += 1;
                2
            } else {
                1
            };
            for _ in 0..copies {
                let at = now + self.sample_latency(sched);
                let mut payload = if self.config.garble > 0.0
                    && sched.chance(ChanceKind::Garble, self.config.garble)
                {
                    self.stats.garbled += 1;
                    garble(&wire, sched)
                } else {
                    wire.clone()
                };
                if corrupt_frame {
                    self.stats.corrupted_targeted += 1;
                    payload = garble(&payload, sched);
                }
                self.stats.deliveries += 1;
                out.push(Delivery { to, from, cast, at, wire: payload });
            }
        }
        out
    }

    fn sample_latency(&self, sched: &mut dyn NetScheduler) -> Duration {
        let lo = self.config.latency_min.as_nanos() as u64;
        let hi = self.config.latency_max.as_nanos() as u64;
        if hi <= lo {
            return self.config.latency_min;
        }
        Duration::from_nanos(sched.latency_nanos(lo, hi))
    }
}

/// Flips one random bit.  Garbling needs the contiguous byte string, so
/// this is the one network path that flattens a frame; the corrupted copy is
/// re-split at the canonical boundary (the checksum rejects it regardless of
/// where the flip landed).
fn garble(wire: &WireFrame, sched: &mut dyn NetScheduler) -> WireFrame {
    let mut v = wire.to_bytes().to_vec();
    if !v.is_empty() {
        let i = sched.pick(v.len());
        v[i] ^= 1u8 << sched.pick(8);
    }
    WireFrame::from_bytes(Bytes::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn raw(b: &'static [u8]) -> WireFrame {
        WireFrame::raw(Bytes::from_static(b))
    }

    fn joined_net(config: NetConfig) -> SimNetwork {
        let mut n = SimNetwork::new(config);
        let g = GroupAddr::new(1);
        for i in 1..=3 {
            n.join(g, ep(i));
        }
        n
    }

    #[test]
    fn cast_reaches_all_members_including_loopback() {
        let mut n = joined_net(NetConfig::reliable());
        let d = n.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        let mut tos: Vec<_> = d.iter().map(|d| d.to.raw()).collect();
        tos.sort();
        assert_eq!(tos, vec![1, 2, 3]);
        assert!(d.iter().all(|d| d.cast));
    }

    #[test]
    fn loopback_is_fast_and_reliable() {
        let mut cfg = NetConfig::reliable();
        cfg.loss = 1.0; // lose everything remote
        let mut n = joined_net(cfg);
        let d = n.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, ep(1));
        assert_eq!(n.stats().dropped_loss, 2);
    }

    #[test]
    fn partitions_block_cross_region_traffic() {
        let mut n = joined_net(NetConfig::reliable());
        n.partition(&[&[ep(1)], &[ep(2), ep(3)]]);
        let d = n.cast(ep(2), raw(b"x"), SimTime::ZERO, &mut rng());
        let mut tos: Vec<_> = d.iter().map(|d| d.to.raw()).collect();
        tos.sort();
        assert_eq!(tos, vec![2, 3]);
        assert!(!n.connected(ep(1), ep(2)));
        n.heal();
        assert!(n.connected(ep(1), ep(2)));
    }

    #[test]
    fn mtu_drops_whole_frame() {
        let mut cfg = NetConfig::reliable();
        cfg.mtu = 8;
        let mut n = joined_net(cfg);
        let d = n.cast(ep(1), WireFrame::raw(vec![0u8; 9]), SimTime::ZERO, &mut rng());
        assert!(d.is_empty());
        assert_eq!(n.stats().dropped_mtu, 1);
    }

    #[test]
    fn duplication_and_garbling_are_counted() {
        let mut cfg = NetConfig::reliable();
        cfg.duplicate = 1.0;
        cfg.garble = 1.0;
        let mut n = joined_net(cfg);
        let d = n.cast(ep(1), raw(b"abcd"), SimTime::ZERO, &mut rng());
        // 2 remote receivers x 2 copies + 1 loopback.
        assert_eq!(d.len(), 5);
        assert_eq!(n.stats().duplicated, 2);
        assert!(n.stats().garbled >= 2);
        // Loopback copy is never garbled.
        let local = d.iter().find(|d| d.to == ep(1)).unwrap();
        assert_eq!(&local.wire.to_bytes()[..], b"abcd");
    }

    #[test]
    fn unicast_send_targets_exact_destinations() {
        let mut n = joined_net(NetConfig::reliable());
        let d = n.send(ep(1), &[ep(3)], raw(b"x"), SimTime::ZERO, &mut rng());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].to, ep(3));
        assert!(!d[0].cast);
    }

    #[test]
    fn latency_within_bounds_and_deterministic() {
        let mut n = joined_net(NetConfig::reliable());
        let d1 = n.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        let mut n2 = joined_net(NetConfig::reliable());
        let d2 = n2.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.at, b.at, "same seed, same physics");
        }
        for d in d1.iter().filter(|d| d.to != ep(1)) {
            let cfg = NetConfig::reliable();
            assert!(d.at >= SimTime::ZERO + cfg.latency_min);
            assert!(d.at <= SimTime::ZERO + cfg.latency_max);
        }
    }

    #[test]
    fn one_way_cut_blocks_only_forward_direction() {
        let mut n = joined_net(NetConfig::reliable());
        n.add_fault(FaultRule::OneWayCut {
            from: ep(1),
            to: ep(2),
            start: SimTime::ZERO,
            end: None,
        });
        let d = n.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        assert!(d.iter().all(|d| d.to != ep(2)), "forward direction cut");
        assert!(d.iter().any(|d| d.to == ep(3)), "other links untouched");
        assert_eq!(n.stats().dropped_cut, 1);
        assert_eq!(n.stats().dropped_loss, 0, "cut drops are not random loss");
        let d = n.cast(ep(2), raw(b"y"), SimTime::ZERO, &mut rng());
        assert!(d.iter().any(|d| d.to == ep(1)), "reverse direction flows");
    }

    #[test]
    fn partition_rule_cuts_both_directions_and_heals_on_window_end() {
        let mut n = joined_net(NetConfig::reliable());
        n.add_fault(FaultRule::Partition {
            sides: vec![vec![ep(1)], vec![ep(2), ep(3)]],
            start: SimTime::ZERO,
            end: Some(SimTime::from_millis(50)),
        });
        let d = n.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        assert!(d.iter().all(|d| d.to == ep(1)), "only the loopback survives");
        let d = n.cast(ep(2), raw(b"y"), SimTime::ZERO, &mut rng());
        assert!(d.iter().all(|d| d.to != ep(1)), "symmetric: reverse direction cut too");
        assert!(d.iter().any(|d| d.to == ep(3)), "same-side traffic flows");
        assert_eq!(n.stats().dropped_fault_partition, 3);
        // Past the window the rule heals without any explicit heal() call.
        let t = SimTime::from_millis(50);
        let d = n.cast(ep(1), raw(b"z"), t, &mut rng());
        assert_eq!(d.iter().filter(|d| d.to != ep(1)).count(), 2, "healed");
        assert_eq!(n.stats().dropped_fault_partition, 3);
    }

    #[test]
    fn targeted_corruption_spares_loopback_and_counts_frames() {
        let mut n = joined_net(NetConfig::reliable());
        let r = n.add_fault(FaultRule::TargetedCorrupt { src: ep(1), every_nth: 1 });
        let d = n.cast(ep(1), raw(b"abcd"), SimTime::ZERO, &mut rng());
        let local = d.iter().find(|d| d.to == ep(1)).unwrap();
        assert_eq!(&local.wire.to_bytes()[..], b"abcd", "loopback never corrupted");
        for rd in d.iter().filter(|d| d.to != ep(1)) {
            assert_ne!(&rd.wire.to_bytes()[..], b"abcd", "remote copy corrupted");
        }
        // Two corrupted deliveries from one corrupted frame.
        assert_eq!(n.stats().corrupted_targeted, 2);
        assert_eq!(n.stats().garbled, 0, "targeted corruption is not random garbling");
        assert_eq!(n.fault_hits()[r], 1, "rule hit counted per frame");
        // Frames from other sources are untouched and uncounted.
        let d = n.cast(ep(2), raw(b"efgh"), SimTime::ZERO, &mut rng());
        assert!(d.iter().all(|d| &d.wire.to_bytes()[..] == b"efgh"));
        assert_eq!(n.fault_hits()[r], 1);
    }

    #[test]
    fn directed_loss_composes_with_global_physics() {
        let mut cfg = NetConfig::reliable();
        cfg.duplicate = 1.0;
        let mut n = joined_net(cfg);
        let r = n.add_fault(FaultRule::DirectedLoss { from: ep(1), to: ep(2), rate: 1.0 });
        let d = n.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        // ep2's copies are all eaten by the targeted rule, before
        // duplication; ep3 still gets its duplicated pair.
        assert!(d.iter().all(|d| d.to != ep(2)));
        assert_eq!(d.iter().filter(|d| d.to == ep(3)).count(), 2);
        assert_eq!(n.stats().dropped_directed, 1);
        assert_eq!(n.stats().dropped_loss, 0);
        assert_eq!(n.fault_hits()[r], 1);
    }

    #[test]
    fn leave_removes_from_group() {
        let mut n = joined_net(NetConfig::reliable());
        n.leave(ep(2));
        let d = n.cast(ep(1), raw(b"x"), SimTime::ZERO, &mut rng());
        assert!(d.iter().all(|d| d.to != ep(2)));
    }
}
