//! The network-nondeterminism choice points, extracted behind a trait.
//!
//! Everything random the simulated network does — loss dice, duplication,
//! garbling, latency jitter, directed-loss coins — flows through a
//! [`NetScheduler`].  The production implementation, [`RandomScheduler`],
//! wraps the same seeded `StdRng` the network always consumed, drawing in
//! exactly the same order, so every pre-existing `(seed, script)` replay is
//! byte-identical.  The bounded model checker (`horus-check`) substitutes
//! [`FixedScheduler`], which collapses the physics to a deterministic
//! no-fault network and moves drop/reorder decisions up to the explorer's
//! own choice list.
//!
//! `StdRng` itself implements the trait, so call sites that historically
//! passed `&mut StdRng` keep compiling (and keep their byte streams).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which probabilistic choice point is being resolved (diagnostic only —
/// implementations may ignore it, but a controlled scheduler can use it to
/// budget fault classes separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanceKind {
    /// Uniform random frame loss (`NetConfig::loss`).
    Loss,
    /// Frame duplication (`NetConfig::duplicate`).
    Duplicate,
    /// Random in-flight corruption (`NetConfig::garble`).
    Garble,
    /// A `FaultRule::DirectedLoss` coin.
    DirectedLoss,
}

/// Resolver for the network's probabilistic choice points.
///
/// Implementations must be deterministic functions of their own state: the
/// same construction plus the same call sequence must yield the same
/// answers, or `(seed, script)` replay breaks.
pub trait NetScheduler {
    /// Resolves a probabilistic event with probability `p`.
    fn chance(&mut self, kind: ChanceKind, p: f64) -> bool;

    /// Samples a one-way latency in `[lo, hi]` nanoseconds (inclusive).
    fn latency_nanos(&mut self, lo: u64, hi: u64) -> u64;

    /// Picks an index in `[0, n)` (garble positions / bit choices).
    fn pick(&mut self, n: usize) -> usize;

    /// Duplicates this scheduler's full state (RNG position included), if
    /// supported.  Opt-in, like `Layer::clone_box`: the default `None`
    /// makes world snapshotting fall back to re-execution.
    fn clone_box(&self) -> Option<Box<dyn NetScheduler + Send>> {
        None
    }
}

impl NetScheduler for StdRng {
    fn chance(&mut self, _kind: ChanceKind, p: f64) -> bool {
        self.gen_bool(p)
    }

    fn latency_nanos(&mut self, lo: u64, hi: u64) -> u64 {
        self.gen_range(lo..=hi)
    }

    fn pick(&mut self, n: usize) -> usize {
        self.gen_range(0..n)
    }
}

/// The production scheduler: the world's seeded RNG, drawn in the exact
/// order the network historically consumed it.
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Seeds the scheduler (same stream as `StdRng::seed_from_u64`).
    pub fn new(seed: u64) -> Self {
        RandomScheduler { rng: StdRng::seed_from_u64(seed) }
    }
}

impl NetScheduler for RandomScheduler {
    fn clone_box(&self) -> Option<Box<dyn NetScheduler + Send>> {
        Some(Box::new(self.clone()))
    }

    fn chance(&mut self, kind: ChanceKind, p: f64) -> bool {
        self.rng.chance(kind, p)
    }

    fn latency_nanos(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.latency_nanos(lo, hi)
    }

    fn pick(&mut self, n: usize) -> usize {
        self.rng.pick(n)
    }
}

/// The model checker's scheduler: no randomness at all.  Probabilistic
/// faults never fire, latency pins to the lower bound, and index choices
/// take the first option — the explorer injects drops and reorderings
/// explicitly, as recorded choices, instead of via dice.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedScheduler;

impl NetScheduler for FixedScheduler {
    fn clone_box(&self) -> Option<Box<dyn NetScheduler + Send>> {
        Some(Box::new(*self))
    }

    fn chance(&mut self, _kind: ChanceKind, _p: f64) -> bool {
        false
    }

    fn latency_nanos(&mut self, lo: u64, _hi: u64) -> u64 {
        lo
    }

    fn pick(&mut self, _n: usize) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdrng_and_random_scheduler_share_one_stream() {
        let mut raw = StdRng::seed_from_u64(42);
        let mut wrapped = RandomScheduler::new(42);
        for i in 0..100u64 {
            let p = (i % 10) as f64 / 10.0;
            assert_eq!(raw.gen_bool(p), wrapped.chance(ChanceKind::Loss, p));
            assert_eq!(raw.gen_range(50u64..=200), wrapped.latency_nanos(50, 200));
            assert_eq!(raw.gen_range(0..7usize), wrapped.pick(7));
        }
    }

    #[test]
    fn fixed_scheduler_is_inert() {
        let mut s = FixedScheduler;
        assert!(!s.chance(ChanceKind::Loss, 0.99));
        assert_eq!(s.latency_nanos(50, 200), 50);
        assert_eq!(s.pick(8), 0);
    }
}
