//! # horus-net
//!
//! Network substrates for Horus stacks.
//!
//! The paper runs its lowest layer (COM) over ATM or the Internet; this
//! reproduction substitutes a **deterministic simulated datagram network**
//! ([`sim::SimNetwork`]) with configurable delay, loss, duplication,
//! reordering, garbling, an MTU, and partitions — everything the protocol
//! catalogue of Figure 1 exists to overcome — plus an **in-process threaded
//! loopback transport** ([`threaded::LoopbackNet`]) used by the real-time
//! benchmarks.  Both deliver opaque wire frames between endpoint addresses
//! and know which endpoints joined which transport-level group, exactly the
//! service the COM layer adapts to the HCPI.

pub mod fault;
pub mod sched;
pub mod sim;
pub mod threaded;

pub use fault::{FaultDrop, FaultPlan, FaultRule};
pub use sched::{ChanceKind, FixedScheduler, NetScheduler, RandomScheduler};
pub use sim::{Delivery, NetConfig, NetStats, SimNetwork};
pub use threaded::{FrameSink, LoopbackNet, LoopbackStatsSnapshot};
