//! Targeted fault injection: the scripted counterpart to the random
//! physics of [`crate::sim::NetConfig`].
//!
//! `NetConfig` models a uniformly bad network — every frame faces the same
//! loss/garble dice.  Real failure scenarios are *asymmetric*: one
//! directed link degrades, a router drops traffic in one direction only, a
//! burst of congestion eats a window of frames, a flaky NIC corrupts every
//! n-th packet it sends.  A [`FaultPlan`] is an ordered list of such
//! [`FaultRule`]s, evaluated deterministically against virtual time and the
//! world RNG, and composable with the global physics (a frame that survives
//! the plan still faces random loss, duplication, and garbling).
//!
//! Every rule keeps a private hit counter ([`FaultPlan::hits`]) and the
//! network splits its drop accounting per rule kind (`NetStats::dropped_cut`
//! etc.), so a chaos test can assert that the injection it scripted actually
//! fired — and that nothing else did.

use crate::sched::{ChanceKind, NetScheduler};
use horus_core::addr::EndpointAddr;
use horus_core::time::SimTime;
use std::collections::BTreeMap;

/// One targeted fault, aimed at a directed link or a source endpoint.
///
/// All times are virtual; all rules are deterministic functions of
/// `(rule, frame history, virtual time, world RNG)`, so a `(seed, plan)`
/// pair replays byte-identically.
#[derive(Debug, Clone)]
pub enum FaultRule {
    /// The directed link `from → to` loses each frame with probability
    /// `rate` (the reverse direction is untouched).
    DirectedLoss {
        /// Transmitting endpoint.
        from: EndpointAddr,
        /// Receiving endpoint.
        to: EndpointAddr,
        /// Per-frame loss probability on this link.
        rate: f64,
    },
    /// A one-way (asymmetric) cut: **all** frames `from → to` are dropped
    /// while the cut is active; traffic `to → from` still flows.
    OneWayCut {
        /// Transmitting endpoint.
        from: EndpointAddr,
        /// Receiving endpoint.
        to: EndpointAddr,
        /// When the cut takes effect.
        start: SimTime,
        /// When the link heals; `None` means the cut is permanent.
        end: Option<SimTime>,
    },
    /// A burst-loss window: every frame `from → to` inside
    /// `[start, end)` is dropped (models a congestion burst or a
    /// route flap on one directed link).
    BurstLoss {
        /// Transmitting endpoint.
        from: EndpointAddr,
        /// Receiving endpoint.
        to: EndpointAddr,
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
    },
    /// Corrupts every `every_nth` frame transmitted by `src` (to all of its
    /// remote receivers), modelling a flaky sender NIC.  Counting starts at
    /// the first frame `src` sends after the rule is installed.
    TargetedCorrupt {
        /// The faulty transmitter.
        src: EndpointAddr,
        /// Corrupt frames number `n, 2n, 3n, …` from `src` (must be ≥ 1).
        every_nth: u64,
    },
    /// A set-based **symmetric** partition: while active, every frame
    /// between endpoints on *different* sides is dropped, in both
    /// directions.  Endpoints not listed on any side are unaffected (they
    /// keep full connectivity).  Unlike [`crate::SimNetwork::partition`] —
    /// which is a mutable region map with a single global
    /// [`crate::SimNetwork::heal`] — a `Partition` rule is a declarative
    /// window: it heals by itself when `end` passes, several rules can
    /// overlap, and the rule (with its hit counter) participates in state
    /// digests and `(seed, plan)` replay.
    Partition {
        /// The sides of the split (≥ 2 non-empty, mutually disjoint sets).
        sides: Vec<Vec<EndpointAddr>>,
        /// When the partition takes effect.
        start: SimTime,
        /// When the partition heals; `None` means it never heals.
        end: Option<SimTime>,
    },
    /// A suspicion storm: every `observer` is made to suspect `target`
    /// (as if its failure detector fired) the moment the rule is
    /// installed.  This rule has no effect on frame delivery — the
    /// simulation harness executes it by injecting `Down::Suspect` into
    /// each observer's stack and records the injections via
    /// [`FaultPlan::record_hits`] — but it lives in the plan so chaos
    /// soaks can serialize, digest, shrink, and replay it alongside the
    /// link rules.
    SuspicionStorm {
        /// The endpoints whose detectors fire.
        observers: Vec<EndpointAddr>,
        /// The endpoint they all suspect.
        target: EndpointAddr,
    },
}

/// Which side of a partition `ep` sits on, if any.
fn side_of(sides: &[Vec<EndpointAddr>], ep: EndpointAddr) -> Option<usize> {
    sides.iter().position(|s| s.contains(&ep))
}

impl FaultRule {
    /// Feeds the rule's identity into a state digest, field-direct (no
    /// `Debug` formatting, no allocation; the probability digests as its
    /// bit pattern).
    pub fn digest_into(&self, d: &mut horus_core::digest::StateDigest) {
        match *self {
            FaultRule::DirectedLoss { from, to, rate } => {
                d.write_u64(1);
                d.write_u64(from.raw());
                d.write_u64(to.raw());
                d.write_u64(rate.to_bits());
            }
            FaultRule::OneWayCut { from, to, start, end } => {
                d.write_u64(2);
                d.write_u64(from.raw());
                d.write_u64(to.raw());
                d.write_u64(start.as_nanos());
                // Disambiguate "permanent" from any finite end time.
                match end {
                    Some(e) => {
                        d.write_u64(1);
                        d.write_u64(e.as_nanos());
                    }
                    None => d.write_u64(0),
                }
            }
            FaultRule::BurstLoss { from, to, start, end } => {
                d.write_u64(3);
                d.write_u64(from.raw());
                d.write_u64(to.raw());
                d.write_u64(start.as_nanos());
                d.write_u64(end.as_nanos());
            }
            FaultRule::TargetedCorrupt { src, every_nth } => {
                d.write_u64(4);
                d.write_u64(src.raw());
                d.write_u64(every_nth);
            }
            FaultRule::Partition { ref sides, start, end } => {
                d.write_u64(5);
                d.write_u64(sides.len() as u64);
                for side in sides {
                    d.write_u64(side.len() as u64);
                    for ep in side {
                        d.write_u64(ep.raw());
                    }
                }
                d.write_u64(start.as_nanos());
                match end {
                    Some(e) => {
                        d.write_u64(1);
                        d.write_u64(e.as_nanos());
                    }
                    None => d.write_u64(0),
                }
            }
            FaultRule::SuspicionStorm { ref observers, target } => {
                d.write_u64(6);
                d.write_u64(observers.len() as u64);
                for ep in observers {
                    d.write_u64(ep.raw());
                }
                d.write_u64(target.raw());
            }
        }
    }
}

/// Why the fault plan dropped a delivery (maps to a `NetStats` counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDrop {
    /// A [`FaultRule::DirectedLoss`] coin came up tails.
    Directed,
    /// A [`FaultRule::OneWayCut`] is active on the link.
    Cut,
    /// The delivery fell inside a [`FaultRule::BurstLoss`] window.
    Burst,
    /// The two endpoints sit on different sides of an active
    /// [`FaultRule::Partition`].
    Partition,
}

/// An ordered, deterministic schedule of targeted faults.
///
/// Rules are evaluated in insertion order; the first rule that drops a
/// delivery wins (deterministic cuts and bursts are checked before
/// probabilistic directed loss so that RNG consumption — and therefore
/// replay — does not depend on rule order).
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    hits: Vec<u64>,
    /// Frames transmitted per source since plan creation (for
    /// [`FaultRule::TargetedCorrupt`] counting).
    frames_from: BTreeMap<EndpointAddr, u64>,
}

impl FaultPlan {
    /// An empty plan (no targeted faults; zero RNG consumption).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Installs a rule, returning its index for [`FaultPlan::hits`].
    ///
    /// # Panics
    ///
    /// Panics on malformed rules (`rate` outside `[0, 1]`, `every_nth == 0`,
    /// or an empty burst window).
    pub fn add(&mut self, rule: FaultRule) -> usize {
        match &rule {
            FaultRule::DirectedLoss { rate, .. } => {
                assert!((0.0..=1.0).contains(rate), "loss rate must be in [0,1]");
            }
            FaultRule::TargetedCorrupt { every_nth, .. } => {
                assert!(*every_nth >= 1, "every_nth must be >= 1");
            }
            FaultRule::BurstLoss { start, end, .. } => {
                assert!(end > start, "burst window must be non-empty");
            }
            FaultRule::Partition { sides, start, end } => {
                assert!(sides.len() >= 2, "a partition needs at least two sides");
                assert!(sides.iter().all(|s| !s.is_empty()), "partition sides must be non-empty");
                let mut seen = Vec::new();
                for ep in sides.iter().flatten() {
                    assert!(!seen.contains(ep), "endpoint {ep:?} appears on two partition sides");
                    seen.push(*ep);
                }
                if let Some(e) = end {
                    assert!(e > start, "partition window must be non-empty");
                }
            }
            FaultRule::SuspicionStorm { observers, target } => {
                assert!(!observers.is_empty(), "a suspicion storm needs observers");
                assert!(!observers.contains(target), "an observer cannot suspect itself");
            }
            FaultRule::OneWayCut { .. } => {}
        }
        self.rules.push(rule);
        self.hits.push(0);
        self.rules.len() - 1
    }

    /// The installed rules, in insertion order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Per-rule hit counts, parallel to [`FaultPlan::rules`].  Drop rules
    /// count suppressed deliveries; [`FaultRule::TargetedCorrupt`] counts
    /// corrupted *frames* (one frame may fan out to several receivers).
    pub fn hits(&self) -> &[u64] {
        &self.hits
    }

    /// Feeds the plan's behavioural state into a state digest: every rule
    /// with its hit counter (rules like [`FaultRule::TargetedCorrupt`]
    /// change behaviour as hits accumulate), plus the per-source frame
    /// counters the corrupt rules count against.
    pub fn digest_into(&self, d: &mut horus_core::digest::StateDigest) {
        for (rule, hits) in self.rules.iter().zip(&self.hits) {
            rule.digest_into(d);
            d.write_u64(*hits);
        }
        for (ep, frames) in &self.frames_from {
            d.write_u64(ep.raw());
            d.write_u64(*frames);
        }
    }

    /// Credits `n` hits to rule `idx`.  Used by executors for rules the
    /// network itself cannot evaluate — e.g. the simulation harness bumps a
    /// [`FaultRule::SuspicionStorm`]'s counter once per injected suspicion —
    /// so chaos tests can assert those injections through the same
    /// [`FaultPlan::hits`] channel as link drops.
    pub fn record_hits(&mut self, idx: usize, n: u64) {
        self.hits[idx] += n;
    }

    /// Removes every rule (hit history and frame counters included).
    pub fn clear(&mut self) {
        self.rules.clear();
        self.hits.clear();
        self.frames_from.clear();
    }

    /// Whether the plan has no rules (the hot path skips evaluation).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decides whether the delivery `from → to` at `now` is dropped by a
    /// targeted rule.  Deterministic rules (cut, burst) are consulted before
    /// probabilistic ones so RNG draws only happen for frames that reach a
    /// `DirectedLoss` rule.
    pub(crate) fn drop_verdict(
        &mut self,
        from: EndpointAddr,
        to: EndpointAddr,
        now: SimTime,
        sched: &mut dyn NetScheduler,
    ) -> Option<FaultDrop> {
        for (i, rule) in self.rules.iter().enumerate() {
            match *rule {
                FaultRule::OneWayCut { from: f, to: t, start, end }
                    if f == from && t == to && now >= start && end.is_none_or(|e| now < e) =>
                {
                    self.hits[i] += 1;
                    return Some(FaultDrop::Cut);
                }
                FaultRule::BurstLoss { from: f, to: t, start, end }
                    if f == from && t == to && now >= start && now < end =>
                {
                    self.hits[i] += 1;
                    return Some(FaultDrop::Burst);
                }
                FaultRule::Partition { ref sides, start, end }
                    if now >= start
                        && end.is_none_or(|e| now < e)
                        && matches!(
                            (side_of(sides, from), side_of(sides, to)),
                            (Some(a), Some(b)) if a != b
                        ) =>
                {
                    self.hits[i] += 1;
                    return Some(FaultDrop::Partition);
                }
                _ => {}
            }
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if let FaultRule::DirectedLoss { from: f, to: t, rate } = *rule {
                if f == from
                    && t == to
                    && rate > 0.0
                    && sched.chance(ChanceKind::DirectedLoss, rate)
                {
                    self.hits[i] += 1;
                    return Some(FaultDrop::Directed);
                }
            }
        }
        None
    }

    /// Called once per transmitted frame: advances the per-source frame
    /// counter and reports whether a [`FaultRule::TargetedCorrupt`] rule
    /// corrupts this frame.
    pub(crate) fn corrupt_frame(&mut self, from: EndpointAddr) -> bool {
        if self.rules.iter().all(|r| !matches!(r, FaultRule::TargetedCorrupt { .. })) {
            return false;
        }
        let n = self.frames_from.entry(from).or_insert(0);
        *n += 1;
        let count = *n;
        let mut corrupt = false;
        for (i, rule) in self.rules.iter().enumerate() {
            if let FaultRule::TargetedCorrupt { src, every_nth } = *rule {
                if src == from && count.is_multiple_of(every_nth) {
                    self.hits[i] += 1;
                    corrupt = true;
                }
            }
        }
        corrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ep(i: u64) -> EndpointAddr {
        EndpointAddr::new(i)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn empty_plan_never_drops_and_never_draws() {
        let mut p = FaultPlan::new();
        assert!(p.is_empty());
        assert_eq!(p.drop_verdict(ep(1), ep(2), SimTime::ZERO, &mut rng()), None);
        assert!(!p.corrupt_frame(ep(1)));
    }

    #[test]
    fn one_way_cut_is_directional_and_windowed() {
        let mut p = FaultPlan::new();
        let r = p.add(FaultRule::OneWayCut {
            from: ep(1),
            to: ep(2),
            start: SimTime::from_millis(10),
            end: Some(SimTime::from_millis(20)),
        });
        let mut g = rng();
        // Before the window, and the reverse direction: untouched.
        assert_eq!(p.drop_verdict(ep(1), ep(2), SimTime::from_millis(5), &mut g), None);
        assert_eq!(p.drop_verdict(ep(2), ep(1), SimTime::from_millis(15), &mut g), None);
        // Inside the window, forward direction: dropped.
        assert_eq!(
            p.drop_verdict(ep(1), ep(2), SimTime::from_millis(15), &mut g),
            Some(FaultDrop::Cut)
        );
        // After the window: healed.
        assert_eq!(p.drop_verdict(ep(1), ep(2), SimTime::from_millis(25), &mut g), None);
        assert_eq!(p.hits()[r], 1);
    }

    #[test]
    fn permanent_cut_has_no_end() {
        let mut p = FaultPlan::new();
        p.add(FaultRule::OneWayCut { from: ep(1), to: ep(2), start: SimTime::ZERO, end: None });
        let mut g = rng();
        assert_eq!(
            p.drop_verdict(ep(1), ep(2), SimTime::from_millis(3_600_000), &mut g),
            Some(FaultDrop::Cut)
        );
    }

    #[test]
    fn burst_loss_hits_only_inside_window() {
        let mut p = FaultPlan::new();
        let r = p.add(FaultRule::BurstLoss {
            from: ep(3),
            to: ep(1),
            start: SimTime::from_millis(100),
            end: SimTime::from_millis(200),
        });
        let mut g = rng();
        assert_eq!(p.drop_verdict(ep(3), ep(1), SimTime::from_millis(99), &mut g), None);
        assert_eq!(
            p.drop_verdict(ep(3), ep(1), SimTime::from_millis(100), &mut g),
            Some(FaultDrop::Burst)
        );
        assert_eq!(p.drop_verdict(ep(3), ep(1), SimTime::from_millis(200), &mut g), None);
        assert_eq!(p.hits()[r], 1);
    }

    #[test]
    fn directed_loss_is_per_link_and_probabilistic() {
        let mut p = FaultPlan::new();
        let r = p.add(FaultRule::DirectedLoss { from: ep(1), to: ep(2), rate: 1.0 });
        let mut g = rng();
        assert_eq!(p.drop_verdict(ep(1), ep(2), SimTime::ZERO, &mut g), Some(FaultDrop::Directed));
        assert_eq!(p.drop_verdict(ep(2), ep(1), SimTime::ZERO, &mut g), None);
        assert_eq!(p.drop_verdict(ep(1), ep(3), SimTime::ZERO, &mut g), None);
        assert_eq!(p.hits()[r], 1);
    }

    #[test]
    fn nth_frame_corruption_counts_per_source() {
        let mut p = FaultPlan::new();
        let r = p.add(FaultRule::TargetedCorrupt { src: ep(2), every_nth: 3 });
        // Frames from other sources never corrupt and never advance ep2's count.
        assert!(!p.corrupt_frame(ep(1)));
        let pattern: Vec<bool> = (0..9).map(|_| p.corrupt_frame(ep(2))).collect();
        assert_eq!(pattern, vec![false, false, true, false, false, true, false, false, true]);
        assert_eq!(p.hits()[r], 3);
    }

    #[test]
    #[should_panic(expected = "every_nth")]
    fn zeroth_frame_rule_rejected() {
        FaultPlan::new().add(FaultRule::TargetedCorrupt { src: ep(1), every_nth: 0 });
    }

    #[test]
    fn partition_is_symmetric_windowed_and_spares_outsiders() {
        let mut p = FaultPlan::new();
        let r = p.add(FaultRule::Partition {
            sides: vec![vec![ep(1), ep(2)], vec![ep(3)]],
            start: SimTime::from_millis(10),
            end: Some(SimTime::from_millis(20)),
        });
        let mut g = rng();
        let t = SimTime::from_millis(15);
        // Both directions across the split are dropped.
        assert_eq!(p.drop_verdict(ep(1), ep(3), t, &mut g), Some(FaultDrop::Partition));
        assert_eq!(p.drop_verdict(ep(3), ep(2), t, &mut g), Some(FaultDrop::Partition));
        // Same-side traffic flows.
        assert_eq!(p.drop_verdict(ep(1), ep(2), t, &mut g), None);
        // Endpoints on no side keep full connectivity.
        assert_eq!(p.drop_verdict(ep(4), ep(3), t, &mut g), None);
        assert_eq!(p.drop_verdict(ep(1), ep(4), t, &mut g), None);
        // Outside the window the split heals by itself.
        assert_eq!(p.drop_verdict(ep(1), ep(3), SimTime::from_millis(5), &mut g), None);
        assert_eq!(p.drop_verdict(ep(1), ep(3), SimTime::from_millis(20), &mut g), None);
        assert_eq!(p.hits()[r], 2);
    }

    #[test]
    fn permanent_partition_has_no_end() {
        let mut p = FaultPlan::new();
        p.add(FaultRule::Partition {
            sides: vec![vec![ep(1)], vec![ep(2)]],
            start: SimTime::ZERO,
            end: None,
        });
        let mut g = rng();
        assert_eq!(
            p.drop_verdict(ep(2), ep(1), SimTime::from_millis(3_600_000), &mut g),
            Some(FaultDrop::Partition)
        );
    }

    #[test]
    #[should_panic(expected = "two partition sides")]
    fn overlapping_partition_sides_rejected() {
        FaultPlan::new().add(FaultRule::Partition {
            sides: vec![vec![ep(1), ep(2)], vec![ep(2)]],
            start: SimTime::ZERO,
            end: None,
        });
    }

    #[test]
    fn suspicion_storm_never_drops_frames_but_records_executor_hits() {
        let mut p = FaultPlan::new();
        let r = p.add(FaultRule::SuspicionStorm { observers: vec![ep(1), ep(2)], target: ep(3) });
        let mut g = rng();
        assert_eq!(p.drop_verdict(ep(1), ep(3), SimTime::ZERO, &mut g), None);
        assert!(!p.corrupt_frame(ep(1)));
        p.record_hits(r, 2);
        assert_eq!(p.hits()[r], 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut p = FaultPlan::new();
        p.add(FaultRule::TargetedCorrupt { src: ep(1), every_nth: 1 });
        assert!(p.corrupt_frame(ep(1)));
        p.clear();
        assert!(p.is_empty());
        assert!(p.hits().is_empty());
    }
}
