//! Automatic (minimal) stack construction (§6).
//!
//! "Given a set of network properties and required properties for an
//! application, it is possible to figure out if a stack exists that can
//! implement the requirements.  If we can associate a cost with each of
//! the properties, possibly on a per-layer basis, we can even create a
//! minimal stack.  Rather than looking at this as stacking protocols on
//! top of each other, a different interpretation is that Horus actually
//! builds a single protocol for the particular application on the fly."
//!
//! The search space is the 2¹⁶ property-set states; stacking a layer
//! whose requirements the current state satisfies is an edge with that
//! layer's cost.  Dijkstra over this graph yields the cheapest stack
//! whose final state covers the request — or a definite "impossible",
//! which §6 likens to real-time admission control: "if not, an error is
//! returned to the user".

use crate::matrix::MATRIX;
use crate::props::PropSet;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Planner failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No composition of known layers provides the request over this
    /// network — the §6 admission-control "error returned to the user".
    Unsatisfiable {
        /// What was asked for.
        required: PropSet,
        /// What the network offers.
        network: PropSet,
        /// The closest any reachable state came (maximal coverage).
        best_coverage: PropSet,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Unsatisfiable { required, network, best_coverage } => write!(
                f,
                "no stack provides {required} over a {network} network \
                 (best reachable coverage: {best_coverage})"
            ),
        }
    }
}

impl Error for PlanError {}

#[derive(PartialEq, Eq)]
struct Node {
    cost: u32,
    state: u16,
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by cost, tie-broken by state for determinism.
        (other.cost, other.state).cmp(&(self.cost, self.state))
    }
}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds the cheapest well-formed stack providing `required` over a
/// network guaranteeing `network`.  Returns layer names **top first**,
/// ready for `horus_layers::registry::build_stack`-style consumption.
///
/// # Errors
///
/// [`PlanError::Unsatisfiable`] when no composition works.
///
/// ```
/// use horus_props::{plan_minimal_stack, Prop, PropSet};
/// let stack = plan_minimal_stack(
///     PropSet::of(&[Prop::TotalOrder]),
///     PropSet::of(&[Prop::BestEffort]),
/// )?;
/// assert_eq!(stack.last(), Some(&"COM"));
/// assert!(stack.contains(&"TOTAL"));
/// # Ok::<(), horus_props::PlanError>(())
/// ```
pub fn plan_minimal_stack(
    required: PropSet,
    network: PropSet,
) -> Result<Vec<&'static str>, PlanError> {
    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; 1 << 16];
    // (previous state, layer index used to get here)
    let mut prev: Vec<Option<(u16, usize)>> = vec![None; 1 << 16];
    let start = network.bits();
    dist[start as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Node { cost: 0, state: start });
    let mut best_coverage = network;

    while let Some(Node { cost, state }) = heap.pop() {
        if cost > dist[state as usize] {
            continue;
        }
        let set = PropSet::from_bits(state);
        best_coverage =
            if set.intersection(required).len() > best_coverage.intersection(required).len() {
                set
            } else {
                best_coverage
            };
        if set.is_superset(required) {
            // Reconstruct the path (bottom-up), then flip to top-first.
            let mut stack = Vec::new();
            let mut cur = state;
            while let Some((p, layer_idx)) = prev[cur as usize] {
                stack.push(MATRIX[layer_idx].name);
                cur = p;
            }
            stack.reverse(); // bottom-up order
            stack.reverse(); // top-first: the last layer stacked is on top
            return Ok(stack);
        }
        for (i, m) in MATRIX.iter().enumerate() {
            if !set.is_superset(m.requires) {
                continue;
            }
            let next = set.difference(m.masks).union(m.provides).bits();
            if next == state {
                continue; // no effect: never useful
            }
            let ncost = cost.saturating_add(m.cost);
            if ncost < dist[next as usize] {
                dist[next as usize] = ncost;
                prev[next as usize] = Some((state, i));
                heap.push(Node { cost: ncost, state: next });
            }
        }
    }
    Err(PlanError::Unsatisfiable { required, network, best_coverage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::derive_stack;
    use crate::props::Prop;

    fn p1() -> PropSet {
        PropSet::of(&[Prop::BestEffort])
    }

    #[test]
    fn plans_the_canonical_total_order_stack() {
        let stack = plan_minimal_stack(PropSet::of(&[Prop::TotalOrder]), p1()).unwrap();
        // Must be well-formed and actually provide total order.
        let provided = derive_stack(&stack, p1()).unwrap();
        assert!(provided.contains(Prop::TotalOrder));
        // The cheapest route to virtual synchrony is the production
        // MBRSHIP (cost 6) vs FLUSH+VSS+BMS (cost 8), so the paper's §7
        // stack drops out of the planner.
        assert_eq!(stack, vec!["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"]);
    }

    #[test]
    fn trivial_request_needs_no_layers() {
        let stack = plan_minimal_stack(p1(), p1()).unwrap();
        assert!(stack.is_empty());
    }

    #[test]
    fn fifo_request_is_small() {
        let stack = plan_minimal_stack(PropSet::of(&[Prop::FifoMulticast]), p1()).unwrap();
        assert_eq!(stack, vec!["NAK", "COM"]);
    }

    #[test]
    fn impossible_requests_are_rejected() {
        // Nothing can conjure delivery out of a dead network.
        let err =
            plan_minimal_stack(PropSet::of(&[Prop::FifoUnicast]), PropSet::EMPTY).unwrap_err();
        match err {
            PlanError::Unsatisfiable { best_coverage, .. } => {
                assert!(!best_coverage.contains(Prop::FifoUnicast));
            }
        }
    }

    #[test]
    fn keeping_best_effort_and_fifo_is_impossible() {
        // P1 is masked by every FIFO layer: asking for both P1 and P4 must
        // fail — the algebra knows upgrades are not additive.
        let err = plan_minimal_stack(PropSet::of(&[Prop::BestEffort, Prop::FifoMulticast]), p1())
            .unwrap_err();
        assert!(matches!(err, PlanError::Unsatisfiable { .. }));
    }

    #[test]
    fn every_single_property_plan_is_sound() {
        // For each individually plannable property: the planner's stack is
        // well-formed and provides it (planner soundness, E4).
        for p in Prop::ALL {
            match plan_minimal_stack(PropSet::of(&[p]), p1()) {
                Ok(stack) => {
                    let provided = derive_stack(&stack, p1())
                        .unwrap_or_else(|e| panic!("{p}: planned stack ill-formed: {e}"));
                    assert!(provided.contains(p), "{p}: stack {stack:?} gives {provided}");
                }
                Err(PlanError::Unsatisfiable { .. }) => {
                    panic!("{p} should be satisfiable over a best-effort network")
                }
            }
        }
    }

    #[test]
    fn planner_minimizes_cost() {
        // Stability: PINWHEEL (cost 2, fewer requirements) and STABLE
        // (cost 2) both qualify; whichever is chosen, the total cost must
        // not exceed hand-built alternatives.
        let stack = plan_minimal_stack(PropSet::of(&[Prop::Stability]), p1()).unwrap();
        let cost: u32 = stack.iter().map(|n| crate::matrix::layer_meta(n).unwrap().cost).sum();
        let hand = ["STABLE", "MBRSHIP", "FRAG", "NAK", "COM"];
        let hand_cost: u32 = hand.iter().map(|n| crate::matrix::layer_meta(n).unwrap().cost).sum();
        assert!(cost <= hand_cost, "planned {stack:?} (cost {cost}) vs hand {hand_cost}");
    }

    #[test]
    fn rich_request_plans_one_combined_stack() {
        let req = PropSet::of(&[Prop::TotalOrder, Prop::Stability, Prop::AutoMerge]);
        let stack = plan_minimal_stack(req, p1()).unwrap();
        let provided = derive_stack(&stack, p1()).unwrap();
        assert!(provided.is_superset(req), "{stack:?} gives {provided}");
    }
}
