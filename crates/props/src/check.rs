//! Stack well-formedness and property derivation (§6, §7).
//!
//! "Given this table, it is possible to figure out if a stack is
//! well-formed, and what properties a well-formed stack provides.  A stack
//! is well-formed if, for each layer, all its required properties are
//! guaranteed by the stack underneath it."

use crate::matrix::layer_meta;
use crate::props::{Prop, PropSet};
use std::error::Error;
use std::fmt;

/// Why a stack fails the well-formedness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackError {
    /// A layer name has no row in the matrix (utility layers with no
    /// property semantics simply inherit and may be interleaved freely;
    /// this error names genuinely unknown layers).
    UnknownLayer(String),
    /// A layer's requirements are not met by what lies beneath it.
    UnmetRequirement {
        /// The offending layer.
        layer: String,
        /// What it requires.
        requires: PropSet,
        /// What the stack below actually guarantees.
        available: PropSet,
        /// The missing properties.
        missing: PropSet,
    },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::UnknownLayer(n) => write!(f, "layer {n} is not in the property matrix"),
            StackError::UnmetRequirement { layer, requires, available, missing } => write!(
                f,
                "layer {layer} requires {requires} but only {available} is guaranteed below \
                 (missing {missing})"
            ),
        }
    }
}

impl Error for StackError {}

/// Pass-through utility layers: in the registry, carry no property
/// semantics, and inherit everything.  The checker treats them as
/// identity rows.
const TRANSPARENT: &[&str] = &[
    "SIGN",
    "ENCRYPT",
    "COMPRESS",
    "FLOW",
    "TRACE",
    "ACCT",
    "LOGGER",
    "DROP",
    "SEQNO",
    "NOP",
    "NOP_OPAQUE",
    "RPC",
    "CLOCKSYNC",
    "SECURE",
    "MUX",
];

/// Derives the property set a stack provides to its application, checking
/// well-formedness along the way.
///
/// `stack` is given **top first** (the order of a stack description
/// string); `network` is what the medium below the bottom layer
/// guarantees (P1 for the simulated datagram network).
///
/// # Errors
///
/// Returns the first violation found, walking bottom-up.
///
/// ```
/// use horus_props::{derive_stack, Prop, PropSet};
/// let provided = derive_stack(
///     &["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"],
///     PropSet::of(&[Prop::BestEffort]),
/// )?;
/// assert!(provided.contains(Prop::TotalOrder));
/// # Ok::<(), horus_props::StackError>(())
/// ```
pub fn derive_stack(stack: &[&str], network: PropSet) -> Result<PropSet, StackError> {
    let mut below = network;
    for &name in stack.iter().rev() {
        if TRANSPARENT.contains(&name) {
            continue;
        }
        let meta = layer_meta(name).ok_or_else(|| StackError::UnknownLayer(name.to_string()))?;
        if !below.is_superset(meta.requires) {
            return Err(StackError::UnmetRequirement {
                layer: name.to_string(),
                requires: meta.requires,
                available: below,
                missing: meta.requires.difference(below),
            });
        }
        below = below.difference(meta.masks).union(meta.provides);
    }
    Ok(below)
}

/// Whether a stack is well-formed over the given network.
pub fn is_well_formed(stack: &[&str], network: PropSet) -> bool {
    derive_stack(stack, network).is_ok()
}

/// The §7 worked example as data: the canonical stack, the network
/// property, and the paper's stated result set.  The E3 tests assert that
/// [`derive_stack`] reproduces it exactly.
pub fn section7() -> (&'static [&'static str], PropSet, PropSet) {
    (
        &["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"],
        PropSet::of(&[Prop::BestEffort]),
        PropSet::from_numbers(&[3, 4, 6, 8, 9, 10, 11, 12, 15]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section7_derivation_matches_the_paper() {
        let (stack, network, expected) = section7();
        let got = derive_stack(stack, network).expect("canonical stack is well-formed");
        assert_eq!(
            got, expected,
            "TOTAL:MBRSHIP:FRAG:NAK:COM over {{P1}} must yield the paper's set"
        );
    }

    #[test]
    fn missing_layer_breaks_requirements() {
        // Without NAK there is no FIFO: FRAG's requirement fails.
        let err = derive_stack(&["FRAG", "COM"], PropSet::of(&[Prop::BestEffort]))
            .expect_err("FRAG needs FIFO");
        match err {
            StackError::UnmetRequirement { layer, missing, .. } => {
                assert_eq!(layer, "FRAG");
                assert!(missing.contains(Prop::FifoUnicast));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn order_matters() {
        // TOTAL below MBRSHIP cannot work: no virtual synchrony yet.
        let ok = &["TOTAL", "MBRSHIP", "FRAG", "NAK", "COM"];
        let bad = &["MBRSHIP", "TOTAL", "FRAG", "NAK", "COM"];
        let net = PropSet::of(&[Prop::BestEffort]);
        assert!(is_well_formed(ok, net));
        assert!(!is_well_formed(bad, net));
    }

    #[test]
    fn dead_network_supports_nothing() {
        let err = derive_stack(&["NAK", "COM"], PropSet::EMPTY).unwrap_err();
        assert!(matches!(err, StackError::UnmetRequirement { ref layer, .. } if layer == "COM"));
    }

    #[test]
    fn transparent_layers_are_ignored() {
        let net = PropSet::of(&[Prop::BestEffort]);
        let with = derive_stack(&["TRACE", "NAK", "LOGGER", "COM"], net).unwrap();
        let without = derive_stack(&["NAK", "COM"], net).unwrap();
        assert_eq!(with, without);
    }

    #[test]
    fn unknown_layers_are_reported() {
        let err = derive_stack(&["XYZZY"], PropSet::ALL).unwrap_err();
        assert_eq!(err, StackError::UnknownLayer("XYZZY".to_string()));
    }

    #[test]
    fn decomposed_membership_equals_production() {
        // FLUSH:VSS:BMS provides the same membership properties as
        // MBRSHIP (P8, P9, P15) — the §8 composition claim, checked in
        // the algebra.
        let net = PropSet::of(&[Prop::BestEffort]);
        let prod = derive_stack(&["MBRSHIP", "FRAG", "NAK", "COM"], net).unwrap();
        let refd = derive_stack(&["FLUSH", "VSS", "BMS", "FRAG", "NAK", "COM"], net).unwrap();
        assert_eq!(prod, refd);
    }

    #[test]
    fn masking_removes_best_effort() {
        let net = PropSet::of(&[Prop::BestEffort]);
        let got = derive_stack(&["NAK", "COM"], net).unwrap();
        assert!(!got.contains(Prop::BestEffort), "NAK upgrades (masks) P1");
        assert!(got.contains(Prop::FifoMulticast));
    }

    #[test]
    fn full_feature_stack_derives() {
        let net = PropSet::of(&[Prop::BestEffort]);
        let stack = &["SAFE", "STABLE", "TOTAL", "MERGE", "MBRSHIP", "FRAG", "NAK", "COM"];
        let got = derive_stack(stack, net).unwrap();
        for p in [Prop::Safe, Prop::Stability, Prop::TotalOrder, Prop::AutoMerge] {
            assert!(got.contains(p), "missing {p} in {got}");
        }
    }
}
