//! The layer property matrix (Table 3), reconstructed.
//!
//! For each protocol layer: the properties it **requires** from the stack
//! beneath it, the properties it **provides**, and the properties it
//! **masks** (refuses to pass through).  Everything not masked is
//! *inherited*, the paper's third column group.
//!
//! ## Reconstruction notes (the surviving Table 3 scan is OCR-damaged)
//!
//! The normative constraints used to rebuild the matrix, in priority
//! order:
//!
//! 1. **§7's worked derivation** (the only fully-specified data point):
//!    `TOTAL:MBRSHIP:FRAG:NAK:COM` over a network providing only P1 must
//!    yield exactly {P3, P4, P6, P8, P9, P10, P11, P12, P15}.  Note the
//!    *absence* of P1 in the result: the FIFO layer masks best-effort
//!    delivery when it upgrades it.
//! 2. The prose: NAK provides FIFO and requires sources (§7); FRAG
//!    "depends on FIFO ordering" and provides large messages (§7);
//!    MBRSHIP "relies on the FIFO ordering provided by the NAK layer, and
//!    on the FRAG layer for sending large messages" (§7); TOTAL "relies
//!    on virtually synchronous communication" (§7); SAFE needs stability
//!    information; MERGE needs a full membership stack.
//! 3. Legible cells of the scan (e.g. STABLE/PINWHEEL provide P14, MERGE
//!    provides P16, ORDER(causal) provides P5, NNAK provides P2).
//!
//! Known deviations from ambiguous cells: ORDER(safe) is read as
//! providing P7 only (the scan hints at P5 as well — we treat causal
//! order as inherited, not provided); MERGE's apparent requirement on P1
//! is dropped (P1 is masked by NAK, so the requirement would make MERGE
//!
//! unstackable over the canonical stack); CAUSAL provides its own P13
//! rather than requiring it (no provider of P13 appears below CAUSAL in
//! any legible row).
//!
//! Costs are this implementation's rough per-layer overhead weights used
//! by the minimal-stack planner; the paper leaves costs abstract.  NFRAG
//! costs more than FRAG because its reorder-tolerant header is 41 bits
//! against FRAG's 2; reference layers cost more than their production
//! twins (go-back-N bandwidth, fixed-sequencer hops).

#[cfg(test)]
use crate::props::Prop;
use crate::props::PropSet;

/// One row of Table 3.
#[derive(Debug, Clone, Copy)]
pub struct LayerMeta {
    /// The layer's registry name.
    pub name: &'static str,
    /// Properties the stack below must guarantee.
    pub requires: PropSet,
    /// Properties this layer adds.
    pub provides: PropSet,
    /// Properties this layer does *not* pass through (everything else is
    /// inherited).
    pub masks: PropSet,
    /// Relative cost weight for the minimal-stack planner.
    pub cost: u32,
}

macro_rules! row {
    ($name:literal, req:[$($r:literal),*], prov:[$($p:literal),*], mask:[$($m:literal),*], cost:$c:literal) => {
        LayerMeta {
            name: $name,
            requires: PropSet::from_bits(0 $( | (1 << ($r - 1)) )*),
            provides: PropSet::from_bits(0 $( | (1 << ($p - 1)) )*),
            masks: PropSet::from_bits(0 $( | (1 << ($m - 1)) )*),
            cost: $c,
        }
    };
}

/// The reconstructed Table 3, one row per composable layer.
pub const MATRIX: &[LayerMeta] = &[
    row!("COM",       req:[1],                          prov:[10, 11],    mask:[],  cost:1),
    row!("NFRAG",     req:[1, 10, 11],                  prov:[12],        mask:[],  cost:3),
    row!("NAK",       req:[1, 10, 11],                  prov:[3, 4],      mask:[1], cost:3),
    row!("NNAK",      req:[1, 10, 11],                  prov:[2, 3],      mask:[1], cost:3),
    row!("NAK_REF",   req:[1, 10, 11],                  prov:[3, 4],      mask:[1], cost:5),
    row!("FRAG",      req:[3, 4, 10, 11],               prov:[12],        mask:[],  cost:2),
    row!("PACK",      req:[3, 4, 10, 11],               prov:[],          mask:[],  cost:1),
    row!("FD",        req:[3, 4, 10, 11],               prov:[],          mask:[],  cost:1),
    row!("MBRSHIP",   req:[3, 4, 10, 11, 12],           prov:[8, 9, 15],  mask:[],  cost:6),
    row!("BMS",       req:[3, 4, 10, 11, 12],           prov:[15],        mask:[],  cost:3),
    row!("VSS",       req:[3, 10, 11, 12, 15],          prov:[8],         mask:[],  cost:2),
    row!("FLUSH",     req:[3, 4, 8, 10, 11, 12, 15],    prov:[9],         mask:[],  cost:3),
    row!("STABLE",    req:[3, 4, 8, 9, 10, 11, 12, 15], prov:[14],        mask:[],  cost:2),
    row!("PINWHEEL",  req:[3, 8, 9, 10, 15],            prov:[14],        mask:[],  cost:2),
    row!("TOTAL",     req:[3, 8, 9, 15],                prov:[6],         mask:[],  cost:3),
    row!("TOTAL_REF", req:[3, 8, 9, 15],                prov:[6],         mask:[],  cost:5),
    row!("CAUSAL",    req:[3, 8, 9, 15],                prov:[5, 13],     mask:[],  cost:3),
    row!("TS",        req:[3],                          prov:[13],        mask:[],  cost:1),
    row!("SAFE",      req:[3, 8, 9, 14, 15],            prov:[7],         mask:[],  cost:2),
    row!("MERGE",     req:[3, 4, 8, 9, 10, 11, 12, 15], prov:[16],        mask:[],  cost:2),
    row!("CHKSUM",    req:[],                           prov:[10],        mask:[],  cost:1),
    row!("PRIO",      req:[],                           prov:[2],         mask:[],  cost:1),
];

/// Looks a layer's row up by registry name.
pub fn layer_meta(name: &str) -> Option<&'static LayerMeta> {
    MATRIX.iter().find(|m| m.name == name)
}

/// The names of every layer in the matrix.
pub fn matrix_names() -> Vec<&'static str> {
    MATRIX.iter().map(|m| m.name).collect()
}

/// Renders the matrix as a Table 3-style text table (used by the
/// `stack_planner` example to regenerate the paper's table).
pub fn render_matrix() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} | {:<28} | {:<18} | {:<8} | cost\n",
        "Layer", "Requires", "Provides", "Masks"
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for m in MATRIX {
        out.push_str(&format!(
            "{:<10} | {:<28} | {:<18} | {:<8} | {}\n",
            m.name,
            m.requires.to_string(),
            m.provides.to_string(),
            m.masks.to_string(),
            m.cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let nak = layer_meta("NAK").unwrap();
        assert!(nak.provides.contains(Prop::FifoMulticast));
        assert!(nak.masks.contains(Prop::BestEffort));
        assert!(layer_meta("NO_SUCH").is_none());
    }

    #[test]
    fn every_row_is_internally_coherent() {
        for m in MATRIX {
            // A layer must not require what it masks away *and* provides —
            // that would be self-contradictory bookkeeping.
            assert!(
                m.provides.intersection(m.requires).is_empty(),
                "{}: provides ∩ requires should be empty (upgrades use masks)",
                m.name
            );
            assert!(m.cost > 0, "{}: zero-cost layers break the planner", m.name);
        }
    }

    #[test]
    fn every_provided_property_has_a_provider() {
        // Each property of Table 4 except the base network property P1
        // (supplied by the network itself) has at least one providing
        // layer... for those properties that any layer targets.
        let provided: PropSet = MATRIX.iter().fold(PropSet::EMPTY, |s, m| s.union(m.provides));
        for p in [
            Prop::Prioritized,
            Prop::FifoUnicast,
            Prop::FifoMulticast,
            Prop::Causal,
            Prop::TotalOrder,
            Prop::Safe,
            Prop::SemiSync,
            Prop::VirtualSync,
            Prop::GarbleDetect,
            Prop::SourceAddr,
            Prop::LargeMessages,
            Prop::CausalTimestamps,
            Prop::Stability,
            Prop::ConsistentViews,
            Prop::AutoMerge,
        ] {
            assert!(provided.contains(p), "no layer provides {p}");
        }
    }

    #[test]
    fn render_includes_all_rows() {
        let table = render_matrix();
        for m in MATRIX {
            assert!(table.contains(m.name));
        }
    }
}
