//! # horus-props
//!
//! The protocol property algebra of the paper's §6 and Tables 3–4: "a
//! formal way to describe what a layer requires from the layers above and
//! below it, and what it guarantees in return".
//!
//! * [`Prop`] / [`PropSet`] — the sixteen properties of Table 4.
//! * [`matrix`] — the requires/inherits/provides matrix of Table 3 (one
//!   [`matrix::LayerMeta`] per layer), with per-layer costs.
//! * [`check`] — stack well-formedness: "a stack is well-formed if, for
//!   each layer, all its required properties are guaranteed by the stack
//!   underneath it", and the derivation of what a well-formed stack
//!   provides.
//! * [`planner`] — the constructive direction: "given a set of network
//!   properties and required properties for an application, it is
//!   possible to figure out if a stack exists that can implement the
//!   requirements.  If we can associate a cost with each of the
//!   properties ... we can even create a minimal stack."  Implemented as
//!   a Dijkstra search over property-set states; an unsatisfiable request
//!   returns an error, the paper's real-time-admission analogy.
//!
//! The matrix is a *reconstruction*: the surviving copy of Table 3 is
//! OCR-degraded, so this crate encodes the coherent matrix documented in
//! DESIGN.md, validated by the one fully-specified derivation in the
//! paper (§7): `TOTAL:MBRSHIP:FRAG:NAK:COM` over a P1 network yields
//! exactly {P3, P4, P6, P8, P9, P10, P11, P12, P15} — see
//! [`check::section7`] and the E3 tests.

pub mod check;
pub mod matrix;
pub mod planner;
pub mod props;

pub use check::{derive_stack, StackError};
pub use matrix::{layer_meta, matrix_names, LayerMeta};
pub use planner::{plan_minimal_stack, PlanError};
pub use props::{Prop, PropSet};
