//! The sixteen protocol properties of Table 4.

use std::fmt;

/// A protocol property (Table 4): "each of which can either be a
/// requirement on the communication guarantees provided underneath the
/// protocol, or a guarantee that is provided by the protocol itself".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Prop {
    /// P1: best effort delivery.
    BestEffort = 1,
    /// P2: prioritized effort delivery.
    Prioritized = 2,
    /// P3: FIFO unicast delivery.
    FifoUnicast = 3,
    /// P4: FIFO multicast delivery.
    FifoMulticast = 4,
    /// P5: causal delivery.
    Causal = 5,
    /// P6: totally ordered delivery.
    TotalOrder = 6,
    /// P7: safe delivery.
    Safe = 7,
    /// P8: virtually semi-synchronous delivery.
    SemiSync = 8,
    /// P9: virtually synchronous delivery.
    VirtualSync = 9,
    /// P10: byte re-ordering detection.
    GarbleDetect = 10,
    /// P11: source address.
    SourceAddr = 11,
    /// P12: large messages.
    LargeMessages = 12,
    /// P13: causal timestamps.
    CausalTimestamps = 13,
    /// P14: stability information.
    Stability = 14,
    /// P15: consistent views.
    ConsistentViews = 15,
    /// P16: automatic view merging.
    AutoMerge = 16,
}

impl Prop {
    /// All sixteen properties in Table 4 order.
    pub const ALL: [Prop; 16] = [
        Prop::BestEffort,
        Prop::Prioritized,
        Prop::FifoUnicast,
        Prop::FifoMulticast,
        Prop::Causal,
        Prop::TotalOrder,
        Prop::Safe,
        Prop::SemiSync,
        Prop::VirtualSync,
        Prop::GarbleDetect,
        Prop::SourceAddr,
        Prop::LargeMessages,
        Prop::CausalTimestamps,
        Prop::Stability,
        Prop::ConsistentViews,
        Prop::AutoMerge,
    ];

    /// The 1-based property number used in the paper (P1..P16).
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Looks a property up by its paper number.
    pub fn from_number(n: u8) -> Option<Prop> {
        Prop::ALL.get(n.checked_sub(1)? as usize).copied()
    }

    /// The Table 4 description.
    pub fn description(self) -> &'static str {
        match self {
            Prop::BestEffort => "best effort delivery",
            Prop::Prioritized => "prioritized effort delivery",
            Prop::FifoUnicast => "FIFO unicast delivery",
            Prop::FifoMulticast => "FIFO multicast delivery",
            Prop::Causal => "causal delivery",
            Prop::TotalOrder => "totally ordered delivery",
            Prop::Safe => "safe delivery",
            Prop::SemiSync => "virtually semi-synchronous delivery",
            Prop::VirtualSync => "virtually synchronous delivery",
            Prop::GarbleDetect => "byte re-ordering detection",
            Prop::SourceAddr => "source address",
            Prop::LargeMessages => "large messages",
            Prop::CausalTimestamps => "causal timestamps",
            Prop::Stability => "stability information",
            Prop::ConsistentViews => "consistent views",
            Prop::AutoMerge => "automatic view merging",
        }
    }
}

impl fmt::Display for Prop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.number())
    }
}

/// A set of properties, packed into a 16-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PropSet(u16);

impl PropSet {
    /// The empty set.
    pub const EMPTY: PropSet = PropSet(0);
    /// Every property.
    pub const ALL: PropSet = PropSet(u16::MAX);

    /// Builds a set from properties.
    pub fn of(props: &[Prop]) -> Self {
        props.iter().fold(PropSet::EMPTY, |s, &p| s.with(p))
    }

    /// Builds a set from paper numbers (1..=16); unknown numbers are
    /// ignored.
    pub fn from_numbers(numbers: &[u8]) -> Self {
        numbers.iter().filter_map(|&n| Prop::from_number(n)).fold(PropSet::EMPTY, |s, p| s.with(p))
    }

    /// The raw bitmask (bit `n-1` is property Pn).
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs a set from a raw bitmask.
    pub const fn from_bits(bits: u16) -> Self {
        PropSet(bits)
    }

    /// This set plus `p`.
    #[must_use]
    pub fn with(self, p: Prop) -> Self {
        PropSet(self.0 | 1 << (p.number() - 1))
    }

    /// This set minus `p`.
    #[must_use]
    pub fn without(self, p: Prop) -> Self {
        PropSet(self.0 & !(1 << (p.number() - 1)))
    }

    /// Membership test.
    pub fn contains(self, p: Prop) -> bool {
        self.0 & (1 << (p.number() - 1)) != 0
    }

    /// Whether every property in `other` is in `self`.
    pub fn is_superset(self, other: PropSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: PropSet) -> Self {
        PropSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(self, other: PropSet) -> Self {
        PropSet(self.0 & other.0)
    }

    /// Set difference.
    #[must_use]
    pub fn difference(self, other: PropSet) -> Self {
        PropSet(self.0 & !other.0)
    }

    /// Number of properties in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the properties in the set, in P1..P16 order.
    pub fn iter(self) -> impl Iterator<Item = Prop> {
        Prop::ALL.into_iter().filter(move |&p| self.contains(p))
    }
}

impl FromIterator<Prop> for PropSet {
    fn from_iter<I: IntoIterator<Item = Prop>>(iter: I) -> Self {
        iter.into_iter().fold(PropSet::EMPTY, |s, p| s.with(p))
    }
}

impl fmt::Display for PropSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for PropSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_properties_with_stable_numbers() {
        assert_eq!(Prop::ALL.len(), 16);
        for (i, p) in Prop::ALL.iter().enumerate() {
            assert_eq!(p.number() as usize, i + 1);
            assert_eq!(Prop::from_number(p.number()), Some(*p));
        }
        assert_eq!(Prop::from_number(0), None);
        assert_eq!(Prop::from_number(17), None);
    }

    #[test]
    fn set_algebra() {
        let a = PropSet::of(&[Prop::BestEffort, Prop::FifoUnicast]);
        let b = PropSet::of(&[Prop::FifoUnicast, Prop::TotalOrder]);
        assert!(a.contains(Prop::BestEffort));
        assert!(!a.contains(Prop::TotalOrder));
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), PropSet::of(&[Prop::FifoUnicast]));
        assert_eq!(a.difference(b), PropSet::of(&[Prop::BestEffort]));
        assert!(a.union(b).is_superset(a));
        assert!(!a.is_superset(b));
        assert_eq!(a.without(Prop::BestEffort), PropSet::of(&[Prop::FifoUnicast]));
    }

    #[test]
    fn display_uses_paper_numbers() {
        let s = PropSet::of(&[Prop::FifoUnicast, Prop::ConsistentViews]);
        assert_eq!(s.to_string(), "{P3,P15}");
        assert_eq!(Prop::VirtualSync.to_string(), "P9");
    }

    #[test]
    fn from_numbers_roundtrip() {
        let s = PropSet::from_numbers(&[3, 4, 6, 8, 9, 10, 11, 12, 15]);
        assert_eq!(s.len(), 9);
        let nums: Vec<u8> = s.iter().map(|p| p.number()).collect();
        assert_eq!(nums, vec![3, 4, 6, 8, 9, 10, 11, 12, 15]);
    }
}
